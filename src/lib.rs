//! Workspace root crate for the SWDUAL reproduction.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the `swdual-core` crate (re-exported here for
//! convenience).

pub use swdual_align as align;
pub use swdual_bio as bio;
pub use swdual_core as core;
pub use swdual_datagen as datagen;
pub use swdual_gpusim as gpusim;
pub use swdual_platform as platform;
pub use swdual_runtime as runtime;
pub use swdual_sched as sched;
