//! Consistency between the layers: the platform simulator, the pure
//! scheduler and the runtime must tell one coherent story.

use swdual_repro::platform::calib::EngineModel;
use swdual_repro::platform::experiment::{run_hybrid, run_swdual, HybridPolicy};
use swdual_repro::platform::workload::{DatabaseSpec, Workload};
use swdual_repro::sched::binsearch::{dual_approx_schedule, BinarySearchConfig};
use swdual_repro::sched::PlatformSpec;

#[test]
fn experiment_time_is_serial_plus_schedule_makespan() {
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let cpu = EngineModel::swdual_cpu_worker();
    let gpu = EngineModel::swdual_gpu_worker();
    let platform = PlatformSpec::new(4, 4);
    let run = run_hybrid(&workload, &platform, HybridPolicy::DualGreedy, &cpu, &gpu);

    let tasks = workload.build_tasks(&cpu, &gpu);
    let sched = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
    let serial = cpu
        .serial_startup(workload.database.residues)
        .max(gpu.serial_startup(workload.database.residues));
    assert!(
        (run.seconds - (serial + sched.schedule.makespan())).abs() < 1e-6,
        "experiment {} != serial {} + makespan {}",
        run.seconds,
        serial,
        sched.schedule.makespan()
    );
}

#[test]
fn gcups_equals_cells_over_seconds_everywhere() {
    for db in DatabaseSpec::all_paper_databases() {
        let workload = Workload::paper_queries(db);
        let cells = workload.total_cells() as f64;
        for workers in [2usize, 8] {
            let r = run_swdual(&workload, workers, 4);
            let expected = cells / r.seconds / 1e9;
            assert!(
                (r.gcups - expected).abs() < 1e-9,
                "{}: {} vs {}",
                r.label,
                r.gcups,
                expected
            );
        }
    }
}

#[test]
fn swdual_dominates_its_own_components() {
    // The hybrid must beat both the CPU-only and GPU-only runs with the
    // same total worker count — the paper's core selling point.
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    use swdual_repro::platform::experiment::run_single_kind;
    use swdual_repro::sched::schedule::PeKind;
    for workers in [2usize, 4] {
        let hybrid = run_swdual(&workload, workers, 4).seconds;
        let cpu_only =
            run_single_kind(&workload, &EngineModel::swipe(), workers, PeKind::Cpu).seconds;
        assert!(
            hybrid < cpu_only,
            "{workers} workers: {hybrid} vs CPU {cpu_only}"
        );
    }
    // At 2 workers the paper's own Table II has CUDASW++ (2 GPUs,
    // 445.6 s) beating SWDUAL (1 GPU + 1 CPU, 543.3 s) — SWDUAL trades
    // one GPU for a CPU. The hybrid takes the lead at 4 workers
    // (272 s vs 292 s). Check both relationships hold in the model.
    let gpu2 = run_single_kind(&workload, &EngineModel::cudasw(), 2, PeKind::Gpu).seconds;
    let hybrid2 = run_swdual(&workload, 2, 4).seconds;
    assert!(
        gpu2 < hybrid2,
        "2 workers: GPU-only {gpu2} vs hybrid {hybrid2}"
    );
    let gpu4 = run_single_kind(&workload, &EngineModel::cudasw(), 4, PeKind::Gpu).seconds;
    let hybrid4 = run_swdual(&workload, 4, 4).seconds;
    assert!(
        hybrid4 < gpu4,
        "4 workers: hybrid {hybrid4} vs GPU-only {gpu4}"
    );
}

#[test]
fn runtime_allocation_matches_scheduler_split() {
    // The runtime's task split (which workers got how many tasks) must
    // reflect the scheduler's assignment computed from the same rate
    // models.
    use swdual_repro::core::SearchBuilder;
    use swdual_repro::datagen::{
        queries_from_database, synthetic_database, LengthModel, MutationProfile,
    };

    let database = synthetic_database("db", 150, LengthModel::protein_database(300.0), 31);
    let queries = queries_from_database(&database, 8, 50, 5000, &MutationProfile::homolog(), 32);
    let report = SearchBuilder::new()
        .database(database)
        .queries(queries)
        .hybrid_workers(2, 2)
        .run();
    let schedule = report.schedule().expect("static schedule");

    // Count per-kind tasks in the schedule and in the worker stats.
    let sched_gpu = schedule
        .placements
        .iter()
        .filter(|p| p.pe.kind == swdual_repro::sched::schedule::PeKind::Gpu)
        .count();
    let stats_gpu: usize = report
        .worker_stats()
        .iter()
        .filter(|s| s.description.starts_with("GPU"))
        .map(|s| s.tasks)
        .sum();
    assert_eq!(sched_gpu, stats_gpu);
    // GPUs are modelled ~4x faster, so they take the majority.
    assert!(stats_gpu >= 5, "GPUs got only {stats_gpu} of 8 tasks");
}
