//! Cross-crate integration tests: the full SWDUAL pipeline from files
//! to ranked hits, across allocation policies and worker mixes.

use swdual_repro::bio::{fasta, sqb, Alphabet, ScoringScheme};
use swdual_repro::core::SearchBuilder;
use swdual_repro::datagen::{
    queries_from_database, synthetic_database, LengthModel, MutationProfile,
};
use swdual_repro::runtime::{AllocationPolicy, WorkerSpec};
use swdual_repro::sched::dual::KnapsackMethod;

fn demo_database() -> swdual_repro::bio::SequenceSet {
    synthetic_database("db", 120, LengthModel::protein_database(250.0), 1001)
}

#[test]
fn file_pipeline_fasta_sqb_search() {
    let dir = std::env::temp_dir().join("swdual_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let db_fasta = dir.join("e2e_db.fasta");
    let db_sqb = dir.join("e2e_db.sqb");
    let q_fasta = dir.join("e2e_q.fasta");

    let database = demo_database();
    let queries = queries_from_database(&database, 4, 50, 5000, &MutationProfile::homolog(), 1002);
    fasta::write_file(&database, &db_fasta).unwrap();
    sqb::write_file(&database, &db_sqb).unwrap();
    fasta::write_file(&queries, &q_fasta).unwrap();

    // FASTA-loaded and SQB-loaded searches must agree exactly.
    let via_fasta = SearchBuilder::new()
        .database_fasta(&db_fasta, Alphabet::Protein)
        .unwrap()
        .queries_fasta(&q_fasta, Alphabet::Protein)
        .unwrap()
        .top_k(5)
        .run();
    let via_sqb = SearchBuilder::new()
        .database_sqb(&db_sqb)
        .unwrap()
        .queries(queries.clone())
        .top_k(5)
        .run();
    assert_eq!(via_fasta.hits(), via_sqb.hits());

    // Planted homologs must rank their source first.
    for (qi, q) in queries.iter().enumerate() {
        let src = q.description.strip_prefix("derived from ").unwrap();
        let best = via_sqb.hits()[qi].hits[0];
        assert_eq!(via_sqb.database_id(best.db_index), src, "query {qi}");
    }

    for f in [&db_fasta, &db_sqb, &q_fasta] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn hits_invariant_across_policies_and_workers() {
    let database = demo_database();
    let queries = queries_from_database(&database, 3, 50, 5000, &MutationProfile::distant(), 7);
    let configs: Vec<(AllocationPolicy, Vec<WorkerSpec>)> = vec![
        (
            AllocationPolicy::DualApprox(KnapsackMethod::Greedy),
            vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()],
        ),
        (
            AllocationPolicy::DualApprox(KnapsackMethod::Greedy),
            vec![
                WorkerSpec::gpu_default(),
                WorkerSpec::gpu_default(),
                WorkerSpec::cpu_default(),
            ],
        ),
        (
            AllocationPolicy::SelfScheduling,
            vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()],
        ),
        (
            AllocationPolicy::SelfScheduling,
            vec![WorkerSpec::cpu_default()],
        ),
    ];
    let mut reference: Option<Vec<swdual_repro::runtime::QueryHits>> = None;
    for (policy, workers) in configs {
        let report = SearchBuilder::new()
            .database(database.clone())
            .queries(queries.clone())
            .workers(workers.clone())
            .policy(policy)
            .top_k(8)
            .run();
        match &reference {
            None => reference = Some(report.hits().to_vec()),
            Some(r) => assert_eq!(
                r.as_slice(),
                report.hits(),
                "hits changed under {policy:?} with {} workers",
                workers.len()
            ),
        }
    }
}

#[test]
fn scheme_changes_change_scores() {
    let database = demo_database();
    let queries = queries_from_database(&database, 2, 50, 5000, &MutationProfile::homolog(), 99);
    let default = SearchBuilder::new()
        .database(database.clone())
        .queries(queries.clone())
        .run();
    let harsher = SearchBuilder::new()
        .database(database)
        .queries(queries)
        .scheme(ScoringScheme::new(
            swdual_repro::bio::Matrix::blosum62().clone(),
            20,
            4,
        ))
        .run();
    // Top-hit identity is stable (exact homolog), but scores drop with
    // harsher gaps somewhere in the list.
    let d0 = &default.hits()[0];
    let h0 = &harsher.hits()[0];
    assert_eq!(d0.hits[0].db_index, h0.hits[0].db_index);
    let sum_default: i64 = d0.hits.iter().map(|h| h.score as i64).sum();
    let sum_harsh: i64 = h0.hits.iter().map(|h| h.score as i64).sum();
    assert!(sum_harsh <= sum_default);
}

#[test]
fn worker_accounting_adds_up() {
    let database = demo_database();
    let queries = queries_from_database(&database, 5, 50, 5000, &MutationProfile::homolog(), 13);
    let report = SearchBuilder::new()
        .database(database.clone())
        .queries(queries)
        .hybrid_workers(2, 2)
        .run();
    let tasks: usize = report.worker_stats().iter().map(|s| s.tasks).sum();
    assert_eq!(tasks, 5);
    let cells: u64 = report.worker_stats().iter().map(|s| s.cells).sum();
    assert_eq!(cells, report.total_cells());
    // The schedule exists and is valid for the platform.
    let schedule = report.schedule().expect("dual-approx produces a schedule");
    assert_eq!(schedule.placements.len(), 5);
}
