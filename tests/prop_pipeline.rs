//! Property tests over the whole pipeline: random databases and
//! queries, arbitrary worker mixes — hit lists must be engine- and
//! policy-invariant, and the reported accounting must balance.

use proptest::prelude::*;
use swdual_repro::bio::{Alphabet, SequenceSet};
use swdual_repro::core::SearchBuilder;
use swdual_repro::runtime::{AllocationPolicy, WorkerSpec};

fn protein_set(ids: &str, max_seqs: usize, max_len: usize) -> impl Strategy<Value = SequenceSet> {
    let prefix = ids.to_string();
    prop::collection::vec(prop::collection::vec(0u8..20, 1..max_len), 1..max_seqs).prop_map(
        move |seqs| {
            let mut set = SequenceSet::new(Alphabet::Protein);
            for (i, codes) in seqs.into_iter().enumerate() {
                set.push(swdual_repro::bio::Sequence::from_codes(
                    format!("{prefix}{i}"),
                    Alphabet::Protein,
                    codes,
                ))
                .unwrap();
            }
            set
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hits_are_worker_mix_invariant(
        db in protein_set("d", 24, 120),
        queries in protein_set("q", 4, 100),
        gpus in 0usize..3,
        cpus in 0usize..3,
    ) {
        prop_assume!(gpus + cpus >= 1);
        let reference = SearchBuilder::new()
            .database(db.clone())
            .queries(queries.clone())
            .workers(vec![WorkerSpec::cpu_default()])
            .top_k(1000)
            .run();
        let mixed = SearchBuilder::new()
            .database(db)
            .queries(queries)
            .hybrid_workers(cpus.max(if gpus == 0 { 1 } else { 0 }), gpus)
            .top_k(1000)
            .run();
        prop_assert_eq!(reference.hits(), mixed.hits());
    }

    #[test]
    fn accounting_balances(
        db in protein_set("d", 20, 100),
        queries in protein_set("q", 5, 80),
    ) {
        let report = SearchBuilder::new()
            .database(db.clone())
            .queries(queries.clone())
            .hybrid_workers(1, 1)
            .policy(AllocationPolicy::SelfScheduling)
            .top_k(3)
            .run();
        let tasks: usize = report.worker_stats().iter().map(|s| s.tasks).sum();
        prop_assert_eq!(tasks, queries.len());
        let cells: u64 = report.worker_stats().iter().map(|s| s.cells).sum();
        prop_assert_eq!(cells, report.total_cells());
        prop_assert_eq!(report.total_cells(),
            queries.total_residues() * db.total_residues());
        // Every query got a hit list bounded by top_k and db size.
        for h in report.hits() {
            prop_assert!(h.hits.len() <= 3.min(db.len()));
        }
    }

    #[test]
    fn self_identity_tops_the_list(db in protein_set("d", 16, 90)) {
        // Search the database against itself: every query's best hit is
        // itself (identity scores dominate for BLOSUM62's positive
        // diagonal).
        let queries = db.clone();
        let report = SearchBuilder::new()
            .database(db)
            .queries(queries.clone())
            .hybrid_workers(1, 1)
            .top_k(1)
            .run();
        for (qi, qh) in report.hits().iter().enumerate() {
            let best = qh.hits[0];
            let self_score = {
                let scheme = swdual_repro::bio::ScoringScheme::protein_default();
                let q = queries.get(qi).unwrap();
                swdual_repro::align::gotoh_score(q.codes(), q.codes(), &scheme)
            };
            // Best hit must score at least the self-score (another
            // sequence can tie but never beat the perfect diagonal...
            // unless it contains the query plus more).
            prop_assert!(best.score >= self_score.min(best.score));
            prop_assert!(best.score >= 0);
        }
    }
}
