//! Minimal offline replacement for `criterion`.
//!
//! Mirrors the subset of the API the workspace's benches use:
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId::from_parameter`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is
//! simple wall-clock timing (median of the sampled runs) with no
//! statistical analysis or plotting.
//!
//! CI runs benches as `cargo bench -- --test`; in that mode each
//! benchmark body executes exactly once, as a smoke test.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Unit used when reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Id with a function-name prefix.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Median per-iteration nanoseconds from the last `iter` call.
    last_nanos: f64,
}

impl Bencher {
    /// Run `routine` repeatedly and record its median duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.last_nanos = 0.0;
            return;
        }
        // One warm-up, then timed samples.
        black_box(routine());
        let mut nanos: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            nanos.push(start.elapsed().as_nanos() as f64);
        }
        nanos.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.last_nanos = nanos[nanos.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report per-iteration throughput alongside the timing.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            last_nanos: 0.0,
        };
        body(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I: Display, P, F>(&mut self, id: I, input: &P, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            last_nanos: 0.0,
        };
        body(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        if self.criterion.test_mode {
            println!("test {}/{} ... ok", self.name, id);
            return;
        }
        let nanos = bencher.last_nanos;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if nanos > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / nanos * 1e3)
            }
            Some(Throughput::Bytes(n)) if nanos > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / nanos * 1e9 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("{}/{}  median {:.1} ns{}", self.name, id, nanos, rate);
    }

    /// End the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- --test` runs each bench once as a smoke test.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Builder hook (accepted and ignored for API parity).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: &str, body: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function("base", body);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion { test_mode: false };
        demo_bench(&mut c);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0;
        c.benchmark_group("once").bench_function("body", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }
}
