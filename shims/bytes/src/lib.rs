//! Minimal offline replacement for the `bytes` crate.
//!
//! Implements only the little-endian cursor subset the SQB codec in
//! `swdual-bio` relies on: `Buf` for `&[u8]` readers and `BufMut` for
//! `Vec<u8>` writers.

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes remaining in the source.
    fn remaining(&self) -> usize;
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Discard `n` bytes from the front.
    fn advance(&mut self, n: usize);

    /// True while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "cannot advance past end of slice");
        *self = &self[n..];
    }
}

/// Write-side cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xABCD);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xABCD);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!buf.has_remaining());
    }

    #[test]
    fn advance_skips_bytes() {
        let data = [1u8, 2, 3, 4];
        let mut buf: &[u8] = &data;
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
        assert_eq!(buf.remaining(), 1);
    }
}
