//! Minimal offline replacement for `serde_json`, printing and parsing
//! JSON text to and from the serde shim's [`Value`] tree.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced by JSON printing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl std::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render any serialisable type into a [`Value`].
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serialise to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to human-readable, two-space indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::new)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = format!("{f}");
        out.push_str(&text);
        // `{}` omits the decimal point for integral floats; keep the
        // number a JSON number either way (it already is).
    } else {
        // JSON has no NaN/inf; serde_json emits null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * d));
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("expected ',' or ']', got {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error::new(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("swdual".into())),
            ("n".into(), Value::UInt(3)),
            ("ratio".into(), Value::Float(1.5)),
            (
                "tags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"swdual","n":3,"ratio":1.5,"tags":[true,null]}"#
        );
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"swdual\""));
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{0007}".into());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(from_str::<Value>("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str::<Value>("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str::<Value>("4.25").unwrap(), Value::Float(4.25));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            from_str::<Value>("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("[1, -2]").is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"abc", "tru", "{\"a\" 1}", "1 2"] {
            assert!(from_str::<Value>(bad).is_err(), "input {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let text = to_string(&Value::Float(f64::NAN)).unwrap();
        assert_eq!(text, "null");
    }
}
