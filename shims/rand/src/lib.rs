//! Minimal offline replacement for the `rand` crate.
//!
//! Provides a deterministic 64-bit PRNG (`StdRng`, xoshiro256**-class
//! quality via SplitMix64 seeding) plus the `Rng`/`SeedableRng` trait
//! subset the workspace uses: `gen`, `gen_range` over integer and float
//! ranges, and seeding with `seed_from_u64`. Streams are stable across
//! runs but are NOT compatible with the real `rand` crate's streams.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

/// Types a [`Rng::gen`] call can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniform value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform value in the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The random-number trait: uniform draws and range sampling.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw one uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_is_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(10usize..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(5usize..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&c));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
