//! Minimal offline replacement for `rayon`.
//!
//! Implements the slice-parallel subset the alignment crates use —
//! `par_iter().map(..).collect()` and
//! `par_chunks(n).flat_map_iter(..).collect()` — with *real*
//! parallelism: items are claimed from an atomic counter by scoped
//! threads (dynamic load balancing, like rayon's work stealing), and
//! results are reassembled in input order.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::ParallelSlice;
}

/// Run `f(0..n)` across scoped threads, preserving index order in the
/// returned vector. Threads claim indices dynamically so uneven items
/// (e.g. wavefront blocks of different sizes) balance automatically.
fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Entry points for parallel iteration over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel counterpart of `iter()`.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Parallel counterpart of `chunks(size)`.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { items: self, size }
    }
}

/// Parallel iterator over `&T` items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Execute in parallel and collect results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let items = self.items;
        let f = self.f;
        run_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over fixed-size chunks of a slice.
pub struct ParChunks<'a, T> {
    items: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Map each chunk to a serial iterator and flatten, preserving
    /// chunk order.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParFlatMap<'a, T, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a [T]) -> I + Sync,
    {
        ParFlatMap {
            items: self.items,
            size: self.size,
            f,
        }
    }
}

/// A flat-mapped chunk iterator, ready to collect.
pub struct ParFlatMap<'a, T, F> {
    items: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T: Sync, F> ParFlatMap<'a, T, F> {
    /// Execute in parallel and collect the flattened results in order.
    pub fn collect<C, I>(self) -> C
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a [T]) -> I + Sync,
        C: FromIterator<I::Item>,
    {
        let items = self.items;
        let f = self.f;
        let n_chunks = items.len().div_ceil(self.size);
        let size = self.size;
        run_indexed(n_chunks, |c| {
            let lo = c * size;
            let hi = (lo + size).min(items.len());
            f(&items[lo..hi]).into_iter().collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_flat_map_preserves_order() {
        let input: Vec<u32> = (0..507).collect();
        let out: Vec<u32> = input
            .par_chunks(16)
            .flat_map_iter(|chunk| chunk.iter().map(|&x| x + 1))
            .collect();
        assert_eq!(out, (1..508).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41];
        let out: Vec<i32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let input: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                let mut acc = 0usize;
                for i in 0..(x * 1000) {
                    acc = acc.wrapping_add(i);
                }
                let _ = acc;
                x
            })
            .collect();
        assert_eq!(out, input);
    }
}
