//! Derive macros for the offline `serde` shim.
//!
//! Built on `proc_macro` alone (no syn/quote, which are unavailable
//! offline). Supports the two shapes the workspace serialises:
//!
//! * structs with named fields  -> JSON objects (field order preserved)
//! * enums with unit variants   -> JSON strings of the variant name
//!
//! Anything else (tuple structs, generics, data-carrying variants)
//! fails with a clear `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: (type name, field names).
    Struct(String, Vec<String>),
    /// Unit-variant enum: (type name, variant names).
    Enum(String, Vec<String>),
}

/// Skip `#[...]` attribute pairs starting at `i`; returns the new index.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(i), tokens.get(i + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attributes(body, i);
        if i >= body.len() {
            break;
        }
        i = skip_visibility(body, i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        // Consume the type: everything up to a comma at angle-depth 0.
        // Parens/brackets arrive as single Group tokens, so only `<>`
        // depth needs tracking (commas inside generic args).
        let mut angle_depth = 0i32;
        while i < body.len() {
            match body.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attributes(body, i);
        if i >= body.len() {
            break;
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; the serde shim derive only \
                     supports unit variants"
                ))
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "`{name}` is generic; the serde shim derive does not support \
                 generic types"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "`{name}` is a tuple struct; the serde shim derive only \
                 supports named fields"
            ))
        }
        other => return Err(format!("expected a braced body, found {other:?}")),
    };
    match kind.as_str() {
        "struct" => Ok(Shape::Struct(name, parse_named_fields(&body)?)),
        "enum" => Ok(Shape::Enum(name, parse_unit_variants(&body)?)),
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("error tokens")
}

/// Derive `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             __value.get({f:?}).unwrap_or(&::serde::Value::Null)\
                         ).map_err(|e| ::serde::Error::custom(\
                             ::std::format!(\"field `{{}}.{{}}`: {{}}\", {name:?}, {f:?}, e)\
                         ))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __value.as_str() {{\n\
                             ::std::option::Option::Some(__s) => match __s {{\n\
                                 {arms}\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::Error::custom(::std::format!(\
                                         \"unknown {name} variant {{:?}}\", __other))),\n\
                             }},\n\
                             ::std::option::Option::None => \
                                 ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"expected string for {name}, got {{:?}}\", \
                                     __value))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
