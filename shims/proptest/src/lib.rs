//! Minimal offline replacement for `proptest`.
//!
//! Keeps the API shape the workspace's property tests use — the
//! `proptest!` macro, range/tuple/collection/sample/string strategies,
//! `prop_assert*`, `prop_assume!`, `ProptestConfig::with_cases` — while
//! simplifying the machinery: cases are generated from a deterministic
//! per-test seed and failures are reported with the failing case index
//! (no shrinking).

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `any::<T>()` support: full-domain uniform generation.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy produced by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Uniform full-domain strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Vectors with strategy-driven elements and uniform length in
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        /// Output of [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniformly choose one element of a non-empty vector.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires options");
            Select { options }
        }

        /// Output of [`select`].
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() % self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }

    pub mod string {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strings matching a restricted regex dialect: a single
        /// character class with a `{min,max}` repetition, e.g.
        /// `[A-Za-z0-9_.|-]{1,20}`. That is the only form the
        /// workspace's tests use; anything else is an `Err`.
        pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
            let rest = pattern
                .strip_prefix('[')
                .ok_or_else(|| Error(format!("unsupported pattern {pattern:?}")))?;
            let (class, rep) = rest
                .split_once(']')
                .ok_or_else(|| Error(format!("unterminated class in {pattern:?}")))?;

            let mut alphabet: Vec<char> = Vec::new();
            let chars: Vec<char> = class.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    if lo > hi {
                        return Err(Error(format!("bad range {lo}-{hi}")));
                    }
                    for c in lo..=hi {
                        alphabet.push(c);
                    }
                    i += 3;
                } else {
                    alphabet.push(chars[i]);
                    i += 1;
                }
            }
            if alphabet.is_empty() {
                return Err(Error(format!("empty class in {pattern:?}")));
            }

            let rep = rep
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .ok_or_else(|| Error(format!("missing repetition in {pattern:?}")))?;
            let (min, max) = rep
                .split_once(',')
                .ok_or_else(|| Error(format!("bad repetition in {pattern:?}")))?;
            let min: usize = min
                .trim()
                .parse()
                .map_err(|_| Error(format!("bad repetition min in {pattern:?}")))?;
            let max: usize = max
                .trim()
                .parse()
                .map_err(|_| Error(format!("bad repetition max in {pattern:?}")))?;
            if min > max {
                return Err(Error(format!("inverted repetition in {pattern:?}")));
            }
            Ok(RegexStrategy { alphabet, min, max })
        }

        /// Error from an unsupported or malformed pattern.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct Error(String);

        impl std::fmt::Display for Error {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl std::error::Error for Error {}

        /// Output of [`string_regex`].
        pub struct RegexStrategy {
            alphabet: Vec<char>,
            min: usize,
            max: usize,
        }

        impl Strategy for RegexStrategy {
            type Value = String;

            fn generate(&self, rng: &mut TestRng) -> String {
                let span = (self.max - self.min + 1) as u64;
                let len = self.min + (rng.next_u64() % span) as usize;
                (0..len)
                    .map(|_| {
                        let i = (rng.next_u64() % self.alphabet.len() as u64) as usize;
                        self.alphabet[i]
                    })
                    .collect()
            }
        }
    }
}

pub mod test_runner {
    /// Deterministic xoshiro256** generator for case generation.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from one 64-bit value (SplitMix64 expansion).
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-proptest configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// Assertion failure: fails the test.
        Fail(String),
        /// `prop_assume!` rejection: skip the case.
        Reject,
    }

    /// Drive one property: `cases` random cases with seeds derived from
    /// the test name, stopping at the first failure.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // FNV-1a over the test name: stable per-test seed base.
        let mut base: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            base ^= b as u64;
            base = base.wrapping_mul(0x0000_0100_0000_01B3);
        }

        let mut rejects = 0u64;
        let max_rejects = config.cases as u64 * 16;
        let mut executed = 0u32;
        let mut attempt = 0u64;
        while executed < config.cases {
            let mut rng =
                TestRng::seed_from_u64(base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {executed} \
                         (attempt {attempt}):\n{msg}"
                    );
                }
            }
            attempt += 1;
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` followed by `#[test] fn name(bindings)`
/// items whose arguments are `ident in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert inside a property body; failure reports the case inputs'
/// seed context instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Reject the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u8..10, y in -3i32..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled < 100);
        }

        #[test]
        fn select_draws_from_options(c in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!([1, 3, 5].contains(&c), "got {}", c);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn regex_strings_match_class(s in prop::string::string_regex("[a-c0-1]{2,5}").unwrap()) {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| "abc01".contains(c)));
        }

        #[test]
        fn tuples_and_any(pair in (any::<u8>(), 1u64..4), seed in any::<u64>()) {
            let (b, n) = pair;
            prop_assert!(u64::from(b) <= 255);
            prop_assert!((1..4).contains(&n));
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::seed_from_u64(99);
        let mut b = crate::test_runner::TestRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::Fail("nope".into()))
        });
    }
}
