//! Minimal offline replacement for `rand_distr`: the `Distribution`
//! trait and a `Gamma` sampler (Marsaglia-Tsang squeeze method), which
//! is all `swdual-datagen`'s length models require.

use rand::Rng;

/// Types that can be sampled given a source of randomness.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Build a Gamma distribution; both parameters must be positive
    /// and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Gamma, Error> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(Error("gamma shape must be positive and finite"));
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(Error("gamma scale must be positive and finite"));
        }
        Ok(Gamma { shape, scale })
    }
}

/// One standard normal draw (Box-Muller; uses two uniforms per call,
/// simple and branch-free enough for a shim).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = next_unit(rng);
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = next_unit(rng);
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

fn next_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia & Tsang (2000). For shape < 1, boost to shape + 1
        // and scale by U^(1/shape).
        let (shape, boost) = if self.shape < 1.0 {
            let u = next_unit(rng).max(f64::MIN_POSITIVE);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = next_unit(rng).max(f64::MIN_POSITIVE);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v * boost * self.scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(2.0, 3.0).is_ok());
    }

    #[test]
    fn gamma_mean_and_variance_match_theory() {
        let mut rng = StdRng::seed_from_u64(1234);
        for (shape, scale) in [(0.5, 2.0), (2.0, 180.0), (9.0, 0.5)] {
            let g = Gamma::new(shape, scale).unwrap();
            let n = 200_000;
            let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
            assert!(samples.iter().all(|&s| s >= 0.0));
            let mean: f64 = samples.iter().sum::<f64>() / n as f64;
            let var: f64 = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
            let (m_th, v_th) = (shape * scale, shape * scale * scale);
            assert!(
                (mean - m_th).abs() < 0.05 * m_th,
                "shape {shape}: mean {mean} vs {m_th}"
            );
            assert!(
                (var - v_th).abs() < 0.12 * v_th,
                "shape {shape}: var {var} vs {v_th}"
            );
        }
    }

    #[test]
    fn gamma_is_right_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gamma::new(2.0, 100.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let above = samples.iter().filter(|&&s| s > mean).count();
        // Right-skew: fewer than half of the draws sit above the mean.
        assert!(
            above * 2 < n,
            "above-mean fraction {}",
            above as f64 / n as f64
        );
    }
}
