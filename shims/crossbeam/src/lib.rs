//! Minimal offline replacement for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided: an unbounded MPMC channel
//! with cloneable senders *and* receivers, blocking `recv`, and the
//! disconnect semantics the SWDUAL master/worker runtime relies on
//! (receiver iteration ends when every sender is dropped; sends fail
//! when every receiver is dropped).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and every sender is dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`] and
    /// [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired with no message.
        Timeout,
        /// Channel is empty and every sender is dropped.
        Disconnected,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC: receivers steal from one queue).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Block until a message arrives, every sender is dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(std::time::Instant::now() + timeout)
        }

        /// Block until a message arrives, every sender is dropped, or
        /// `deadline` passes.
        pub fn recv_deadline(&self, deadline: std::time::Instant) -> Result<T, RecvTimeoutError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel poisoned");
                queue = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn iter_ends_only_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        let h = thread::spawn(move || {
            for i in 0..5 {
                tx2.send(i).unwrap();
            }
        });
        for i in 5..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        h.join().unwrap();
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_workers_drain_shared_queue_exactly_once() {
        let (tx, rx) = channel::unbounded();
        let n = 1000;
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || rx.iter().collect::<Vec<usize>>()));
        }
        drop(rx);
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocking_recv_wakes_on_late_send() {
        let (tx, rx) = channel::unbounded::<u32>();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        tx.send(99).unwrap();
        assert_eq!(h.join().unwrap(), Ok(99));
    }
}
