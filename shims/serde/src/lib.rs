//! Minimal offline replacement for `serde`.
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through one dynamic value tree ([`Value`]): `Serialize` renders a
//! type *to* a `Value`, `Deserialize` rebuilds a type *from* one.
//! `serde_json` (the sibling shim) prints and parses `Value` as JSON.
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros covering named-field structs and unit-variant enums —
//! the only shapes this workspace serialises.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialised value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key-value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (from any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned payload, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Signed payload, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render a type into the shim's [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a `Value`.
    fn to_value(&self) -> Value;
}

/// Rebuild a type from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert a `Value` back into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let u = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, got {value:?}"
                    ))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let i = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {value:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {value:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(42u32.to_value(), Value::UInt(42));
        assert_eq!(u32::from_value(&Value::UInt(42)), Ok(42));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(i32::from_value(&Value::Int(-3)), Ok(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(String::from_value(&Value::Str("x".into())), Ok("x".into()));
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u8, 2, 3];
        let val = v.to_value();
        assert_eq!(Vec::<u8>::from_value(&val), Ok(v));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Some(5u8).to_value(), Value::UInt(5));
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Str("two".into())),
        ]);
        assert_eq!(obj.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(obj.get("b").and_then(Value::as_str), Some("two"));
        assert!(obj.get("c").is_none());
    }
}
