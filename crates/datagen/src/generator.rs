//! Synthetic protein database generation.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Gamma};
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::Alphabet;

/// Robinson & Robinson (1991) background amino-acid frequencies, in the
/// canonical `ARNDCQEGHILKMFPSTWYV` order of the first 20 protein
/// residue codes. These are the frequencies BLAST's scoring statistics
/// assume; sampling residues from them makes synthetic databases score
/// like real ones under BLOSUM62.
pub const ROBINSON_FREQS: [f64; 20] = [
    0.07805, // A
    0.05129, // R
    0.04487, // N
    0.05364, // D
    0.01925, // C
    0.04264, // Q
    0.06295, // E
    0.07377, // G
    0.02199, // H
    0.05142, // I
    0.09019, // L
    0.05744, // K
    0.02243, // M
    0.03856, // F
    0.05203, // P
    0.07120, // S
    0.05841, // T
    0.01330, // W
    0.03216, // Y
    0.06441, // V
];

/// Samples protein residues from the Robinson–Robinson background.
#[derive(Debug, Clone)]
pub struct ProteinSampler {
    /// Cumulative distribution over the 20 standard residues.
    cdf: [f64; 20],
}

impl Default for ProteinSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl ProteinSampler {
    /// Build the sampler (normalises the embedded frequencies).
    pub fn new() -> ProteinSampler {
        let total: f64 = ROBINSON_FREQS.iter().sum();
        let mut cdf = [0.0f64; 20];
        let mut acc = 0.0;
        for (i, &f) in ROBINSON_FREQS.iter().enumerate() {
            acc += f / total;
            cdf[i] = acc;
        }
        cdf[19] = 1.0;
        ProteinSampler { cdf }
    }

    /// Sample one residue code (0..20).
    pub fn sample(&self, rng: &mut impl Rng) -> u8 {
        let u: f64 = rng.gen();
        // 20 entries: linear scan beats binary search at this size.
        for (code, &c) in self.cdf.iter().enumerate() {
            if u <= c {
                return code as u8;
            }
        }
        19
    }

    /// Sample a whole sequence of `len` residues.
    pub fn sample_sequence(&self, len: usize, rng: &mut impl Rng) -> Vec<u8> {
        (0..len).map(|_| self.sample(rng)).collect()
    }
}

/// Sequence-length model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthModel {
    /// Gamma-distributed lengths (protein databases are well fit by a
    /// gamma with shape ≈ 2–3), truncated to `[min, max]`.
    Gamma {
        /// Mean length.
        mean: f64,
        /// Shape parameter (larger = tighter around the mean).
        shape: f64,
        /// Minimum length after truncation.
        min: usize,
        /// Maximum length after truncation.
        max: usize,
    },
    /// Uniform lengths in `[min, max]`.
    Uniform {
        /// Minimum length.
        min: usize,
        /// Maximum length.
        max: usize,
    },
    /// Every sequence exactly this long.
    Fixed(usize),
}

impl LengthModel {
    /// The length model used for all synthetic paper databases: gamma
    /// with shape 2.5 (UniProt's empirical length histogram shape),
    /// truncated to the extremes the paper quotes for UniProt (4 and
    /// 35213).
    pub fn protein_database(mean: f64) -> LengthModel {
        LengthModel::Gamma {
            mean,
            shape: 2.5,
            min: 4,
            max: 35_213,
        }
    }

    /// Draw one length.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        match *self {
            LengthModel::Gamma {
                mean,
                shape,
                min,
                max,
            } => {
                let scale = mean / shape;
                let gamma = Gamma::new(shape, scale).expect("valid gamma parameters");
                let v = gamma.sample(rng).round() as i64;
                (v.clamp(min as i64, max as i64)) as usize
            }
            LengthModel::Uniform { min, max } => rng.gen_range(min..=max),
            LengthModel::Fixed(len) => len,
        }
    }
}

/// Generate a synthetic protein database of `n_sequences` with the
/// given length model, deterministically from `seed`.
pub fn synthetic_database(
    name_prefix: &str,
    n_sequences: usize,
    lengths: LengthModel,
    seed: u64,
) -> SequenceSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ProteinSampler::new();
    let mut set = SequenceSet::new(Alphabet::Protein);
    for i in 0..n_sequences {
        let len = lengths.sample(&mut rng);
        let residues = sampler.sample_sequence(len, &mut rng);
        let seq = Sequence::from_codes(format!("{name_prefix}_{i}"), Alphabet::Protein, residues)
            .with_description(format!("synthetic protein {i} len {len}"));
        set.push(seq).expect("alphabet matches");
    }
    set
}

/// Generate a scaled-down version of one of the paper's databases: the
/// same mean length, `scale` times the sequence count (so reduced-scale
/// *executions* stay faithful to the workload shape). `sequences` and
/// `mean_len` come from the Table III / Table IV derivation in
/// `swdual-platform`.
pub fn scaled_database(
    name: &str,
    sequences: u64,
    mean_len: f64,
    scale: f64,
    seed: u64,
) -> SequenceSet {
    assert!(scale > 0.0 && scale <= 1.0, "scale in (0, 1]");
    let n = ((sequences as f64 * scale).round() as usize).max(1);
    synthetic_database(name, n, LengthModel::protein_database(mean_len), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::stats::{Composition, LengthStats};

    #[test]
    fn sampler_respects_background_frequencies() {
        let sampler = ProteinSampler::new();
        let mut rng = StdRng::seed_from_u64(42);
        let sample = sampler.sample_sequence(200_000, &mut rng);
        let seq = Sequence::from_codes("s", Alphabet::Protein, sample);
        let comp = Composition::of_sequence(&seq);
        for (code, &expected) in ROBINSON_FREQS.iter().enumerate() {
            let observed = comp.frequency(code as u8);
            assert!(
                (observed - expected).abs() < 0.01,
                "residue {code}: observed {observed}, expected {expected}"
            );
        }
        // No ambiguity codes are ever sampled.
        for code in 20..24 {
            assert_eq!(comp.counts[code], 0);
        }
    }

    #[test]
    fn gamma_lengths_center_on_mean() {
        let model = LengthModel::protein_database(360.0);
        let mut rng = StdRng::seed_from_u64(7);
        let lengths: Vec<usize> = (0..20_000).map(|_| model.sample(&mut rng)).collect();
        let mean = lengths.iter().sum::<usize>() as f64 / lengths.len() as f64;
        assert!((mean - 360.0).abs() < 15.0, "mean {mean}");
        assert!(lengths.iter().all(|&l| (4..=35_213).contains(&l)));
        // Gamma is right-skewed: some sequences well beyond the mean.
        assert!(*lengths.iter().max().unwrap() > 1000);
    }

    #[test]
    fn uniform_and_fixed_models() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = LengthModel::Uniform { min: 10, max: 20 };
        for _ in 0..100 {
            let l = u.sample(&mut rng);
            assert!((10..=20).contains(&l));
        }
        assert_eq!(LengthModel::Fixed(7).sample(&mut rng), 7);
    }

    #[test]
    fn database_generation_is_deterministic() {
        let a = synthetic_database("db", 50, LengthModel::Fixed(30), 99);
        let b = synthetic_database("db", 50, LengthModel::Fixed(30), 99);
        assert_eq!(a, b);
        let c = synthetic_database("db", 50, LengthModel::Fixed(30), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_database_preserves_mean_length() {
        let set = scaled_database("dog", 25_160, 589.0, 0.02, 5);
        assert_eq!(set.len(), 503); // 2% of 25160
        let stats = LengthStats::of_set(&set).unwrap();
        assert!(
            (stats.mean - 589.0).abs() / 589.0 < 0.15,
            "mean length {}",
            stats.mean
        );
    }

    #[test]
    #[should_panic]
    fn scale_above_one_panics() {
        let _ = scaled_database("x", 100, 300.0, 1.5, 0);
    }

    #[test]
    fn ids_are_unique_and_prefixed() {
        let set = synthetic_database("uni", 20, LengthModel::Fixed(10), 3);
        let mut ids: Vec<&str> = set.iter().map(|s| s.id.as_str()).collect();
        assert!(ids.iter().all(|id| id.starts_with("uni_")));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }
}
