//! Query-set construction.
//!
//! The paper's query sets were "taken from" the databases themselves
//! (§V-A), so real searches have strong true hits. We provide both
//! flavours: fresh random queries in a length range, and queries derived
//! from database members through a mutation model (substitutions plus
//! indels) so that reduced-scale end-to-end runs produce meaningful hit
//! rankings.

use crate::generator::ProteinSampler;
use rand::prelude::*;
use rand::rngs::StdRng;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::Alphabet;

/// Random queries with lengths uniform in `[min_len, max_len]` —
/// matches the paper's "minimum size 100 and maximum size 5,000".
pub fn random_queries(count: usize, min_len: usize, max_len: usize, seed: u64) -> SequenceSet {
    assert!(min_len >= 1 && min_len <= max_len);
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ProteinSampler::new();
    let mut set = SequenceSet::new(Alphabet::Protein);
    for i in 0..count {
        let len = rng.gen_range(min_len..=max_len);
        let residues = sampler.sample_sequence(len, &mut rng);
        set.push(
            Sequence::from_codes(format!("query_{i}"), Alphabet::Protein, residues)
                .with_description(format!("random query len {len}")),
        )
        .expect("protein alphabet");
    }
    set
}

/// How a derived query mutates away from its source sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationProfile {
    /// Per-residue probability of a substitution.
    pub substitution_rate: f64,
    /// Per-residue probability of deleting the residue.
    pub deletion_rate: f64,
    /// Per-residue probability of inserting a random residue after it.
    pub insertion_rate: f64,
}

impl MutationProfile {
    /// A homolog at roughly 80% identity — close enough to rank first
    /// against its source, far enough to exercise gaps.
    pub fn homolog() -> MutationProfile {
        MutationProfile {
            substitution_rate: 0.15,
            deletion_rate: 0.02,
            insertion_rate: 0.02,
        }
    }

    /// A distant homolog (~50% identity).
    pub fn distant() -> MutationProfile {
        MutationProfile {
            substitution_rate: 0.40,
            deletion_rate: 0.05,
            insertion_rate: 0.05,
        }
    }
}

/// Mutate an encoded protein sequence under `profile`.
pub fn mutate(residues: &[u8], profile: &MutationProfile, rng: &mut impl Rng) -> Vec<u8> {
    let sampler = ProteinSampler::new();
    let mut out = Vec::with_capacity(residues.len() + 8);
    for &r in residues {
        let u: f64 = rng.gen();
        if u < profile.deletion_rate {
            // Residue dropped.
        } else if u < profile.deletion_rate + profile.substitution_rate {
            out.push(sampler.sample(rng));
        } else {
            out.push(r);
        }
        if rng.gen::<f64>() < profile.insertion_rate {
            out.push(sampler.sample(rng));
        }
    }
    out
}

/// Build a query set by sampling `count` members of `database` and
/// mutating each — the paper's "40 query sequences taken from it"
/// (§V-A), with controllable divergence. Queries are filtered to the
/// `[min_len, max_len]` range, resampling as needed.
pub fn queries_from_database(
    database: &SequenceSet,
    count: usize,
    min_len: usize,
    max_len: usize,
    profile: &MutationProfile,
    seed: u64,
) -> SequenceSet {
    assert!(!database.is_empty(), "database must be nonempty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = SequenceSet::new(Alphabet::Protein);
    let eligible: Vec<usize> = (0..database.len())
        .filter(|&i| {
            let l = database.get(i).unwrap().len();
            (min_len..=max_len).contains(&l)
        })
        .collect();
    assert!(
        !eligible.is_empty(),
        "no database sequences in the requested length range"
    );
    for i in 0..count {
        let src_idx = eligible[rng.gen_range(0..eligible.len())];
        let src = database.get(src_idx).unwrap();
        let mutated = mutate(src.codes(), profile, &mut rng);
        set.push(
            Sequence::from_codes(format!("query_{i}"), Alphabet::Protein, mutated)
                .with_description(format!("derived from {}", src.id)),
        )
        .expect("protein alphabet");
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{synthetic_database, LengthModel};
    use swdual_align::scalar::gotoh_score;
    use swdual_bio::ScoringScheme;

    #[test]
    fn random_queries_respect_length_bounds() {
        let q = random_queries(40, 100, 5000, 1);
        assert_eq!(q.len(), 40);
        assert!(q.iter().all(|s| (100..=5000).contains(&s.len())));
    }

    #[test]
    fn random_queries_deterministic() {
        assert_eq!(random_queries(10, 50, 60, 9), random_queries(10, 50, 60, 9));
    }

    #[test]
    fn mutation_preserves_rough_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = ProteinSampler::new();
        let src = sampler.sample_sequence(1000, &mut rng);
        let m = mutate(&src, &MutationProfile::homolog(), &mut rng);
        // Insertion and deletion rates are equal, so length is stable
        // within a few percent.
        assert!((m.len() as i64 - 1000).unsigned_abs() < 100);
    }

    #[test]
    fn homolog_query_ranks_its_source_first() {
        let db = synthetic_database("db", 30, LengthModel::Fixed(200), 11);
        let queries = queries_from_database(&db, 3, 1, usize::MAX, &MutationProfile::homolog(), 12);
        let scheme = ScoringScheme::protein_default();
        for q in &queries {
            let src_id = q.description.strip_prefix("derived from ").unwrap();
            let mut best = (i32::MIN, String::new());
            for d in &db {
                let s = gotoh_score(q.codes(), d.codes(), &scheme);
                if s > best.0 {
                    best = (s, d.id.clone());
                }
            }
            assert_eq!(
                &best.1, src_id,
                "query {} should rank its source first",
                q.id
            );
        }
    }

    #[test]
    fn distant_profile_diverges_more() {
        let mut rng = StdRng::seed_from_u64(8);
        let sampler = ProteinSampler::new();
        let src = sampler.sample_sequence(500, &mut rng);
        let near = mutate(&src, &MutationProfile::homolog(), &mut rng);
        let far = mutate(&src, &MutationProfile::distant(), &mut rng);
        let scheme = ScoringScheme::protein_default();
        let near_score = gotoh_score(&src, &near, &scheme);
        let far_score = gotoh_score(&src, &far, &scheme);
        assert!(near_score > far_score);
    }

    #[test]
    fn queries_from_database_filters_lengths() {
        let db = synthetic_database("db", 50, LengthModel::Uniform { min: 50, max: 500 }, 2);
        let q = queries_from_database(&db, 10, 400, 500, &MutationProfile::homolog(), 4);
        assert_eq!(q.len(), 10);
        // Sources were all 400-500; mutated lengths stay near that.
        assert!(q.iter().all(|s| s.len() > 300 && s.len() < 600));
    }

    #[test]
    #[should_panic]
    fn empty_database_panics() {
        let db = SequenceSet::new(Alphabet::Protein);
        let _ = queries_from_database(&db, 1, 1, 10, &MutationProfile::homolog(), 0);
    }
}
