//! # swdual-datagen — synthetic genomic databases and query sets
//!
//! The paper searches five public protein databases (UniProt, Ensembl
//! Dog/Rat, RefSeq Human/Mouse — Table III) with query sets drawn from
//! them. Those exact snapshots are not redistributable or fetchable
//! here, so this crate generates **synthetic equivalents**: databases
//! with the same sequence counts and realistic length distributions
//! (gamma-shaped, as protein length distributions are), residues drawn
//! from the Robinson–Robinson amino-acid background frequencies, and
//! query sets matching each experiment's length ranges (§V: 100–5000;
//! §V-C: homogeneous 4500–5000 and heterogeneous 4–35213).
//!
//! Everything is seeded and deterministic. For end-to-end searches that
//! must find biologically-plausible hits, [`mutate`] derives queries
//! from database sequences with point substitutions and indels — the
//! paper likewise took its queries from the database.

pub mod generator;
pub mod queries;

pub use generator::{scaled_database, synthetic_database, LengthModel, ProteinSampler};
pub use queries::{mutate, queries_from_database, random_queries, MutationProfile};
