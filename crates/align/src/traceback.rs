//! Full-matrix Gotoh alignment with traceback.
//!
//! The score-only kernels in this crate keep two rolling rows; producing
//! an actual alignment (the paper's Figure 1 output) additionally needs
//! the provenance of every cell. This module fills `O(m·n)` byte-sized
//! traceback tables for the three Gotoh matrices `H`, `E`, `F` and walks
//! them back. Three alignment modes are supported:
//!
//! * [`Mode::Local`] — Smith-Waterman (paper Eq. 2: clamp at 0, best
//!   cell anywhere, trace until a zero-start),
//! * [`Mode::Global`] — Needleman-Wunsch with affine gaps (the whole of
//!   both sequences, as in the paper's Figure 1 example),
//! * [`Mode::SemiGlobal`] — the query must align end-to-end, leading and
//!   trailing gaps in the subject are free (database-mapping flavour).

use crate::alignment::{AlignOp, Alignment};
use swdual_bio::ScoringScheme;

/// Alignment mode (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Smith-Waterman local alignment.
    Local,
    /// Needleman-Wunsch global alignment with affine gaps.
    Global,
    /// Query end-to-end, free subject end gaps.
    SemiGlobal,
}

/// Sentinel for "no valid gap state here".
const NEG_BOUND: i32 = i32::MIN / 4;

/// Traceback codes for the `H` table.
const TB_STOP: u8 = 0;
const TB_DIAG: u8 = 1;
const TB_E: u8 = 2;
const TB_F: u8 = 3;
/// Traceback codes for the `E`/`F` tables.
const TB_OPEN: u8 = 0;
const TB_EXTEND: u8 = 1;

/// Align `query` against `subject` under `scheme` in the given `mode`,
/// returning score and the full column-by-column alignment.
///
/// Memory: three `(m+1)·(n+1)` byte tables — use the score-only kernels
/// for database-scale scans and this for the final hits only, like every
/// production SW tool does.
pub fn align(query: &[u8], subject: &[u8], scheme: &ScoringScheme, mode: Mode) -> Alignment {
    let m = query.len();
    let n = subject.len();
    let gs = scheme.gap_open;
    let ge = scheme.gap_extend;
    let width = n + 1;

    // Degenerate inputs.
    if m == 0 && n == 0 {
        return Alignment::empty();
    }

    let mut tb_h = vec![TB_STOP; (m + 1) * width];
    let mut tb_e = vec![TB_OPEN; (m + 1) * width];
    let mut tb_f = vec![TB_OPEN; (m + 1) * width];

    // Rolling score rows.
    let mut h_prev = vec![0i32; width];
    let mut h_cur = vec![0i32; width];
    let mut f = vec![NEG_BOUND; width];

    // Row 0 initialisation depends on the mode.
    match mode {
        Mode::Local | Mode::SemiGlobal => {
            // Free leading subject gaps: H[0][j] = 0, traceback stops.
        }
        Mode::Global => {
            for j in 1..=n {
                h_prev[j] = -(gs + j as i32 * ge);
                tb_h[j] = TB_E;
                tb_e[j] = if j == 1 { TB_OPEN } else { TB_EXTEND };
            }
        }
    }

    let mut best = match mode {
        Mode::Local => 0i32,
        _ => NEG_BOUND,
    };
    let (mut best_i, mut best_j) = (0usize, 0usize);

    for i in 1..=m {
        let q = query[i - 1];
        let row = scheme.matrix.row(q);

        // Column 0 initialisation.
        match mode {
            Mode::Local => {
                h_cur[0] = 0;
            }
            Mode::Global | Mode::SemiGlobal => {
                h_cur[0] = -(gs + i as i32 * ge);
                tb_h[i * width] = TB_F;
                tb_f[i * width] = if i == 1 { TB_OPEN } else { TB_EXTEND };
            }
        }

        let mut e = NEG_BOUND;
        for j in 1..=n {
            let s = subject[j - 1];

            // E (paper Eq. 3): horizontal gap, consumes subject.
            let e_open = h_cur[j - 1] - gs - ge;
            let e_ext = e - ge;
            if e_ext >= e_open {
                e = e_ext;
                tb_e[i * width + j] = TB_EXTEND;
            } else {
                e = e_open;
                tb_e[i * width + j] = TB_OPEN;
            }

            // F (paper Eq. 4): vertical gap, consumes query.
            let f_open = h_prev[j] - gs - ge;
            let f_ext = f[j] - ge;
            if f_ext >= f_open {
                f[j] = f_ext;
                tb_f[i * width + j] = TB_EXTEND;
            } else {
                f[j] = f_open;
                tb_f[i * width + j] = TB_OPEN;
            }

            // H (paper Eq. 2).
            let diag = h_prev[j - 1] + row[s as usize];
            let mut h = diag;
            let mut tb = TB_DIAG;
            if e > h {
                h = e;
                tb = TB_E;
            }
            if f[j] > h {
                h = f[j];
                tb = TB_F;
            }
            if mode == Mode::Local && h <= 0 {
                h = 0;
                tb = TB_STOP;
            }
            h_cur[j] = h;
            tb_h[i * width + j] = tb;

            // Track the traceback start cell.
            match mode {
                Mode::Local => {
                    if h > best {
                        best = h;
                        best_i = i;
                        best_j = j;
                    }
                }
                Mode::SemiGlobal => {
                    if i == m && h > best {
                        best = h;
                        best_i = i;
                        best_j = j;
                    }
                }
                Mode::Global => {}
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }

    // Pick the traceback start.
    match mode {
        Mode::Global => {
            best = h_prev[n];
            best_i = m;
            best_j = n;
        }
        Mode::SemiGlobal => {
            // Empty query: score of aligning nothing (free subject gaps).
            if m == 0 {
                return Alignment {
                    score: 0,
                    ..Alignment::empty()
                };
            }
            // The end cell (m, 0) — the whole subject treated as a free
            // trailing gap — is also a candidate (and the only one when
            // n == 0). h_prev holds row m after the final swap.
            if h_prev[0] > best {
                best = h_prev[0];
                best_i = m;
                best_j = 0;
            }
        }
        Mode::Local => {
            if best <= 0 {
                return Alignment::empty();
            }
        }
    }

    // Walk back.
    let mut ops = Vec::new();
    let (mut i, mut j) = (best_i, best_j);
    // Which matrix we are in: 0 = H, 1 = E, 2 = F.
    let mut state = 0u8;
    loop {
        match state {
            0 => {
                if i == 0 && j == 0 {
                    break;
                }
                match tb_h[i * width + j] {
                    TB_STOP => break,
                    TB_DIAG => {
                        let op = if query[i - 1] == subject[j - 1] {
                            AlignOp::Match
                        } else {
                            AlignOp::Mismatch
                        };
                        ops.push(op);
                        i -= 1;
                        j -= 1;
                    }
                    TB_E => state = 1,
                    TB_F => state = 2,
                    _ => unreachable!("invalid H traceback code"),
                }
            }
            1 => {
                // In E at (i, j): emit a Delete, move left.
                let ext = tb_e[i * width + j] == TB_EXTEND;
                ops.push(AlignOp::Delete);
                j -= 1;
                if !ext {
                    state = 0;
                }
            }
            2 => {
                // In F at (i, j): emit an Insert, move up.
                let ext = tb_f[i * width + j] == TB_EXTEND;
                ops.push(AlignOp::Insert);
                i -= 1;
                if !ext {
                    state = 0;
                }
            }
            _ => unreachable!(),
        }
    }
    ops.reverse();

    Alignment {
        score: best,
        query_start: i,
        query_end: best_i,
        subject_start: j,
        subject_end: best_j,
        ops,
    }
}

/// Convenience wrapper: local alignment (the paper's SW).
pub fn local(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> Alignment {
    align(query, subject, scheme, Mode::Local)
}

/// Convenience wrapper: global alignment.
pub fn global(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> Alignment {
    align(query, subject, scheme, Mode::Global)
}

/// Convenience wrapper: semi-global alignment.
pub fn semi_global(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> Alignment {
    align(query, subject, scheme, Mode::SemiGlobal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::gotoh_score;
    use swdual_bio::{Alphabet, Matrix};

    fn dna(t: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(t).unwrap()
    }
    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn local_score_matches_scalar_kernel() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLATGGARWC");
        let s = prot(b"KVTAGGWRNDC");
        let aln = local(&q, &s, &scheme);
        assert_eq!(aln.score, gotoh_score(&q, &s, &scheme));
        assert!(aln.is_consistent());
        assert_eq!(aln.rescore(&q, &s, &scheme), aln.score);
    }

    #[test]
    fn local_alignment_of_unrelated_is_empty() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let scheme = ScoringScheme::new(m, 2, 1);
        let aln = local(&dna(b"AAAA"), &dna(b"CCCC"), &scheme);
        assert!(aln.is_empty());
        assert_eq!(aln.score, 0);
    }

    #[test]
    fn figure1_global_alignment() {
        // The paper's Figure 1: global alignment of ACTTGTCCG / ATTGTCAG
        // with ma=+1, mi=-1, g=-2 scores 4 and places one gap.
        let scheme = ScoringScheme::figure1_dna();
        let q = dna(b"ACTTGTCCG");
        let s = dna(b"ATTGTCAG");
        let aln = global(&q, &s, &scheme);
        assert_eq!(aln.score, 4);
        assert!(aln.is_consistent());
        assert_eq!(aln.rescore(&q, &s, &scheme), 4);
        assert_eq!(aln.query_start, 0);
        assert_eq!(aln.query_end, 9);
        assert_eq!(aln.subject_start, 0);
        assert_eq!(aln.subject_end, 8);
        // One gap column (the paper puts it under the C).
        assert_eq!(aln.gap_columns(), 1);
    }

    #[test]
    fn global_identity() {
        let scheme = ScoringScheme::protein_default();
        let p = prot(b"MKVLAT");
        let aln = global(&p, &p, &scheme);
        assert_eq!(aln.matches(), 6);
        assert_eq!(aln.cigar(), "6=");
        let expected: i32 = p.iter().map(|&c| scheme.score(c, c)).sum();
        assert_eq!(aln.score, expected);
    }

    #[test]
    fn global_with_empty_sides() {
        let scheme = ScoringScheme::protein_default();
        let p = prot(b"MKV");
        let aln = global(&p, &[], &scheme);
        assert_eq!(aln.cigar(), "3I");
        assert_eq!(aln.score, -(scheme.gap_open + 3 * scheme.gap_extend));
        let aln = global(&[], &p, &scheme);
        assert_eq!(aln.cigar(), "3D");
        let aln = global(&[], &[], &scheme);
        assert!(aln.is_empty());
    }

    #[test]
    fn global_prefers_single_long_gap_over_two() {
        // Affine gaps: one run of 2 is cheaper than two runs of 1.
        let m = Matrix::match_mismatch(Alphabet::Dna, 10, -10);
        let scheme = ScoringScheme::new(m, 5, 1);
        let q = dna(b"AATT");
        let s = dna(b"AAGGTT");
        let aln = global(&q, &s, &scheme);
        // 4 matches (40) - (5 + 2) = 33 with one 2-run of deletes.
        assert_eq!(aln.score, 33);
        assert_eq!(aln.cigar(), "2=2D2=");
    }

    #[test]
    fn semiglobal_free_subject_ends() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, -2);
        let scheme = ScoringScheme::new(m, 3, 1);
        // Query sits in the middle of the subject; end gaps are free.
        let q = dna(b"ACGT");
        let s = dna(b"TTTTACGTGGGG");
        let aln = semi_global(&q, &s, &scheme);
        assert_eq!(aln.score, 8);
        assert_eq!(aln.query_start, 0);
        assert_eq!(aln.query_end, 4);
        assert_eq!(aln.subject_start, 4);
        assert_eq!(aln.subject_end, 8);
        assert_eq!(aln.cigar(), "4=");
    }

    #[test]
    fn semiglobal_consumes_whole_query() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, -2);
        let scheme = ScoringScheme::new(m, 3, 1);
        let q = dna(b"AACGTA");
        let s = dna(b"ACGT");
        let aln = semi_global(&q, &s, &scheme);
        assert!(aln.is_consistent());
        // Whole query must be consumed.
        assert_eq!(aln.query_start, 0);
        assert_eq!(aln.query_end, 6);
        assert_eq!(aln.rescore(&q, &s, &scheme), aln.score);
    }

    #[test]
    fn semiglobal_empty_subject_is_all_inserts() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, -2);
        let scheme = ScoringScheme::new(m, 3, 1);
        let q = dna(b"ACG");
        let aln = semi_global(&q, &[], &scheme);
        assert_eq!(aln.cigar(), "3I");
        assert_eq!(aln.score, -(3 + 3));
    }

    #[test]
    fn local_traceback_region_is_tight() {
        let scheme = ScoringScheme::protein_default();
        // Shared motif WWWW embedded in different contexts.
        let q = prot(b"AAAAWWWWAAAA");
        let s = prot(b"CCCCWWWWCCCC");
        let aln = local(&q, &s, &scheme);
        assert_eq!(aln.query_start, 4);
        assert_eq!(aln.query_end, 8);
        assert_eq!(aln.subject_start, 4);
        assert_eq!(aln.subject_end, 8);
        assert_eq!(aln.cigar(), "4=");
        assert_eq!(aln.score, 44); // 4 * W/W(11)
    }

    #[test]
    fn render_marks_matches_and_gaps() {
        let scheme = ScoringScheme::figure1_dna();
        let q = dna(b"ACTTGTCCG");
        let s = dna(b"ATTGTCAG");
        let aln = global(&q, &s, &scheme);
        let text = aln.render(&q, &s, Alphabet::Dna);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), rows[1].len());
        assert_eq!(rows[1].len(), rows[2].len());
        assert!(rows[0].contains("TTGTC") || rows[2].contains("TTGTC"));
    }
}
