//! 8-bit striped Smith-Waterman — Farrar's byte kernel.
//!
//! Production SIMD SW tools run a *dual-precision pipeline*: a byte
//! (8-bit) kernel first — twice the lanes of the 16-bit kernel, so
//! nearly twice the speed — falling back to 16-bit and finally scalar
//! only for the rare subjects whose score saturates. STRIPED, SWIPE and
//! CUDASW++ all work this way; [`striped8_score_exact`] reproduces the
//! full escalation chain.
//!
//! The byte kernel works in *unsigned biased* arithmetic: profile
//! scores are stored as `s + bias` (`bias = −min(s)`), `H` is computed
//! as `sat_sub(sat_add(H, prof), bias)` and the unsigned saturation at
//! zero implements the local-alignment clamp for free. Clamping the
//! `E`/`F` gap states at zero is sound: a negative gap state can never
//! beat the fresh-start 0 that the clamp grants anyway.

use crate::profile::{StripedProfile, LANES};
use crate::striped::striped_score_exact_profile;
use swdual_bio::matrix::Matrix;
use swdual_bio::ScoringScheme;

/// Byte-kernel lane count: twice the 16-bit kernel's, as in SSE2
/// (16 × u8 per `__m128i`).
pub const LANES8: usize = 2 * LANES;

type V8 = [u8; LANES8];

#[inline(always)]
fn splat(x: u8) -> V8 {
    [x; LANES8]
}

#[inline(always)]
fn vmax(a: V8, b: V8) -> V8 {
    let mut out = [0u8; LANES8];
    for l in 0..LANES8 {
        out[l] = a[l].max(b[l]);
    }
    out
}

#[inline(always)]
fn vadds(a: V8, b: V8) -> V8 {
    let mut out = [0u8; LANES8];
    for l in 0..LANES8 {
        out[l] = a[l].saturating_add(b[l]);
    }
    out
}

#[inline(always)]
fn vsubs_scalar(a: V8, b: u8) -> V8 {
    let mut out = [0u8; LANES8];
    for l in 0..LANES8 {
        out[l] = a[l].saturating_sub(b);
    }
    out
}

#[inline(always)]
fn vshift(a: V8, fill: u8) -> V8 {
    let mut out = [fill; LANES8];
    out[1..LANES8].copy_from_slice(&a[..(LANES8 - 1)]);
    out
}

#[inline(always)]
fn any_gt(a: V8, b: V8) -> bool {
    (0..LANES8).any(|l| a[l] > b[l])
}

#[inline(always)]
#[allow(clippy::needless_range_loop)] // index form keeps the reduction branch-free
fn hmax(a: V8) -> u8 {
    let mut m = a[0];
    for l in 1..LANES8 {
        m = m.max(a[l]);
    }
    m
}

/// Striped byte-layout query profile: biased unsigned scores,
/// position `v + l·segments` in lane `l` of vector `v`; padding lanes
/// hold 0 (the most negative biased value), so they can never grow.
#[derive(Debug, Clone)]
pub struct ByteProfile {
    /// Query length before padding.
    pub query_len: usize,
    /// Vectors per residue row.
    pub segments: usize,
    /// The bias added to every score (= −min matrix score).
    pub bias: u8,
    scores: Vec<V8>,
    alphabet_size: usize,
}

impl ByteProfile {
    /// Build the biased byte profile of `query` under `matrix`.
    ///
    /// Returns `None` when the matrix range cannot be biased into a
    /// byte (|min| + max ≥ 255), in which case callers go straight to
    /// the 16-bit kernel.
    pub fn build(query: &[u8], matrix: &Matrix) -> Option<ByteProfile> {
        let min = matrix.min_score();
        let max = matrix.max_score();
        if min < -120 || max > 120 || (max - min) >= 250 {
            return None;
        }
        let bias = (-min).max(0) as u8;
        let query_len = query.len();
        let segments = query_len.div_ceil(LANES8).max(1);
        let alphabet_size = matrix.size();
        let mut scores = vec![[0u8; LANES8]; alphabet_size * segments];
        for r in 0..alphabet_size {
            for v in 0..segments {
                let vec = &mut scores[r * segments + v];
                for (l, lane) in vec.iter_mut().enumerate() {
                    let pos = v + l * segments;
                    *lane = if pos < query_len {
                        (matrix.score(query[pos], r as u8) + bias as i32) as u8
                    } else {
                        0 // pad: biased value 0 = true score −bias
                    };
                }
            }
        }
        Some(ByteProfile {
            query_len,
            segments,
            bias,
            scores,
            alphabet_size,
        })
    }

    /// The `segments` vectors of residue `r`'s profile row.
    #[inline]
    pub fn row(&self, r: u8) -> &[V8] {
        &self.scores[r as usize * self.segments..(r as usize + 1) * self.segments]
    }
}

/// Byte-kernel score from a prebuilt profile. `None` = saturated (or
/// too close to saturation to trust); escalate to 16-bit.
pub fn striped8_score_profile(
    profile: &ByteProfile,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    debug_assert!(profile.alphabet_size == scheme.matrix.size());
    let seg = profile.segments;
    let open = (scheme.gap_open + scheme.gap_extend).min(255) as u8;
    let ext = scheme.gap_extend.min(255) as u8;
    let bias = profile.bias;

    let mut h_store: Vec<V8> = vec![splat(0); seg];
    let mut h_load: Vec<V8> = vec![splat(0); seg];
    let mut e: Vec<V8> = vec![splat(0); seg];
    let mut vmax_acc = splat(0);

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = splat(0);
        let mut vh = vshift(h_store[seg - 1], 0);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            // H = max(diag + score, E, F); unsigned floor is the 0 clamp.
            vh = vsubs_scalar(vadds(vh, prof[v]), bias);
            vh = vmax(vh, e[v]);
            vh = vmax(vh, vf);
            vmax_acc = vmax(vmax_acc, vh);
            h_store[v] = vh;

            let h_open = vsubs_scalar(vh, open);
            e[v] = vmax(vsubs_scalar(e[v], ext), h_open);
            vf = vmax(vsubs_scalar(vf, ext), h_open);
            vh = h_load[v];
        }

        let mut v = 0usize;
        vf = vshift(vf, 0);
        while any_gt(vf, vsubs_scalar(h_store[v], open)) {
            h_store[v] = vmax(h_store[v], vf);
            let h_open = vsubs_scalar(h_store[v], open);
            e[v] = vmax(e[v], h_open);
            vf = vsubs_scalar(vf, ext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = vshift(vf, 0);
            }
        }
    }

    let best = hmax(vmax_acc);
    // Saturation guard: an add saturates only when H + biased-profile
    // would pass 255, i.e. H ≥ 255 − (max + bias).
    let limit = 255u16 - (scheme.matrix.max_score().max(0) as u16 + bias as u16);
    if best as u16 >= limit {
        None
    } else {
        Some(best as i32)
    }
}

/// Byte-kernel score; builds the profile internally. `None` when the
/// byte range is insufficient (saturation or un-biasable matrix).
pub fn striped8_score(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> Option<i32> {
    let profile = ByteProfile::build(query, &scheme.matrix)?;
    striped8_score_profile(&profile, subject, scheme)
}

/// The full dual-precision pipeline: byte kernel, then 16-bit striped,
/// then scalar `i32`. Always exact. Each profile is built at most once
/// per call; callers that score many subjects should build (or cache)
/// the profiles themselves and use [`striped8_score_exact_profiles`] —
/// or the tiered pipeline in [`crate::tiered`], which also dispatches
/// to the SIMD backends.
pub fn striped8_score_exact(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
    let byte = ByteProfile::build(query, &scheme.matrix);
    if let Some(s) = byte
        .as_ref()
        .and_then(|p| striped8_score_profile(p, subject, scheme))
    {
        return s;
    }
    // Escalation: build the 16-bit profile only when actually needed.
    let word = StripedProfile::build(query, &scheme.matrix);
    striped_score_exact_profile(&word, query, subject, scheme)
}

/// The dual-precision pipeline over prebuilt (possibly cached)
/// profiles: the byte kernel when `byte` is available, the 16-bit
/// kernel on saturation, scalar last. The escalated rescore reuses
/// `word` instead of rebuilding it — this is the per-subject step of a
/// cached database pass. `query` must be the sequence both profiles
/// were built from.
pub fn striped8_score_exact_profiles(
    byte: Option<&ByteProfile>,
    word: &StripedProfile,
    query: &[u8],
    subject: &[u8],
    scheme: &ScoringScheme,
) -> i32 {
    if let Some(s) = byte.and_then(|p| striped8_score_profile(p, subject, scheme)) {
        return s;
    }
    striped_score_exact_profile(word, query, subject, scheme)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::gotoh_score;
    use swdual_bio::Alphabet;

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect()
    }

    #[test]
    fn agrees_with_scalar_on_typical_pairs() {
        let scheme = ScoringScheme::protein_default();
        for seed in 1..12u64 {
            let q = pseudo_random(40 + (seed as usize * 17) % 120, seed);
            let s = pseudo_random(30 + (seed as usize * 31) % 150, seed + 50);
            assert_eq!(
                striped8_score(&q, &s, &scheme).expect("no overflow at this size"),
                gotoh_score(&q, &s, &scheme),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn short_queries_use_padding_lanes() {
        let scheme = ScoringScheme::protein_default();
        let s = prot(b"MKVLATGGARNDCEQWYHPST");
        for q in [&b"M"[..], b"MKV", b"MKVLATGGARNDCEQ"] {
            let q = prot(q);
            assert_eq!(
                striped8_score(&q, &s, &scheme).unwrap(),
                gotoh_score(&q, &s, &scheme)
            );
        }
    }

    #[test]
    fn saturation_is_detected_and_pipeline_recovers() {
        let scheme = ScoringScheme::protein_default();
        // 60 tryptophans: score 660 > byte range but fine for 16-bit.
        let q = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 60];
        assert_eq!(striped8_score(&q, &q, &scheme), None);
        assert_eq!(striped8_score_exact(&q, &q, &scheme), 660);
        // 4000 tryptophans: 44000 overflows 16-bit too; scalar catches it.
        let q = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 4000];
        assert_eq!(striped8_score_exact(&q, &q, &scheme), 44_000);
    }

    #[test]
    fn near_saturation_scores_are_exact() {
        let scheme = ScoringScheme::protein_default();
        // Score 11*19 = 209 < limit = 255 - (11 + 4) = 240: exact.
        let q = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 19];
        assert_eq!(striped8_score(&q, &q, &scheme), Some(209));
    }

    #[test]
    fn saturation_guard_fires_one_step_before_lanes_clamp() {
        // BLOSUM62 + default gaps: bias = 4, max = 11, so the guard
        // limit is 255 − (11 + 4) = 240. A best score of 242 has NOT
        // clamped (< 255) but one more match could have saturated a
        // lane mid-run, so the kernel must refuse it; 231 is the last
        // trustworthy rung of the ladder (the next W adds 11).
        let scheme = ScoringScheme::protein_default();
        let w = Alphabet::Protein.encode_byte(b'W').unwrap();
        let q21 = vec![w; 21]; // 21·11 = 231 < 240: exact
        assert_eq!(striped8_score(&q21, &q21, &scheme), Some(231));
        let q22 = vec![w; 22]; // 22·11 = 242 ∈ [240, 255): refuse
        assert_eq!(
            striped8_score(&q22, &q22, &scheme),
            None,
            "a not-yet-clamped best past the limit must still escalate"
        );
        // And the escalated pipeline recovers the exact score.
        assert_eq!(striped8_score_exact(&q22, &q22, &scheme), 242);
    }

    #[test]
    fn exact_profiles_variant_reuses_prebuilt_profiles() {
        let scheme = ScoringScheme::protein_default();
        let w = Alphabet::Protein.encode_byte(b'W').unwrap();
        for len in [10usize, 22, 60, 3000] {
            let q = vec![w; len];
            let byte = ByteProfile::build(&q, &scheme.matrix);
            let word = StripedProfile::build(&q, &scheme.matrix);
            assert_eq!(
                striped8_score_exact_profiles(byte.as_ref(), &word, &q, &q, &scheme),
                striped8_score_exact(&q, &q, &scheme),
                "len {len}"
            );
        }
    }

    #[test]
    fn unbiased_matrix_is_rejected() {
        // A matrix with a huge negative score cannot be biased into u8.
        let m = Matrix::match_mismatch(Alphabet::Protein, 1, -500);
        let scheme = ScoringScheme::new(m, 1, 1);
        let q = pseudo_random(30, 3);
        assert!(ByteProfile::build(&q, &scheme.matrix).is_none());
        // The exact pipeline still answers via the 16-bit/scalar path.
        let s = pseudo_random(30, 4);
        assert_eq!(
            striped8_score_exact(&q, &s, &scheme),
            gotoh_score(&q, &s, &scheme)
        );
    }

    #[test]
    fn empty_inputs() {
        let scheme = ScoringScheme::protein_default();
        assert_eq!(striped8_score(&[], &prot(b"MKV"), &scheme), Some(0));
        assert_eq!(striped8_score(&prot(b"MKV"), &[], &scheme), Some(0));
    }

    #[test]
    fn profile_reuse_across_a_database_pass() {
        let scheme = ScoringScheme::protein_default();
        let q = pseudo_random(90, 9);
        let profile = ByteProfile::build(&q, &scheme.matrix).unwrap();
        for seed in 20..28u64 {
            let s = pseudo_random(70, seed);
            assert_eq!(
                striped8_score_profile(&profile, &s, &scheme).unwrap(),
                gotoh_score(&q, &s, &scheme)
            );
        }
    }

    #[test]
    fn cheap_gap_scheme_gap_gap_corner() {
        let m = Matrix::match_mismatch(Alphabet::Protein, 2, -100);
        let scheme = ScoringScheme::new(m, 1, 0);
        let q = pseudo_random(50, 13);
        let s = pseudo_random(50, 14);
        assert_eq!(
            striped8_score_exact(&q, &s, &scheme),
            gotoh_score(&q, &s, &scheme)
        );
    }
}
