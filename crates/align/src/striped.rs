//! Farrar's striped Smith-Waterman kernel — the STRIPED baseline [18].
//!
//! The query is laid out in the striped order of
//! [`crate::profile::StripedProfile`]: position `v + l·segments` lives in
//! lane `l` of vector `v`. Processing the database one residue (one DP
//! *column*) at a time, the kernel keeps whole vectors of `H` and `E`
//! values and propagates the vertical gap state `F` lazily: most columns
//! never need the expensive lane-crossing correction, which is what made
//! Farrar's formulation 2–8× faster than previous SIMD layouts.
//!
//! The implementation uses portable `[i16; LANES]` arrays with saturating
//! arithmetic; rustc autovectorizes these loops to real SIMD on x86-64
//! and aarch64 (`LANES = 8` matches one SSE2 register of `i16`, exactly
//! the configuration Farrar's paper uses). When a score would overflow
//! the 16-bit range the kernel reports `None` and callers fall back to
//! the scalar `i32` kernel — the same escalation strategy STRIPED and
//! SWIPE implement.
//!
//! One deliberate strengthening over Farrar's published pseudo-code: the
//! lazy-`F` loop also refreshes `E` with the corrected `H` values. The
//! original omits this, which is only safe when the substitution matrix
//! is not too negative relative to the gap penalties (true for
//! BLOSUM62/affine defaults, not for arbitrary schemes). The property
//! tests run arbitrary schemes, so we close the corner.

use crate::profile::{StripedProfile, LANES};
use crate::scalar::gotoh_score;
use swdual_bio::ScoringScheme;

type V = [i16; LANES];

/// Large negative sentinel for "no gap state", safely away from
/// `i16::MIN` so saturating subtraction cannot wrap semantics.
const NEG: i16 = i16::MIN / 2;

#[inline(always)]
fn splat(x: i16) -> V {
    [x; LANES]
}

#[inline(always)]
fn vmax(a: V, b: V) -> V {
    let mut out = [0i16; LANES];
    for l in 0..LANES {
        out[l] = a[l].max(b[l]);
    }
    out
}

#[inline(always)]
fn vadds(a: V, b: V) -> V {
    let mut out = [0i16; LANES];
    for l in 0..LANES {
        out[l] = a[l].saturating_add(b[l]);
    }
    out
}

#[inline(always)]
fn vsubs_scalar(a: V, b: i16) -> V {
    let mut out = [0i16; LANES];
    for l in 0..LANES {
        out[l] = a[l].saturating_sub(b);
    }
    out
}

/// Shift lanes up by one (lane `l` receives lane `l-1`), inserting
/// `fill` into lane 0 — the portable version of `_mm_slli_si128` by one
/// element.
#[inline(always)]
fn vshift(a: V, fill: i16) -> V {
    let mut out = [fill; LANES];
    out[1..LANES].copy_from_slice(&a[..(LANES - 1)]);
    out
}

#[inline(always)]
fn any_gt(a: V, b: V) -> bool {
    (0..LANES).any(|l| a[l] > b[l])
}

#[inline(always)]
#[allow(clippy::needless_range_loop)] // index form keeps the reduction branch-free
fn hmax(a: V) -> i16 {
    let mut m = a[0];
    for l in 1..LANES {
        m = m.max(a[l]);
    }
    m
}

/// Striped Gotoh local-alignment score from a prebuilt profile.
///
/// Returns `None` when the score approaches the `i16` ceiling and the
/// result may have saturated; callers should recompute with
/// [`gotoh_score`].
pub fn striped_score_profile(
    profile: &StripedProfile,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    let seg = profile.segments;
    let open = (scheme.gap_open + scheme.gap_extend) as i16;
    let ext = scheme.gap_extend as i16;

    let mut h_store: Vec<V> = vec![splat(0); seg];
    let mut h_load: Vec<V> = vec![splat(0); seg];
    let mut e: Vec<V> = vec![splat(NEG); seg];
    let mut vmax_acc = splat(0);

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = splat(NEG);
        // Diagonal feed for vector 0: last vector of the previous column,
        // lanes shifted up by one, H[0][j-1] boundary = 0.
        let mut vh = vshift(h_store[seg - 1], 0);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            // H = diag + profile, then max with E, F, 0.
            vh = vadds(vh, prof[v]);
            vh = vmax(vh, e[v]);
            vh = vmax(vh, vf);
            vh = vmax(vh, splat(0));
            vmax_acc = vmax(vmax_acc, vh);
            h_store[v] = vh;

            // Gap-state updates for the next column / next vector.
            let h_open = vsubs_scalar(vh, open);
            e[v] = vmax(vsubs_scalar(e[v], ext), h_open);
            vf = vmax(vsubs_scalar(vf, ext), h_open);

            // Load previous column's H for the next vector's diagonal.
            vh = h_load[v];
        }

        // Lazy-F: propagate F across the lane boundary until it can no
        // longer improve anything.
        let mut v = 0usize;
        vf = vshift(vf, NEG);
        while any_gt(vf, vsubs_scalar(h_store[v], open)) {
            h_store[v] = vmax(h_store[v], vf);
            // Refresh E with the corrected H (see module docs).
            let h_open = vsubs_scalar(h_store[v], open);
            e[v] = vmax(e[v], h_open);
            vf = vsubs_scalar(vf, ext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = vshift(vf, NEG);
            }
        }
    }

    let best = hmax(vmax_acc);
    let limit = i16::MAX - scheme.matrix.max_score() as i16;
    if best >= limit {
        None // may have saturated; force the i32 path
    } else {
        Some(best as i32)
    }
}

/// Striped Gotoh score; builds the profile internally.
pub fn striped_score(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> Option<i32> {
    let profile = StripedProfile::build(query, &scheme.matrix);
    striped_score_profile(&profile, subject, scheme)
}

/// Striped score with automatic scalar fallback on 16-bit overflow —
/// always exact.
pub fn striped_score_exact(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
    let profile = StripedProfile::build(query, &scheme.matrix);
    striped_score_exact_profile(&profile, query, subject, scheme)
}

/// Exact striped score from a prebuilt (possibly cached) profile:
/// 16-bit kernel first, scalar recompute on overflow. Callers holding a
/// profile — the tiered pipeline, the profile cache, a database pass —
/// use this to avoid the per-call build that [`striped_score_exact`]
/// pays. `query` must be the sequence `profile` was built from.
pub fn striped_score_exact_profile(
    profile: &StripedProfile,
    query: &[u8],
    subject: &[u8],
    scheme: &ScoringScheme,
) -> i32 {
    debug_assert_eq!(profile.query_len, query.len());
    striped_score_profile(profile, subject, scheme)
        .unwrap_or_else(|| gotoh_score(query, subject, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::{Alphabet, Matrix};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }
    fn dna(t: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(t).unwrap()
    }

    #[test]
    fn agrees_with_scalar_on_protein_pair() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEE");
        let s = prot(b"MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEE");
        assert_eq!(
            striped_score(&q, &s, &scheme),
            Some(gotoh_score(&q, &s, &scheme))
        );
    }

    #[test]
    fn agrees_with_scalar_on_short_queries() {
        // Queries shorter than one vector exercise the padding lanes.
        let scheme = ScoringScheme::protein_default();
        let s = prot(b"MKVLATGGARNDCEQ");
        for q in [&b"M"[..], b"MK", b"MKV", b"MKVLATG"] {
            let q = prot(q);
            assert_eq!(
                striped_score(&q, &s, &scheme).unwrap(),
                gotoh_score(&q, &s, &scheme),
                "query len {}",
                q.len()
            );
        }
    }

    #[test]
    fn lazy_f_kicks_in_with_cheap_vertical_gaps() {
        // Tiny gap penalties make F propagate across many lanes.
        let m = Matrix::match_mismatch(Alphabet::Dna, 5, -1);
        let scheme = ScoringScheme::new(m, 0, 0);
        let q = dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT"); // 32 = 4 vectors
        let s = dna(b"ACGT");
        assert_eq!(
            striped_score(&q, &s, &scheme).unwrap(),
            gotoh_score(&q, &s, &scheme)
        );
    }

    #[test]
    fn gap_gap_corner_case_matches_scalar() {
        // Scheme where an insertion adjacent to a deletion is optimal:
        // harsh mismatches, almost-free gaps. This is the case Farrar's
        // published lazy-F loop (without the E refresh) can get wrong.
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, -100);
        let scheme = ScoringScheme::new(m, 1, 0);
        let q = dna(b"AATTAACCGGAATTACGACGT");
        let s = dna(b"AAGGAACCTTAATTGCATCGA");
        assert_eq!(
            striped_score(&q, &s, &scheme).unwrap(),
            gotoh_score(&q, &s, &scheme)
        );
    }

    #[test]
    fn empty_inputs_score_zero() {
        let scheme = ScoringScheme::protein_default();
        assert_eq!(striped_score(&[], &prot(b"MKV"), &scheme), Some(0));
        assert_eq!(striped_score(&prot(b"MKV"), &[], &scheme), Some(0));
    }

    #[test]
    fn overflow_is_detected_and_exact_fallback_recovers() {
        let scheme = ScoringScheme::protein_default();
        // 3000 tryptophans: true score 33000 > i16::MAX.
        let q = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 3000];
        assert_eq!(striped_score(&q, &q, &scheme), None);
        assert_eq!(striped_score_exact(&q, &q, &scheme), 33_000);
    }

    #[test]
    fn near_limit_scores_are_conservative() {
        // A score just under the detection limit must be exact.
        let scheme = ScoringScheme::protein_default();
        let q = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 2900];
        // 2900 * 11 = 31900; limit = 32767 - 11 = 32756 -> still exact.
        assert_eq!(striped_score(&q, &q, &scheme), Some(31_900));
    }

    #[test]
    fn profile_reuse_across_subjects() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLATGGARNDCEQWYHPST");
        let profile = StripedProfile::build(&q, &scheme.matrix);
        for s in [&b"MKVLAT"[..], b"GGARNDCEQ", b"WYHPSTMKV", b"AAAA"] {
            let s = prot(s);
            assert_eq!(
                striped_score_profile(&profile, &s, &scheme).unwrap(),
                gotoh_score(&q, &s, &scheme)
            );
        }
    }

    #[test]
    fn long_mixed_sequences_agree_with_scalar() {
        // Deterministic pseudo-random residues (no rand dependency in
        // unit tests; the integration proptests cover random cases).
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 20) as u8
        };
        let q: Vec<u8> = (0..300).map(|_| next()).collect();
        let s: Vec<u8> = (0..500).map(|_| next()).collect();
        let scheme = ScoringScheme::protein_default();
        assert_eq!(
            striped_score(&q, &s, &scheme).unwrap(),
            gotoh_score(&q, &s, &scheme)
        );
    }
}
