//! Inter-sequence SIMD Smith-Waterman — the SWIPE baseline [9].
//!
//! Where Farrar's kernel vectorises *within* one comparison (lanes =
//! query positions), Rognes' SWIPE vectorises *across* comparisons: lane
//! `l` of every vector belongs to database sequence `l` of the current
//! batch. All lanes execute the plain Gotoh recurrences independently —
//! there is no inter-lane dependency at all, so no lazy-F correction is
//! needed and utilisation stays near 100% regardless of scoring
//! parameters. This is why SWIPE beats STRIPED on database search (and
//! why the paper's Table II shows exactly that ordering).
//!
//! Lanes are `i16` saturating, like the 16-bit mode of SWIPE; per-lane
//! overflow is detected and only the affected lanes are recomputed with
//! the scalar `i32` kernel. Batches whose sequences have unequal lengths
//! simply expire lanes early: an expired lane receives a poison
//! substitution score so it can never produce new positive cells.

use crate::profile::LANES;
use crate::scalar::gotoh_score;
use swdual_bio::ScoringScheme;

const NEG: i16 = i16::MIN / 2;

/// Result of one batched kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchResult {
    /// Per-lane local-alignment scores (exact unless flagged).
    pub scores: [i32; LANES],
    /// Per-lane overflow flags: `true` means the 16-bit lane saturated
    /// and `scores` is unreliable for that lane.
    pub overflow: [bool; LANES],
}

/// Internal `i16` query profile in plain layout: row per residue code.
struct Profile16 {
    query_len: usize,
    rows: Vec<i16>,
    /// Poison row handed to expired lanes.
    poison: Vec<i16>,
}

impl Profile16 {
    fn build(query: &[u8], scheme: &ScoringScheme) -> Profile16 {
        let m = query.len();
        let size = scheme.matrix.size();
        let mut rows = vec![0i16; size * m];
        for r in 0..size {
            let dst = &mut rows[r * m..(r + 1) * m];
            for (i, &q) in query.iter().enumerate() {
                dst[i] = scheme.matrix.score(q, r as u8) as i16;
            }
        }
        Profile16 {
            query_len: m,
            rows,
            poison: vec![NEG; m],
        }
    }

    #[inline]
    fn row(&self, r: u8) -> &[i16] {
        &self.rows[r as usize * self.query_len..(r as usize + 1) * self.query_len]
    }
}

/// Compare one query against up to [`LANES`] subjects simultaneously.
/// Missing subjects (batch shorter than `LANES`) score 0.
pub fn interseq_batch(query: &[u8], subjects: &[&[u8]], scheme: &ScoringScheme) -> BatchResult {
    assert!(
        subjects.len() <= LANES,
        "at most {LANES} subjects per batch"
    );
    let m = query.len();
    let mut result = BatchResult {
        scores: [0; LANES],
        overflow: [false; LANES],
    };
    if m == 0 || subjects.iter().all(|s| s.is_empty()) {
        return result;
    }

    let profile = Profile16::build(query, scheme);
    let open = (scheme.gap_open + scheme.gap_extend) as i16;
    let ext = scheme.gap_extend as i16;
    let max_len = subjects.iter().map(|s| s.len()).max().unwrap_or(0);

    // State per query position: H and E vectors (lane = subject).
    let mut h: Vec<[i16; LANES]> = vec![[0; LANES]; m];
    let mut e: Vec<[i16; LANES]> = vec![[NEG; LANES]; m];
    let mut best = [0i16; LANES];

    // Per-column residue rows, one per lane.
    let mut rows: [&[i16]; LANES] = [&profile.poison; LANES];

    for j in 0..max_len {
        for (l, row) in rows.iter_mut().enumerate() {
            *row = match subjects.get(l).and_then(|s| s.get(j)) {
                Some(&r) => profile.row(r),
                None => &profile.poison,
            };
        }

        let mut f = [NEG; LANES];
        let mut diag = [0i16; LANES]; // H[0][j-1] boundary row.
        for i in 0..m {
            let h_old = h[i]; // H[i+1][j-1] (previous column).

            // E (horizontal, paper Eq. 3) from the previous column.
            // F (vertical, paper Eq. 4) chains within this column via
            // `f`, fed by H[i][j] of the row above (already updated).
            let mut h_new = [0i16; LANES];
            for l in 0..LANES {
                let e_upd = (e[i][l].saturating_sub(ext)).max(h_old[l].saturating_sub(open));
                e[i][l] = e_upd;
                let sub = diag[l].saturating_add(rows[l][i]);
                let hv = sub.max(e_upd).max(f[l]).max(0);
                h_new[l] = hv;
                best[l] = best[l].max(hv);
                f[l] = (f[l].saturating_sub(ext)).max(hv.saturating_sub(open));
            }
            diag = h_old;
            h[i] = h_new;
        }
    }

    let limit = i16::MAX - scheme.matrix.max_score() as i16;
    for (l, &b) in best.iter().enumerate() {
        if b >= limit {
            result.overflow[l] = true;
        }
        result.scores[l] = b as i32;
    }
    result
}

/// Exact batched comparison: runs [`interseq_batch`] and recomputes any
/// overflowed lane with the scalar kernel.
pub fn interseq_batch_exact(query: &[u8], subjects: &[&[u8]], scheme: &ScoringScheme) -> Vec<i32> {
    let batch = interseq_batch(query, subjects, scheme);
    subjects
        .iter()
        .enumerate()
        .map(|(l, s)| {
            if batch.overflow[l] {
                gotoh_score(query, s, scheme)
            } else {
                batch.scores[l]
            }
        })
        .collect()
}

/// Score one query against a whole list of subjects, batching
/// [`LANES`]-wide — the inner loop of a SWIPE worker.
pub fn interseq_search(query: &[u8], subjects: &[&[u8]], scheme: &ScoringScheme) -> Vec<i32> {
    let mut out = Vec::with_capacity(subjects.len());
    for chunk in subjects.chunks(LANES) {
        out.extend(interseq_batch_exact(query, chunk, scheme));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::{Alphabet, Matrix};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn full_batch_agrees_with_scalar() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRG");
        let subjects: Vec<Vec<u8>> = [
            &b"MKWVTFISLL"[..],
            b"FLFSSAYSRG",
            b"MKWVTFISLLFLFSSAYSRG",
            b"AAAA",
            b"GRSYASSFLFLLSIFTVWKM", // reversed
            b"MKW",
            b"WWWWWWWW",
            b"MKVVTFISLLFLFSSAYSRG",
        ]
        .iter()
        .map(|t| prot(t))
        .collect();
        let refs: Vec<&[u8]> = subjects.iter().map(|s| s.as_slice()).collect();
        let got = interseq_batch_exact(&q, &refs, &scheme);
        for (l, s) in refs.iter().enumerate() {
            assert_eq!(got[l], gotoh_score(&q, s, &scheme), "lane {l}");
        }
    }

    #[test]
    fn partial_batch_and_empty_subjects() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLAT");
        let s0 = prot(b"MKVLAT");
        let s1 = prot(b"");
        let refs: Vec<&[u8]> = vec![&s0, &s1];
        let got = interseq_batch_exact(&q, &refs, &scheme);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], gotoh_score(&q, &s0, &scheme));
        assert_eq!(got[1], 0);
    }

    #[test]
    fn unequal_lengths_expire_lanes_correctly() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLATGGARND");
        let subjects: Vec<Vec<u8>> = vec![
            prot(b"M"),
            prot(b"MKVLATGGARNDMKVLATGGARNDMKVLATGGARND"),
            prot(b"GGAR"),
            prot(b"NDMKVLAT"),
        ];
        let refs: Vec<&[u8]> = subjects.iter().map(|s| s.as_slice()).collect();
        let got = interseq_batch_exact(&q, &refs, &scheme);
        for (l, s) in refs.iter().enumerate() {
            assert_eq!(got[l], gotoh_score(&q, s, &scheme), "lane {l}");
        }
    }

    #[test]
    fn empty_query_scores_all_zero() {
        let scheme = ScoringScheme::protein_default();
        let s0 = prot(b"MKVLAT");
        let refs: Vec<&[u8]> = vec![&s0];
        assert_eq!(interseq_batch_exact(&[], &refs, &scheme), vec![0]);
    }

    #[test]
    #[should_panic]
    fn oversized_batch_panics() {
        let scheme = ScoringScheme::protein_default();
        let s = prot(b"M");
        let refs: Vec<&[u8]> = vec![&s; LANES + 1];
        let _ = interseq_batch(&[], &refs, &scheme);
    }

    #[test]
    fn overflow_lane_flagged_and_exact_recovers() {
        let scheme = ScoringScheme::protein_default();
        let w = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 3000];
        let small = prot(b"MKV");
        let refs: Vec<&[u8]> = vec![&w, &small];
        let batch = interseq_batch(&w, &refs, &scheme);
        assert!(batch.overflow[0]);
        assert!(!batch.overflow[1]);
        let exact = interseq_batch_exact(&w, &refs, &scheme);
        assert_eq!(exact[0], 33_000);
    }

    #[test]
    fn search_batches_whole_database() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLATGGARND");
        // 19 subjects -> 3 batches (8+8+3).
        let subjects: Vec<Vec<u8>> = (0..19)
            .map(|i| {
                let shift = i % 12;
                let mut v = q.clone();
                v.rotate_left(shift);
                v
            })
            .collect();
        let refs: Vec<&[u8]> = subjects.iter().map(|s| s.as_slice()).collect();
        let got = interseq_search(&q, &refs, &scheme);
        assert_eq!(got.len(), 19);
        for (l, s) in refs.iter().enumerate() {
            assert_eq!(got[l], gotoh_score(&q, s, &scheme), "subject {l}");
        }
    }

    #[test]
    fn cheap_gap_scheme_agrees() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, -100);
        let scheme = ScoringScheme::new(m, 1, 0);
        let q = Alphabet::Dna.encode(b"AATTAACCGGAATTACGACGT").unwrap();
        let subjects: Vec<Vec<u8>> = vec![
            Alphabet::Dna.encode(b"AAGGAACCTTAATTGCATCGA").unwrap(),
            Alphabet::Dna.encode(b"TTTTAAAACCCCGGGG").unwrap(),
        ];
        let refs: Vec<&[u8]> = subjects.iter().map(|s| s.as_slice()).collect();
        let got = interseq_batch_exact(&q, &refs, &scheme);
        for (l, s) in refs.iter().enumerate() {
            assert_eq!(got[l], gotoh_score(&q, s, &scheme), "lane {l}");
        }
    }
}
