//! SWIPE-style tiered scoring pipeline: byte lanes first, 16-bit lanes
//! on saturation, scalar `i32` Gotoh as the last resort.
//!
//! SWIPE [9] scores every subject with saturated byte arithmetic and
//! only re-scores the (rare, high-scoring) sequences whose score could
//! have clamped. The byte kernel does twice the cells per vector of the
//! 16-bit kernel, and for a typical database >99% of subjects resolve
//! in bytes, so the pipeline's throughput is essentially byte-kernel
//! throughput with an escalation tax proportional to the hit rate.
//!
//! Every tier scores through the same [`QueryProfiles`] bundle, so the
//! per-query profile work is paid once (and, with
//! [`crate::profile_cache::ProfileCache`], once per *process* rather
//! than once per job). [`TierStats`] counts how many subjects each tier
//! resolved; the runtime workers export those counts to `obs::metrics`
//! so a schedule report can show the escalation rate.

use crate::dispatch::QueryProfiles;
use crate::scalar::gotoh_score;
use swdual_bio::ScoringScheme;

/// Where each subject of a batch was resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Subjects scored in total.
    pub subjects: u64,
    /// Resolved by the saturated byte kernel.
    pub byte_resolved: u64,
    /// Escalated to (and resolved by) the 16-bit kernel.
    pub escalated_16: u64,
    /// Escalated all the way to the scalar `i32` kernel.
    pub escalated_scalar: u64,
}

impl TierStats {
    /// Merge another batch's counts into this one.
    pub fn merge(&mut self, other: &TierStats) {
        self.subjects += other.subjects;
        self.byte_resolved += other.byte_resolved;
        self.escalated_16 += other.escalated_16;
        self.escalated_scalar += other.escalated_scalar;
    }
}

/// Score one subject through the tier ladder. Always returns the exact
/// Gotoh local-alignment score; `stats` records which tier resolved it.
#[inline]
pub fn tiered_score(
    profiles: &QueryProfiles,
    subject: &[u8],
    scheme: &ScoringScheme,
    stats: &mut TierStats,
) -> i32 {
    stats.subjects += 1;
    if let Some(score) = profiles.score8(subject, scheme) {
        stats.byte_resolved += 1;
        return score;
    }
    if let Some(score) = profiles.score16(subject, scheme) {
        stats.escalated_16 += 1;
        return score;
    }
    stats.escalated_scalar += 1;
    gotoh_score(&profiles.query, subject, scheme)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Backend;
    use swdual_bio::{Alphabet, Matrix};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn typical_subjects_resolve_in_bytes() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRGVFRR");
        let s = prot(b"MKWVTFISLLLLFSSAYSRGVFRR");
        let p = QueryProfiles::build(&q, &scheme.matrix);
        let mut stats = TierStats::default();
        let got = tiered_score(&p, &s, &scheme, &mut stats);
        assert_eq!(got, gotoh_score(&q, &s, &scheme));
        assert_eq!(stats.subjects, 1);
        assert_eq!(stats.byte_resolved, 1);
        assert_eq!(stats.escalated_16, 0);
        assert_eq!(stats.escalated_scalar, 0);
    }

    #[test]
    fn saturating_identity_escalates_to_16_bit() {
        // 400 identical W's: score 400·11 = 4400 overflows a byte but
        // not an i16, so exactly one escalation to the 16-bit tier.
        let scheme = ScoringScheme::protein_default();
        let q = prot(&vec![b'W'; 400]);
        let p = QueryProfiles::build(&q, &scheme.matrix);
        let mut stats = TierStats::default();
        let got = tiered_score(&p, &q, &scheme, &mut stats);
        assert_eq!(got, 4400);
        assert_eq!(stats.escalated_16, 1);
        assert_eq!(stats.escalated_scalar, 0);
    }

    #[test]
    fn i16_saturation_falls_through_to_scalar() {
        // 3100 W's: 34_100 > i16::MAX, so both vector tiers bail and the
        // scalar kernel answers.
        let scheme = ScoringScheme::protein_default();
        let q = prot(&vec![b'W'; 3100]);
        let p = QueryProfiles::build(&q, &scheme.matrix);
        let mut stats = TierStats::default();
        let got = tiered_score(&p, &q, &scheme, &mut stats);
        assert_eq!(got, 3100 * 11);
        assert_eq!(stats.escalated_scalar, 1);
        assert_eq!(stats.byte_resolved, 0);
        assert_eq!(stats.escalated_16, 0);
    }

    #[test]
    fn unbiasable_matrix_starts_at_16_bit_tier() {
        // A matrix with |min| > 120 cannot build a byte profile at all;
        // the ladder must start at the 16-bit tier, not crash.
        let m = Matrix::match_mismatch(Alphabet::Dna, 5, -200);
        let scheme = ScoringScheme::new(m, 10, 2);
        let q: Vec<u8> = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let p = QueryProfiles::build(&q, &scheme.matrix);
        assert!(p.byte.is_none());
        let mut stats = TierStats::default();
        let got = tiered_score(&p, &q, &scheme, &mut stats);
        assert_eq!(got, gotoh_score(&q, &q, &scheme));
        assert_eq!(stats.escalated_16, 1);
    }

    #[test]
    fn stats_merge_adds_counts() {
        let mut a = TierStats {
            subjects: 3,
            byte_resolved: 2,
            escalated_16: 1,
            escalated_scalar: 0,
        };
        let b = TierStats {
            subjects: 2,
            byte_resolved: 1,
            escalated_16: 0,
            escalated_scalar: 1,
        };
        a.merge(&b);
        assert_eq!(a.subjects, 5);
        assert_eq!(a.byte_resolved, 3);
        assert_eq!(a.escalated_16, 1);
        assert_eq!(a.escalated_scalar, 1);
    }

    #[test]
    fn tier_ladder_is_exact_on_every_backend() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"GATTACAWWLKMQRST");
        let subjects = [
            prot(b"GATTACAWWLKMQRST"),
            prot(b"TTTTTTTT"),
            prot(&vec![b'W'; 300]),
        ];
        for backend in Backend::available() {
            let p = QueryProfiles::build_for(backend, &q, &scheme.matrix);
            let mut stats = TierStats::default();
            for s in &subjects {
                assert_eq!(
                    tiered_score(&p, s, &scheme, &mut stats),
                    gotoh_score(&q, s, &scheme),
                    "backend {backend}"
                );
            }
            assert_eq!(stats.subjects, subjects.len() as u64);
        }
    }
}
