//! Per-query profile cache: build the striped profiles for a
//! (query, matrix) pair once, reuse them across database chunks, jobs
//! and worker threads.
//!
//! Database search re-scores the *same* query against thousands of
//! subjects, usually split into many chunk-jobs. Without a cache every
//! job rebuilds the query profile — pure overhead that the profiler
//! reports as `profile_build` self-time. With the cache, the first job
//! for a query pays the build and every later job gets an `Arc` to the
//! shared bundle; `profile_build` collapses to a lookup.
//!
//! Keys are exact: a fast FNV-1a fingerprint over the query residues
//! and matrix table prefilters, then the stored query and matrix are
//! compared for equality (`Matrix` derives `Eq`), so two different
//! matrices can never alias a profile. Eviction is LRU by insertion
//! order with a small default capacity — a worker rarely serves more
//! than a handful of live queries at once.

use crate::dispatch::{Backend, QueryProfiles};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use swdual_bio::matrix::Matrix;

/// Default number of (query, matrix) entries kept per cache.
pub const DEFAULT_CAPACITY: usize = 16;

struct Entry {
    fingerprint: u64,
    backend: Backend,
    matrix: Matrix,
    profiles: Arc<QueryProfiles>,
}

/// Thread-safe LRU cache of built [`QueryProfiles`].
pub struct ProfileCache {
    /// Most-recently-used last.
    entries: Mutex<Vec<Entry>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ProfileCache {
    fn default() -> Self {
        ProfileCache::new(DEFAULT_CAPACITY)
    }
}

impl ProfileCache {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ProfileCache {
        ProfileCache {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// FNV-1a over the query residues and the matrix identity.
    fn fingerprint(query: &[u8], matrix: &Matrix) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for &b in query {
            eat(b);
        }
        eat(0xff); // separator so (query+name) pairs can't collide trivially
        for &b in matrix.name.as_bytes() {
            eat(b);
        }
        eat(matrix.size() as u8);
        h
    }

    /// Fetch the profiles for `(query, matrix)` under the process-wide
    /// active backend, building and inserting them on a miss.
    pub fn get_or_build(&self, query: &[u8], matrix: &Matrix) -> Arc<QueryProfiles> {
        self.get_or_build_for(Backend::active(), query, matrix)
    }

    /// Fetch for an explicit backend (benches compare backends side by
    /// side from one cache).
    pub fn get_or_build_for(
        &self,
        backend: Backend,
        query: &[u8],
        matrix: &Matrix,
    ) -> Arc<QueryProfiles> {
        let fp = ProfileCache::fingerprint(query, matrix);
        {
            let mut entries = self.entries.lock().unwrap();
            if let Some(i) = entries.iter().position(|e| {
                e.fingerprint == fp
                    && e.backend == backend
                    && e.profiles.query == query
                    && e.matrix == *matrix
            }) {
                // Move to MRU position.
                let entry = entries.remove(i);
                let profiles = Arc::clone(&entry.profiles);
                entries.push(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return profiles;
            }
        }
        // Build outside the lock: profile construction is the expensive
        // part and other workers should not serialise behind it. A racing
        // duplicate build is possible and harmless (last writer wins).
        let profiles = Arc::new(QueryProfiles::build_for(backend, query, matrix));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= self.capacity {
            entries.remove(0); // LRU is at the front
        }
        entries.push(Entry {
            fingerprint: fp,
            backend,
            matrix: matrix.clone(),
            profiles: Arc::clone(&profiles),
        });
        profiles
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= profile builds) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when no profiles are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ProfileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::{Alphabet, ScoringScheme};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLL");
        let cache = ProfileCache::default();
        let a = cache.get_or_build(&q, &scheme.matrix);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.get_or_build(&q, &scheme.matrix);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_matrix_same_query_is_a_distinct_entry() {
        let blosum = ScoringScheme::protein_default();
        let mm = Matrix::match_mismatch(Alphabet::Protein, 3, -2);
        let q = prot(b"MKWVTFISLL");
        let cache = ProfileCache::default();
        let a = cache.get_or_build(&q, &blosum.matrix);
        let b = cache.get_or_build(&q, &mm);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let scheme = ScoringScheme::protein_default();
        let cache = ProfileCache::new(2);
        let q1 = prot(b"AAAA");
        let q2 = prot(b"CCCC");
        let q3 = prot(b"DDDD");
        cache.get_or_build(&q1, &scheme.matrix);
        cache.get_or_build(&q2, &scheme.matrix);
        // Touch q1 so q2 becomes the LRU entry.
        cache.get_or_build(&q1, &scheme.matrix);
        cache.get_or_build(&q3, &scheme.matrix); // evicts q2
        assert_eq!(cache.len(), 2);
        let misses_before = cache.misses();
        cache.get_or_build(&q1, &scheme.matrix); // still cached
        assert_eq!(cache.misses(), misses_before);
        cache.get_or_build(&q2, &scheme.matrix); // rebuilt
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn shared_across_threads() {
        let scheme = ScoringScheme::protein_default();
        let cache = Arc::new(ProfileCache::default());
        let q = prot(b"MKWVTFISLLFLFSSAYS");
        // Warm the cache first so every thread hits.
        cache.get_or_build(&q, &scheme.matrix);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let q = q.clone();
                let m = scheme.matrix.clone();
                std::thread::spawn(move || cache.get_or_build(&q, &m).query.len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), q.len());
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
    }
}
