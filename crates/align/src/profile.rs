//! Query profiles.
//!
//! A *query profile* re-indexes the substitution matrix by query
//! position: `profile[r][i] = S(query[i], r)` for every residue `r` of
//! the alphabet. The DP inner loop then reads scores sequentially instead
//! of doing a two-level matrix lookup — the memory-layout trick shared by
//! STRIPED [18], SWIPE [9] and CUDASW++ [7], all of which the paper
//! builds on. Two layouts are provided:
//!
//! * [`QueryProfile`] — plain sequential layout, `profile[r]` is the
//!   score of matching each query position against residue `r`.
//! * [`StripedProfile`] — Farrar's striped layout: query positions are
//!   interleaved across SIMD lanes so that lane `l` of vector `v` holds
//!   position `v + l·segment_len`. See [`crate::striped`].

use swdual_bio::matrix::Matrix;

/// Plain (sequential-layout) query profile.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Query length.
    pub query_len: usize,
    /// Alphabet size (number of rows).
    pub alphabet_size: usize,
    /// Row-major: `scores[r * query_len + i] = S(query[i], r)`.
    scores: Vec<i32>,
}

impl QueryProfile {
    /// Build the profile of `query` (encoded residues) under `matrix`.
    pub fn build(query: &[u8], matrix: &Matrix) -> QueryProfile {
        let query_len = query.len();
        let alphabet_size = matrix.size();
        let mut scores = vec![0i32; alphabet_size * query_len];
        for r in 0..alphabet_size {
            let dst = &mut scores[r * query_len..(r + 1) * query_len];
            for (i, &q) in query.iter().enumerate() {
                dst[i] = matrix.score(q, r as u8);
            }
        }
        QueryProfile {
            query_len,
            alphabet_size,
            scores,
        }
    }

    /// Scores of every query position against residue `r`.
    #[inline]
    pub fn row(&self, r: u8) -> &[i32] {
        &self.scores[r as usize * self.query_len..(r as usize + 1) * self.query_len]
    }
}

/// Number of SIMD lanes used by the portable vector kernels. Eight 16-bit
/// lanes correspond to one SSE2 `__m128i` of `i16` — the configuration
/// Farrar's paper and SWIPE use — and autovectorize cleanly on wider
/// hardware.
pub const LANES: usize = 8;

/// Farrar striped-layout query profile over saturating `i16` lanes.
///
/// The query is padded to `segments · LANES` positions and position
/// `v + l·segments` lives in lane `l` of vector `v`. Padding lanes get a
/// large negative score so they can never contribute to a maximum.
#[derive(Debug, Clone)]
pub struct StripedProfile {
    /// Query length before padding.
    pub query_len: usize,
    /// Vectors per matrix row (`ceil(query_len / LANES)`).
    pub segments: usize,
    /// Alphabet size.
    pub alphabet_size: usize,
    /// `scores[r][v][l]` flattened: residue r, vector v, lane l.
    scores: Vec<[i16; LANES]>,
}

/// Padding score for out-of-range query positions: very negative but far
/// from `i16::MIN` so that saturating adds cannot wrap into valid range.
pub const PAD_SCORE: i16 = i16::MIN / 2;

impl StripedProfile {
    /// Build the striped profile of `query` under `matrix`.
    pub fn build(query: &[u8], matrix: &Matrix) -> StripedProfile {
        let query_len = query.len();
        let segments = query_len.div_ceil(LANES).max(1);
        let alphabet_size = matrix.size();
        let mut scores = vec![[PAD_SCORE; LANES]; alphabet_size * segments];
        for r in 0..alphabet_size {
            for v in 0..segments {
                let vec = &mut scores[r * segments + v];
                for (l, lane) in vec.iter_mut().enumerate() {
                    let pos = v + l * segments;
                    if pos < query_len {
                        *lane = matrix.score(query[pos], r as u8) as i16;
                    }
                }
            }
        }
        StripedProfile {
            query_len,
            segments,
            alphabet_size,
            scores,
        }
    }

    /// The `segments` vectors of residue `r`'s profile row.
    #[inline]
    pub fn row(&self, r: u8) -> &[[i16; LANES]] {
        &self.scores[r as usize * self.segments..(r as usize + 1) * self.segments]
    }

    /// Map a (vector, lane) pair back to the query position it holds,
    /// or `None` for padding.
    #[inline]
    pub fn position(&self, vector: usize, lane: usize) -> Option<usize> {
        let pos = vector + lane * self.segments;
        (pos < self.query_len).then_some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::{Alphabet, Matrix};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn plain_profile_matches_matrix() {
        let m = Matrix::blosum62();
        let q = prot(b"MKVLAT");
        let p = QueryProfile::build(&q, m);
        assert_eq!(p.query_len, 6);
        for r in 0..m.size() as u8 {
            let row = p.row(r);
            for (i, &qc) in q.iter().enumerate() {
                assert_eq!(row[i], m.score(qc, r), "r={r} i={i}");
            }
        }
    }

    #[test]
    fn plain_profile_empty_query() {
        let m = Matrix::blosum62();
        let p = QueryProfile::build(&[], m);
        assert_eq!(p.query_len, 0);
        assert!(p.row(0).is_empty());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (v, l) index the layout directly
    fn striped_layout_interleaves_positions() {
        let m = Matrix::blosum62();
        // 10 positions, LANES=8 -> segments = 2; lane l vector v holds
        // position v + 2*l.
        let q = prot(b"MKVLATGGAR");
        let p = StripedProfile::build(&q, m);
        assert_eq!(p.segments, 2);
        for r in 0..m.size() as u8 {
            let row = p.row(r);
            for v in 0..p.segments {
                for l in 0..LANES {
                    match p.position(v, l) {
                        Some(pos) => {
                            assert_eq!(row[v][l], m.score(q[pos], r) as i16)
                        }
                        None => assert_eq!(row[v][l], PAD_SCORE),
                    }
                }
            }
        }
    }

    #[test]
    fn striped_profile_exact_multiple_of_lanes() {
        let m = Matrix::blosum62();
        let q = prot(b"MKVLATGG"); // 8 = LANES
        let p = StripedProfile::build(&q, m);
        assert_eq!(p.segments, 1);
        // No padding at all.
        for r in 0..m.size() as u8 {
            assert!(p.row(r)[0].iter().all(|&s| s > PAD_SCORE));
        }
    }

    #[test]
    fn striped_profile_empty_query_has_one_padded_segment() {
        let m = Matrix::blosum62();
        let p = StripedProfile::build(&[], m);
        assert_eq!(p.segments, 1);
        assert!(p.row(0)[0].iter().all(|&s| s == PAD_SCORE));
        assert_eq!(p.position(0, 0), None);
    }

    #[test]
    fn position_mapping_is_bijective_over_valid_cells() {
        let m = Matrix::blosum62();
        let q = prot(b"MKVLATGGARNDCEQWY"); // 17 -> segments = 3
        let p = StripedProfile::build(&q, m);
        let mut seen = vec![false; q.len()];
        for v in 0..p.segments {
            for l in 0..LANES {
                if let Some(pos) = p.position(v, l) {
                    assert!(!seen[pos], "position {pos} mapped twice");
                    seen[pos] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
