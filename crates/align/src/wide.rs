//! Wide (256-bit) striped query-profile layouts.
//!
//! The AVX2 backend processes 32 unsigned bytes or 16 signed words per
//! instruction — twice the lanes of the portable 128-bit layouts in
//! [`crate::profile`] and [`crate::striped8`]. The striped interleave
//! depends on the lane count (`position = vector + lane · segments`), so
//! wider lanes need their own profile layout; these structs are plain
//! data and build on every target, but only the AVX2 kernels in
//! [`crate::simd_avx2`] consume them.
//!
//! Scores, padding and bias rules are identical to the narrow layouts:
//! the arithmetic per DP cell does not depend on which vector the cell
//! lands in, which is why every backend returns bit-identical scores.

use swdual_bio::matrix::Matrix;

/// Lanes of the wide 16-bit kernel: one AVX2 register of `i16`.
pub const LANES16W: usize = 16;

/// Lanes of the wide byte kernel: one AVX2 register of `u8`.
pub const LANES8W: usize = 32;

/// Padding score for out-of-range positions, as in
/// [`crate::profile::PAD_SCORE`].
pub const PAD_SCORE_W: i16 = i16::MIN / 2;

/// 16-lane `i16` striped profile (AVX2 16-bit kernel input).
#[derive(Debug, Clone)]
pub struct StripedProfileW {
    /// Query length before padding.
    pub query_len: usize,
    /// Vectors per matrix row (`ceil(query_len / LANES16W)`).
    pub segments: usize,
    /// Alphabet size.
    pub alphabet_size: usize,
    scores: Vec<[i16; LANES16W]>,
}

impl StripedProfileW {
    /// Build the wide striped profile of `query` under `matrix`.
    pub fn build(query: &[u8], matrix: &Matrix) -> StripedProfileW {
        let query_len = query.len();
        let segments = query_len.div_ceil(LANES16W).max(1);
        let alphabet_size = matrix.size();
        let mut scores = vec![[PAD_SCORE_W; LANES16W]; alphabet_size * segments];
        for r in 0..alphabet_size {
            for v in 0..segments {
                let vec = &mut scores[r * segments + v];
                for (l, lane) in vec.iter_mut().enumerate() {
                    let pos = v + l * segments;
                    if pos < query_len {
                        *lane = matrix.score(query[pos], r as u8) as i16;
                    }
                }
            }
        }
        StripedProfileW {
            query_len,
            segments,
            alphabet_size,
            scores,
        }
    }

    /// The `segments` vectors of residue `r`'s profile row.
    #[inline]
    pub fn row(&self, r: u8) -> &[[i16; LANES16W]] {
        &self.scores[r as usize * self.segments..(r as usize + 1) * self.segments]
    }
}

/// 32-lane biased unsigned byte profile (AVX2 byte-kernel input).
///
/// Same biasing rules as [`crate::striped8::ByteProfile`]: scores are
/// stored as `s + bias` with `bias = −min(s)`, padding lanes hold 0.
#[derive(Debug, Clone)]
pub struct ByteProfileW {
    /// Query length before padding.
    pub query_len: usize,
    /// Vectors per residue row.
    pub segments: usize,
    /// The bias added to every score.
    pub bias: u8,
    /// Alphabet size.
    pub alphabet_size: usize,
    scores: Vec<[u8; LANES8W]>,
}

impl ByteProfileW {
    /// Build the wide biased byte profile; `None` when the matrix range
    /// cannot be biased into a byte (same rule as the narrow profile, so
    /// every backend escalates on exactly the same matrices).
    pub fn build(query: &[u8], matrix: &Matrix) -> Option<ByteProfileW> {
        let min = matrix.min_score();
        let max = matrix.max_score();
        if min < -120 || max > 120 || (max - min) >= 250 {
            return None;
        }
        let bias = (-min).max(0) as u8;
        let query_len = query.len();
        let segments = query_len.div_ceil(LANES8W).max(1);
        let alphabet_size = matrix.size();
        let mut scores = vec![[0u8; LANES8W]; alphabet_size * segments];
        for r in 0..alphabet_size {
            for v in 0..segments {
                let vec = &mut scores[r * segments + v];
                for (l, lane) in vec.iter_mut().enumerate() {
                    let pos = v + l * segments;
                    if pos < query_len {
                        *lane = (matrix.score(query[pos], r as u8) + bias as i32) as u8;
                    }
                }
            }
        }
        Some(ByteProfileW {
            query_len,
            segments,
            bias,
            alphabet_size,
            scores,
        })
    }

    /// The `segments` vectors of residue `r`'s profile row.
    #[inline]
    pub fn row(&self, r: u8) -> &[[u8; LANES8W]] {
        &self.scores[r as usize * self.segments..(r as usize + 1) * self.segments]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::Alphabet;

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn wide16_layout_interleaves_positions() {
        let m = Matrix::blosum62();
        let q = prot(b"MKVLATGGARNDCEQWYHPST"); // 21 -> segments = 2
        let p = StripedProfileW::build(&q, m);
        assert_eq!(p.segments, 2);
        for r in 0..m.size() as u8 {
            let row = p.row(r);
            for (v, vec) in row.iter().enumerate() {
                for (l, &lane) in vec.iter().enumerate() {
                    let pos = v + l * p.segments;
                    if pos < q.len() {
                        assert_eq!(lane, m.score(q[pos], r) as i16);
                    } else {
                        assert_eq!(lane, PAD_SCORE_W);
                    }
                }
            }
        }
    }

    #[test]
    fn wide8_bias_matches_narrow_rules() {
        let m = Matrix::blosum62();
        let q = prot(b"MKVLATGG");
        let wide = ByteProfileW::build(&q, m).expect("BLOSUM62 biases into a byte");
        let narrow = crate::striped8::ByteProfile::build(&q, m).unwrap();
        assert_eq!(wide.bias, narrow.bias);
        assert_eq!(wide.segments, 1);
        // Spot-check lane 0 of each row: position 0's biased score.
        for r in 0..m.size() as u8 {
            assert_eq!(
                wide.row(r)[0][0],
                (m.score(q[0], r) + wide.bias as i32) as u8
            );
        }
    }

    #[test]
    fn wide8_rejects_unbiasable_matrices() {
        let m = Matrix::match_mismatch(Alphabet::Protein, 1, -500);
        assert!(ByteProfileW::build(&prot(b"MKV"), &m).is_none());
    }
}
