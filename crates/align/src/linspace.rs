//! Linear-space alignment (Hirschberg / Myers–Miller).
//!
//! The full-matrix traceback of [`crate::traceback`] needs `O(m·n)`
//! bytes — prohibitive for the very long sequences the paper's
//! heterogeneous query set contains (up to 35 213 residues, and its
//! reference [6] aligns *huge* sequences on GPUs precisely by going
//! linear-space). This module implements Myers & Miller's
//! divide-and-conquer formulation of Gotoh's affine-gap alignment in
//! `O(m + n)` space and `O(m·n)` time (a ~2× constant over the scoring
//! pass), for both global and local alignment.
//!
//! The divide step splits the query in half and finds the column where
//! the optimal path crosses, distinguishing paths that cross *through a
//! cell* from paths that cross *inside a vertical gap run* — the latter
//! must refund one gap-open charge when the halves are joined
//! (`DD[j] + SS[j] + Gs`).

use crate::alignment::{AlignOp, Alignment};
use crate::scalar::gotoh_score_with_end;
use swdual_bio::ScoringScheme;

const NEG_BOUND: i32 = i32::MIN / 4;

/// Forward strip pass: align all of `a` against prefixes of `b`.
/// Returns `(cc, dd)` where `cc[j]` is the best score of a global
/// alignment of `a` vs `b[..j]`, and `dd[j]` the best score of one that
/// ends inside an open vertical-gap run (open charge `tb` at the top
/// boundary already included).
fn forward_pass(a: &[u8], b: &[u8], scheme: &ScoringScheme, tb: i32) -> (Vec<i32>, Vec<i32>) {
    let gs = scheme.gap_open;
    let ge = scheme.gap_extend;
    let n = b.len();
    let mut cc = vec![0i32; n + 1];
    let mut dd = vec![NEG_BOUND; n + 1];
    // Row 0: deletions along the top; vertical gap may open at charge tb.
    for (j, c) in cc.iter_mut().enumerate().skip(1) {
        *c = -(gs + j as i32 * ge);
    }
    for j in 0..=n {
        dd[j] = cc[j] - tb;
    }
    for (i, &qa) in a.iter().enumerate() {
        let row = scheme.matrix.row(qa);
        let mut diag = cc[0];
        // Column 0 of row i+1: a pure insert run.
        dd[0] = (dd[0]).max(cc[0] - tb) - ge;
        cc[0] = dd[0];
        let mut e = NEG_BOUND;
        let _ = i;
        for j in 1..=n {
            e = (e.max(cc[j - 1] - gs)) - ge;
            dd[j] = (dd[j].max(cc[j] - gs)) - ge;
            let h = (diag + row[b[j - 1] as usize]).max(e).max(dd[j]);
            diag = cc[j];
            cc[j] = h;
        }
    }
    (cc, dd)
}

/// Subtlety: `forward_pass` charges vertical-gap opens at `gs` for gaps
/// born strictly inside the strip, but the *first* row's vertical gap
/// (continuing from the boundary) opens at `tb`. The loop above charges
/// `cc[j] - gs` for inner opens and seeded `dd` with `cc - tb` at row 0.
#[allow(dead_code)]
fn _doc_anchor() {}

/// Reverse strip pass: mirror of [`forward_pass`] from the bottom-right
/// corner, with bottom-boundary vertical open charge `te`.
fn reverse_pass(a: &[u8], b: &[u8], scheme: &ScoringScheme, te: i32) -> (Vec<i32>, Vec<i32>) {
    let ar: Vec<u8> = a.iter().rev().copied().collect();
    let br: Vec<u8> = b.iter().rev().copied().collect();
    let (cc_r, dd_r) = forward_pass(&ar, &br, scheme, te);
    // Re-index: rr[j] aligns a (all) vs b[j..].
    let n = b.len();
    let mut rr = vec![0i32; n + 1];
    let mut ss = vec![0i32; n + 1];
    for j in 0..=n {
        rr[j] = cc_r[n - j];
        ss[j] = dd_r[n - j];
    }
    (rr, ss)
}

/// Recursive divide-and-conquer, appending ops for `a` vs `b`.
/// `tb`/`te` are the open charges of a vertical gap touching the
/// top/bottom strip boundary (0 when the parent already opened it).
fn diff(a: &[u8], b: &[u8], scheme: &ScoringScheme, tb: i32, te: i32, ops: &mut Vec<AlignOp>) {
    let gs = scheme.gap_open;
    let ge = scheme.gap_extend;
    let m = a.len();
    let n = b.len();

    if m == 0 {
        ops.extend(std::iter::repeat_n(AlignOp::Delete, n));
        return;
    }
    if n == 0 {
        ops.extend(std::iter::repeat_n(AlignOp::Insert, m));
        return;
    }
    if m == 1 {
        // Either the single residue matches some b[j] (horizontal gaps
        // around it), or it is inserted and all of b deleted.
        let row = scheme.matrix.row(a[0]);
        let del = |len: usize| -> i32 {
            if len == 0 {
                0
            } else {
                -(gs + len as i32 * ge)
            }
        };
        let mut best_j = 0usize; // 1-based match position; 0 = insert case
        let mut best = -(tb.min(te) + ge) + del(n);
        for j in 1..=n {
            let score = del(j - 1) + row[b[j - 1] as usize] + del(n - j);
            if score > best {
                best = score;
                best_j = j;
            }
        }
        if best_j == 0 {
            // Insert attaches to whichever boundary is cheaper.
            if tb <= te {
                ops.push(AlignOp::Insert);
                ops.extend(std::iter::repeat_n(AlignOp::Delete, n));
            } else {
                ops.extend(std::iter::repeat_n(AlignOp::Delete, n));
                ops.push(AlignOp::Insert);
            }
        } else {
            ops.extend(std::iter::repeat_n(AlignOp::Delete, best_j - 1));
            ops.push(if a[0] == b[best_j - 1] {
                AlignOp::Match
            } else {
                AlignOp::Mismatch
            });
            ops.extend(std::iter::repeat_n(AlignOp::Delete, n - best_j));
        }
        return;
    }

    let mid = m / 2;
    let (cc, dd) = forward_pass(&a[..mid], b, scheme, tb);
    let (rr, ss) = reverse_pass(&a[mid..], b, scheme, te);

    // Pick the crossing column and type.
    let mut best = i64::MIN;
    let mut best_j = 0usize;
    let mut crossing_gap = false;
    for j in 0..=n {
        let through = cc[j] as i64 + rr[j] as i64;
        if through > best {
            best = through;
            best_j = j;
            crossing_gap = false;
        }
        let in_gap = dd[j] as i64 + ss[j] as i64 + gs as i64;
        if in_gap > best {
            best = in_gap;
            best_j = j;
            crossing_gap = true;
        }
    }

    if crossing_gap {
        // The vertical gap spans the boundary: the top half ends inside
        // it (bottom open charge already paid), the bottom half starts
        // inside it (top open free).
        diff(&a[..mid], &b[..best_j], scheme, tb, 0, ops);
        diff(&a[mid..], &b[best_j..], scheme, 0, te, ops);
    } else {
        diff(&a[..mid], &b[..best_j], scheme, tb, gs, ops);
        diff(&a[mid..], &b[best_j..], scheme, gs, te, ops);
    }
}

/// Global affine-gap alignment in linear space. Score-identical to
/// [`crate::traceback::global`]; the ops may differ among co-optimal
/// alignments.
pub fn global_linear_space(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> Alignment {
    let mut ops = Vec::with_capacity(query.len().max(subject.len()));
    diff(
        query,
        subject,
        scheme,
        scheme.gap_open,
        scheme.gap_open,
        &mut ops,
    );
    let mut aln = Alignment {
        score: 0,
        query_start: 0,
        query_end: query.len(),
        subject_start: 0,
        subject_end: subject.len(),
        ops,
    };
    aln.score = aln.rescore(query, subject, scheme);
    aln
}

/// Local Smith-Waterman alignment in linear space: locate the optimal
/// region with two scoring passes (forward for the end, reverse for the
/// start), then align the region globally with [`global_linear_space`].
pub fn local_linear_space(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> Alignment {
    let (score, end_i, end_j) = gotoh_score_with_end(query, subject, scheme);
    if score <= 0 {
        return Alignment::empty();
    }
    // Reverse pass over the prefixes to find where the region starts.
    let qr: Vec<u8> = query[..end_i].iter().rev().copied().collect();
    let sr: Vec<u8> = subject[..end_j].iter().rev().copied().collect();
    let (score_rev, len_i, len_j) = gotoh_score_with_end(&qr, &sr, scheme);
    debug_assert_eq!(score, score_rev, "forward/reverse scores must agree");
    let start_i = end_i - len_i;
    let start_j = end_j - len_j;

    let mut aln = global_linear_space(&query[start_i..end_i], &subject[start_j..end_j], scheme);
    aln.query_start = start_i;
    aln.query_end = end_i;
    aln.subject_start = start_j;
    aln.subject_end = end_j;
    debug_assert_eq!(
        aln.score, score,
        "global score of the local region must equal the local score"
    );
    aln
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::gotoh_score;
    use crate::traceback;
    use swdual_bio::{Alphabet, Matrix};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }
    fn dna(t: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(t).unwrap()
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect()
    }

    #[test]
    fn global_matches_full_traceback_score() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRGVFRR");
        let s = prot(b"MKWVTFISLLLLFSSAYSRGVF");
        let full = traceback::global(&q, &s, &scheme);
        let lin = global_linear_space(&q, &s, &scheme);
        assert_eq!(lin.score, full.score);
        assert!(lin.is_consistent());
        assert_eq!(lin.rescore(&q, &s, &scheme), lin.score);
    }

    #[test]
    fn global_on_random_pairs() {
        let scheme = ScoringScheme::protein_default();
        for seed in 1..8u64 {
            let q = pseudo_random(60 + (seed as usize * 13) % 90, seed);
            let s = pseudo_random(50 + (seed as usize * 29) % 110, seed + 100);
            let full = traceback::global(&q, &s, &scheme);
            let lin = global_linear_space(&q, &s, &scheme);
            assert_eq!(lin.score, full.score, "seed {seed}");
            assert!(lin.is_consistent());
        }
    }

    #[test]
    fn global_with_cheap_gaps() {
        // Gap-heavy optimum stresses the crossing-gap refund.
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, -100);
        let scheme = ScoringScheme::new(m, 1, 0);
        let q = dna(b"AATTAACCGGAATTACGACGT");
        let s = dna(b"AAGGAACCTTAATTGCATCGA");
        let full = traceback::global(&q, &s, &scheme);
        let lin = global_linear_space(&q, &s, &scheme);
        assert_eq!(lin.score, full.score);
        assert_eq!(lin.rescore(&q, &s, &scheme), lin.score);
    }

    #[test]
    fn long_crossing_gap_is_not_double_charged() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 5, -10);
        let scheme = ScoringScheme::new(m, 8, 1);
        // Query has a 9-residue insert block relative to the subject;
        // the optimal global alignment carries one long vertical gap
        // that must span a divide boundary.
        let q = dna(b"ACGTACGTGGGGGGGGGACGTACGT");
        let s = dna(b"ACGTACGTACGTACGT");
        let full = traceback::global(&q, &s, &scheme);
        let lin = global_linear_space(&q, &s, &scheme);
        assert_eq!(lin.score, full.score);
        // 16 matches, one 9-gap: 16*5 - (8 + 9) = 63.
        assert_eq!(lin.score, 63);
        assert_eq!(lin.gap_columns(), 9);
    }

    #[test]
    fn degenerate_inputs() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKV");
        let lin = global_linear_space(&q, &[], &scheme);
        assert_eq!(lin.cigar(), "3I");
        let lin = global_linear_space(&[], &q, &scheme);
        assert_eq!(lin.cigar(), "3D");
        let lin = global_linear_space(&[], &[], &scheme);
        assert!(lin.is_empty());
        let one = global_linear_space(&prot(b"M"), &prot(b"M"), &scheme);
        assert_eq!(one.cigar(), "1=");
    }

    #[test]
    fn local_matches_full_traceback() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"AAAAWWWWCCCCAAAA");
        let s = prot(b"GGGGWWWWCCCCGGGG");
        let full = traceback::local(&q, &s, &scheme);
        let lin = local_linear_space(&q, &s, &scheme);
        assert_eq!(lin.score, full.score);
        assert_eq!(lin.query_start, full.query_start);
        assert_eq!(lin.query_end, full.query_end);
        assert_eq!(lin.subject_start, full.subject_start);
        assert_eq!(lin.subject_end, full.subject_end);
        assert_eq!(lin.rescore(&q, &s, &scheme), lin.score);
    }

    #[test]
    fn local_on_random_pairs_scores_match_scalar() {
        let scheme = ScoringScheme::protein_default();
        for seed in 1..10u64 {
            let q = pseudo_random(80, seed * 3);
            let s = pseudo_random(120, seed * 7 + 1);
            let lin = local_linear_space(&q, &s, &scheme);
            assert_eq!(lin.score, gotoh_score(&q, &s, &scheme), "seed {seed}");
            assert!(lin.is_consistent());
            assert_eq!(lin.rescore(&q, &s, &scheme), lin.score);
        }
    }

    #[test]
    fn local_of_unrelated_sequences_is_empty() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let scheme = ScoringScheme::new(m, 2, 1);
        let lin = local_linear_space(&dna(b"AAAA"), &dna(b"CCCC"), &scheme);
        assert!(lin.is_empty());
    }

    #[test]
    fn large_alignment_stays_in_linear_space() {
        // 3000 x 3000 would need ~27 MB of traceback tables with the
        // full-matrix method; here the working set is O(m + n). We just
        // verify correctness on a size where the quadratic method is
        // still checkable.
        let scheme = ScoringScheme::protein_default();
        let q = pseudo_random(1200, 11);
        let mut s = q.clone();
        s[600] = (s[600] + 1) % 20; // one substitution
        let lin = global_linear_space(&q, &s, &scheme);
        let full_score = traceback::global(&q, &s, &scheme).score;
        assert_eq!(lin.score, full_score);
        assert!(lin.matches() >= 1150);
    }
}
