//! Fine-grained multi-PE Smith-Waterman — the paper's Figure 2 strategy.
//!
//! A single comparison is spread over several processing elements: the
//! DP matrix is partitioned into rectangular blocks and, because every
//! cell depends only on its west, north and north-west neighbours
//! (Eqs. 2–4), all blocks on one *anti-diagonal* are independent once
//! the borders of their north/west neighbours are known. The paper's
//! figure shows the column-based pipeline variant (`p0` passes its
//! border column to `p1`, …); the blocked anti-diagonal sweep computed
//! here is the standard equivalent with identical data flow — borders
//! are handed from block to block — and the same *ramp-up/ramp-down
//! imbalance*: near the matrix corners only a few PEs have work, the
//! load-balance weakness the paper points out in §II-C.
//!
//! Blocks of one anti-diagonal run in parallel on the rayon pool; the
//! result is bit-identical to the scalar kernel (property-tested).

use rayon::prelude::*;
use swdual_bio::ScoringScheme;

const NEG_BOUND: i32 = i32::MIN / 4;

/// Block-partition configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WavefrontConfig {
    /// Rows (query residues) per block.
    pub block_rows: usize,
    /// Columns (subject residues) per block.
    pub block_cols: usize,
}

impl Default for WavefrontConfig {
    fn default() -> Self {
        // 128×128 ≈ 16k cells per block: large enough to amortise task
        // overhead, small enough to expose parallelism on mid-size
        // comparisons.
        WavefrontConfig {
            block_rows: 128,
            block_cols: 128,
        }
    }
}

/// Borders a finished block exposes to its east/south neighbours.
struct BlockOut {
    /// H of the block's last row (one per column).
    bottom_h: Vec<i32>,
    /// F of the block's last row (one per column).
    bottom_f: Vec<i32>,
    /// H of the block's last column (one per row).
    right_h: Vec<i32>,
    /// E of the block's last column (one per row).
    right_e: Vec<i32>,
    /// Best H inside the block.
    best: i32,
}

/// Compute one block given its north/west borders.
#[allow(clippy::too_many_arguments)]
fn process_block(
    q_block: &[u8],
    s_block: &[u8],
    scheme: &ScoringScheme,
    top_h: &[i32],
    top_f: &[i32],
    left_h: &[i32],
    left_e: &[i32],
    corner: i32,
) -> BlockOut {
    let gs = scheme.gap_open;
    let ge = scheme.gap_extend;
    let bw = s_block.len();
    let bh = q_block.len();

    let mut h_prev: Vec<i32> = top_h.to_vec();
    let mut f: Vec<i32> = top_f.to_vec();
    let mut right_h = vec![0i32; bh];
    let mut right_e = vec![NEG_BOUND; bh];
    let mut best = 0i32;

    for r in 0..bh {
        let row = scheme.matrix.row(q_block[r]);
        let mut e = left_e[r];
        let mut h_west = left_h[r];
        let mut diag = if r == 0 { corner } else { left_h[r - 1] };
        for c in 0..bw {
            e = (e - ge).max(h_west - gs - ge);
            f[c] = (f[c] - ge).max(h_prev[c] - gs - ge);
            let h = (diag + row[s_block[c] as usize]).max(e).max(f[c]).max(0);
            diag = h_prev[c];
            h_prev[c] = h;
            h_west = h;
            best = best.max(h);
        }
        right_h[r] = h_west;
        right_e[r] = e;
    }

    BlockOut {
        bottom_h: h_prev,
        bottom_f: f,
        right_h,
        right_e,
        best,
    }
}

/// Blocked anti-diagonal Smith-Waterman (Gotoh) local score; exact.
pub fn wavefront_score(
    query: &[u8],
    subject: &[u8],
    scheme: &ScoringScheme,
    config: WavefrontConfig,
) -> i32 {
    assert!(config.block_rows > 0 && config.block_cols > 0);
    if query.is_empty() || subject.is_empty() {
        return 0;
    }
    let nbi = query.len().div_ceil(config.block_rows);
    let nbj = subject.len().div_ceil(config.block_cols);

    // Finished-block borders, indexed bi * nbj + bj. Only the previous
    // anti-diagonal is ever read, but keeping the full grid is simple
    // and costs O(cells / block_side) memory.
    let mut done: Vec<Option<BlockOut>> = (0..nbi * nbj).map(|_| None).collect();
    let mut best = 0i32;

    for d in 0..(nbi + nbj - 1) {
        // Blocks with bi + bj == d.
        let blocks: Vec<(usize, usize)> = (0..nbi)
            .filter_map(|bi| {
                let bj = d.checked_sub(bi)?;
                (bj < nbj).then_some((bi, bj))
            })
            .collect();

        let results: Vec<((usize, usize), BlockOut)> = blocks
            .par_iter()
            .map(|&(bi, bj)| {
                let qi0 = bi * config.block_rows;
                let qi1 = (qi0 + config.block_rows).min(query.len());
                let sj0 = bj * config.block_cols;
                let sj1 = (sj0 + config.block_cols).min(subject.len());
                let bw = sj1 - sj0;
                let bh = qi1 - qi0;

                // North border: bottom of block (bi-1, bj) or the matrix
                // top boundary (H = 0, F unreachable).
                let (top_h, top_f): (Vec<i32>, Vec<i32>) = if bi == 0 {
                    (vec![0; bw], vec![NEG_BOUND; bw])
                } else {
                    let nb = done[(bi - 1) * nbj + bj]
                        .as_ref()
                        .expect("north block done");
                    (nb.bottom_h.clone(), nb.bottom_f.clone())
                };
                // West border: right of block (bi, bj-1) or the matrix
                // left boundary (H = 0, E unreachable).
                let (left_h, left_e): (Vec<i32>, Vec<i32>) = if bj == 0 {
                    (vec![0; bh], vec![NEG_BOUND; bh])
                } else {
                    let wb = done[bi * nbj + (bj - 1)].as_ref().expect("west block done");
                    (wb.right_h.clone(), wb.right_e.clone())
                };
                // North-west corner H.
                let corner = if bi == 0 || bj == 0 {
                    0
                } else {
                    *done[(bi - 1) * nbj + (bj - 1)]
                        .as_ref()
                        .expect("corner block done")
                        .bottom_h
                        .last()
                        .expect("blocks are non-empty")
                };

                let out = process_block(
                    &query[qi0..qi1],
                    &subject[sj0..sj1],
                    scheme,
                    &top_h,
                    &top_f,
                    &left_h,
                    &left_e,
                    corner,
                );
                ((bi, bj), out)
            })
            .collect();

        for ((bi, bj), out) in results {
            best = best.max(out.best);
            done[bi * nbj + bj] = Some(out);
        }
    }
    best
}

/// Wavefront score with the default block size.
pub fn wavefront_score_default(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
    wavefront_score(query, subject, scheme, WavefrontConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::gotoh_score;
    use swdual_bio::{Alphabet, Matrix};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    fn pseudo_random(len: usize, seed: u64, span: u8) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % span as u64) as u8
            })
            .collect()
    }

    #[test]
    fn agrees_with_scalar_single_block() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRG");
        let s = prot(b"MKWVTFISLLLLFSSAYSRG");
        let cfg = WavefrontConfig {
            block_rows: 64,
            block_cols: 64,
        };
        assert_eq!(
            wavefront_score(&q, &s, &scheme, cfg),
            gotoh_score(&q, &s, &scheme)
        );
    }

    #[test]
    fn agrees_with_scalar_across_block_sizes() {
        let scheme = ScoringScheme::protein_default();
        let q = pseudo_random(237, 7, 20);
        let s = pseudo_random(311, 13, 20);
        let expected = gotoh_score(&q, &s, &scheme);
        for (br, bc) in [(1, 1), (3, 5), (16, 16), (64, 32), (500, 500)] {
            let cfg = WavefrontConfig {
                block_rows: br,
                block_cols: bc,
            };
            assert_eq!(
                wavefront_score(&q, &s, &scheme, cfg),
                expected,
                "blocks {br}x{bc}"
            );
        }
    }

    #[test]
    fn block_edges_do_not_break_gap_runs() {
        // A long gap must be able to cross block borders: E/F borders are
        // what carries it.
        let m = Matrix::match_mismatch(Alphabet::Dna, 5, -10);
        let scheme = ScoringScheme::new(m, 2, 1);
        let mut q = Alphabet::Dna.encode(b"AAAAAAAA").unwrap();
        q.extend(Alphabet::Dna.encode(b"TTTTTTTT").unwrap());
        // Subject has a 20-residue interruption the alignment must bridge.
        let mut s = Alphabet::Dna.encode(b"AAAAAAAA").unwrap();
        s.extend(Alphabet::Dna.encode([b'G'; 20].as_ref()).unwrap());
        s.extend(Alphabet::Dna.encode(b"TTTTTTTT").unwrap());
        let expected = gotoh_score(&q, &s, &scheme);
        // Block width 4 forces the gap across several borders.
        let cfg = WavefrontConfig {
            block_rows: 4,
            block_cols: 4,
        };
        assert_eq!(wavefront_score(&q, &s, &scheme, cfg), expected);
        // Sanity: the bridge is actually taken (16 matches, one long gap).
        assert_eq!(expected, 16 * 5 - (2 + 20));
    }

    #[test]
    fn empty_inputs_score_zero() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKV");
        assert_eq!(wavefront_score_default(&[], &q, &scheme), 0);
        assert_eq!(wavefront_score_default(&q, &[], &scheme), 0);
    }

    #[test]
    fn default_config_large_comparison() {
        let scheme = ScoringScheme::protein_default();
        let q = pseudo_random(1000, 17, 20);
        let s = pseudo_random(1500, 23, 20);
        assert_eq!(
            wavefront_score_default(&q, &s, &scheme),
            gotoh_score(&q, &s, &scheme)
        );
    }

    #[test]
    #[should_panic]
    fn zero_block_size_panics() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKV");
        let cfg = WavefrontConfig {
            block_rows: 0,
            block_cols: 1,
        };
        let _ = wavefront_score(&q, &q, &scheme, cfg);
    }
}
