//! Runtime kernel dispatch: detect the host's vector ISA once, then
//! route every striped score through the fastest bit-exact backend.
//!
//! The ladder, fastest first:
//!
//! | backend   | ISA        | byte kernel      | word kernel      |
//! |-----------|------------|------------------|------------------|
//! | `avx2`    | x86-64 AVX2| 32 × u8 (256-bit)| 16 × i16 (256-bit)|
//! | `neon`    | aarch64    | 16 × u8          | 8 × i16          |
//! | `portable`| `std::simd`| 16 × u8          | 8 × i16          |
//! | `scalar`  | any        | 16 × u8 arrays   | 8 × i16 arrays   |
//!
//! `scalar` is the autovectorized lane-array code in [`crate::striped`] /
//! [`crate::striped8`] — always available, and the oracle the property
//! tests pin every other backend against. `portable` needs the
//! `portable-simd` cargo feature (nightly). Detection runs once per
//! process ([`Backend::active`], a `OnceLock`); the env var
//! `SWDUAL_KERNEL_BACKEND=scalar|avx2|neon|portable` overrides it, which
//! CI uses to force the fallback path on hosts that would dispatch wide.
//!
//! All backends return bit-identical `Option<i32>` results: the striped
//! interleave changes which DP cells share a register, never the
//! per-cell arithmetic, and the saturation guards compare the same final
//! maximum against the same limit.

use crate::profile::StripedProfile;
use crate::striped8::ByteProfile;
use crate::wide::{ByteProfileW, StripedProfileW};
use std::sync::OnceLock;
use swdual_bio::matrix::Matrix;
use swdual_bio::ScoringScheme;

/// A vector instruction set the striped kernels can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable saturating lane arrays (always available; the oracle).
    Scalar,
    /// 256-bit AVX2 intrinsics (x86-64, runtime-detected).
    Avx2,
    /// 128-bit NEON intrinsics (aarch64 baseline).
    Neon,
    /// `std::simd` (`portable-simd` feature, nightly toolchains).
    Portable,
}

impl Backend {
    /// Stable display name (the `SWDUAL_KERNEL_BACKEND` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
            Backend::Portable => "portable",
        }
    }

    /// Parse a backend name (the env-var grammar).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "avx2" => Some(Backend::Avx2),
            "neon" => Some(Backend::Neon),
            "portable" => Some(Backend::Portable),
            _ => None,
        }
    }

    /// Is this backend usable on the running host?
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
            Backend::Neon => cfg!(target_arch = "aarch64"),
            Backend::Portable => cfg!(feature = "portable-simd"),
        }
    }

    /// Every backend usable on this host, fastest first, `Scalar` last.
    pub fn available() -> Vec<Backend> {
        [
            Backend::Avx2,
            Backend::Neon,
            Backend::Portable,
            Backend::Scalar,
        ]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
    }

    /// Resolve the backend an override string (usually the
    /// `SWDUAL_KERNEL_BACKEND` env var) and the host support pick.
    /// Unknown or unavailable overrides fall back to detection rather
    /// than erroring: a forced-ISA crash would be strictly worse than a
    /// slower exact answer.
    pub fn resolve(overridden: Option<&str>) -> Backend {
        if let Some(name) = overridden {
            if let Some(b) = Backend::from_name(name) {
                if b.is_available() {
                    return b;
                }
            }
        }
        Backend::available()[0]
    }

    /// The process-wide active backend: env override if valid, else the
    /// fastest ISA the host supports. Resolved once, then cached.
    pub fn active() -> Backend {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            Backend::resolve(std::env::var("SWDUAL_KERNEL_BACKEND").ok().as_deref())
        })
    }

    /// Does this backend score through the wide (256-bit) profile
    /// layouts instead of the narrow 128-bit ones?
    pub fn wants_wide_profiles(self) -> bool {
        matches!(self, Backend::Avx2)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The profile bundle one backend scores a query with: the narrow
/// layouts always (they are the 16-bit/byte inputs of the scalar, NEON
/// and portable backends *and* the escalation oracle), the wide layouts
/// only when the backend consumes them. `byte` layouts are `None` when
/// the matrix cannot be biased into a byte — every subject then starts
/// at the 16-bit tier.
#[derive(Debug, Clone)]
pub struct QueryProfiles {
    /// Backend these profiles were built for.
    pub backend: Backend,
    /// The query itself (the scalar-fallback tier and cache-key
    /// verification both need the original residues).
    pub query: Vec<u8>,
    /// Narrow 8-lane 16-bit striped profile.
    pub striped: StripedProfile,
    /// Narrow 16-lane biased byte profile.
    pub byte: Option<ByteProfile>,
    /// Wide 16-lane 16-bit profile (AVX2 backends only).
    pub wide16: Option<StripedProfileW>,
    /// Wide 32-lane byte profile (AVX2 backends only).
    pub wide8: Option<ByteProfileW>,
}

impl QueryProfiles {
    /// Build every layout the active backend needs.
    pub fn build(query: &[u8], matrix: &Matrix) -> QueryProfiles {
        QueryProfiles::build_for(Backend::active(), query, matrix)
    }

    /// Build for an explicit backend (tests and benches iterate these).
    pub fn build_for(backend: Backend, query: &[u8], matrix: &Matrix) -> QueryProfiles {
        let (wide16, wide8) = if backend.wants_wide_profiles() {
            (
                Some(StripedProfileW::build(query, matrix)),
                ByteProfileW::build(query, matrix),
            )
        } else {
            (None, None)
        };
        QueryProfiles {
            backend,
            query: query.to_vec(),
            striped: StripedProfile::build(query, matrix),
            byte: ByteProfile::build(query, matrix),
            wide16,
            wide8,
        }
    }

    /// Approximate heap footprint in bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        let per_pos = 2 * self.striped.alphabet_size; // i16 per residue row
        let narrow = self.striped.query_len.max(1) * per_pos * 2; // 16-bit + byte
        let wide = if self.wide16.is_some() { narrow } else { 0 };
        self.query.len() + narrow + wide
    }

    /// Byte-tier score via this bundle's backend. `None` = the byte
    /// range is unusable (unbiasable matrix or saturation): escalate.
    #[inline]
    pub fn score8(&self, subject: &[u8], scheme: &ScoringScheme) -> Option<i32> {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                let p = self.wide8.as_ref()?;
                // Safety: Avx2 is only selectable when detected.
                unsafe { crate::simd_avx2::striped8_score_profile_avx2(p, subject, scheme) }
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => {
                let p = self.byte.as_ref()?;
                // Safety: NEON is baseline on aarch64.
                unsafe { crate::simd_neon::striped8_score_profile_neon(p, subject, scheme) }
            }
            #[cfg(feature = "portable-simd")]
            Backend::Portable => {
                let p = self.byte.as_ref()?;
                crate::simd_portable::striped8_score_profile_portable(p, subject, scheme)
            }
            _ => {
                let p = self.byte.as_ref()?;
                crate::striped8::striped8_score_profile(p, subject, scheme)
            }
        }
    }

    /// 16-bit-tier score via this bundle's backend. `None` = possible
    /// `i16` saturation: escalate to the scalar kernel.
    #[inline]
    pub fn score16(&self, subject: &[u8], scheme: &ScoringScheme) -> Option<i32> {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                let p = self.wide16.as_ref()?;
                // Safety: Avx2 is only selectable when detected.
                unsafe { crate::simd_avx2::striped_score_profile_avx2(p, subject, scheme) }
            }
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => {
                // Safety: NEON is baseline on aarch64.
                unsafe {
                    crate::simd_neon::striped_score_profile_neon(&self.striped, subject, scheme)
                }
            }
            #[cfg(feature = "portable-simd")]
            Backend::Portable => {
                crate::simd_portable::striped_score_profile_portable(&self.striped, subject, scheme)
            }
            _ => crate::striped::striped_score_profile(&self.striped, subject, scheme),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::gotoh_score;
    use swdual_bio::Alphabet;

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn scalar_is_always_available_and_last() {
        let avail = Backend::available();
        assert!(!avail.is_empty());
        assert_eq!(*avail.last().unwrap(), Backend::Scalar);
        assert!(avail.iter().all(|b| b.is_available()));
    }

    #[test]
    fn names_round_trip() {
        for b in [
            Backend::Scalar,
            Backend::Avx2,
            Backend::Neon,
            Backend::Portable,
        ] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert_eq!(Backend::from_name(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Backend::from_name("sse9"), None);
    }

    #[test]
    fn resolve_honours_valid_overrides_and_ignores_bad_ones() {
        assert_eq!(Backend::resolve(Some("scalar")), Backend::Scalar);
        // Unknown or unavailable names fall back to detection.
        let detected = Backend::resolve(None);
        assert_eq!(Backend::resolve(Some("not-an-isa")), detected);
        assert!(detected.is_available());
    }

    #[test]
    fn every_available_backend_scores_exactly() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEE");
        let s = prot(b"MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEE");
        let want = gotoh_score(&q, &s, &scheme);
        for backend in Backend::available() {
            let p = QueryProfiles::build_for(backend, &q, &scheme.matrix);
            assert_eq!(p.score8(&s, &scheme), Some(want), "byte tier on {backend}");
            assert_eq!(p.score16(&s, &scheme), Some(want), "word tier on {backend}");
        }
    }

    #[test]
    fn wide_profiles_only_built_when_wanted() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLAT");
        let scalar = QueryProfiles::build_for(Backend::Scalar, &q, &scheme.matrix);
        assert!(scalar.wide16.is_none() && scalar.wide8.is_none());
        assert!(scalar.byte.is_some());
        assert!(scalar.approx_bytes() > 0);
        if Backend::Avx2.is_available() {
            let wide = QueryProfiles::build_for(Backend::Avx2, &q, &scheme.matrix);
            assert!(wide.wide16.is_some() && wide.wide8.is_some());
        }
    }

    #[test]
    fn active_backend_is_stable_and_available() {
        let a = Backend::active();
        assert!(a.is_available());
        assert_eq!(a, Backend::active());
    }
}
