//! Alignment engines: a uniform interface over the kernels.
//!
//! The paper's workers each wrap a concrete implementation (SWIPE on
//! CPUs, CUDASW++ on GPUs); this module gives the Rust reproduction the
//! same shape. An [`AlignEngine`] scores one query against one subject
//! or against a whole subject list; [`EngineKind`] selects the kernel
//! dynamically (the runtime configures workers from it).

use crate::dispatch::QueryProfiles;
use crate::interseq;
use crate::profile_cache::ProfileCache;
use crate::scalar::gotoh_score;
use crate::striped;
use crate::tiered::{tiered_score, TierStats};
use crate::wavefront::{self, WavefrontConfig};
use swdual_bio::ScoringScheme;

/// Which kernel an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Scalar Gotoh reference kernel (also the SWPS3-class baseline:
    /// straightforward per-thread vector code, one comparison at a time).
    Scalar,
    /// Farrar striped SIMD (STRIPED baseline).
    Striped,
    /// Inter-sequence SIMD (SWIPE baseline).
    InterSeq,
    /// Blocked wavefront, fine-grained parallel (Figure 2).
    Wavefront,
}

impl EngineKind {
    /// All kinds, for exhaustive testing/benching.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Scalar,
        EngineKind::Striped,
        EngineKind::InterSeq,
        EngineKind::Wavefront,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::Striped => "striped",
            EngineKind::InterSeq => "interseq",
            EngineKind::Wavefront => "wavefront",
        }
    }

    /// Build the engine.
    pub fn build(self) -> Box<dyn AlignEngine> {
        match self {
            EngineKind::Scalar => Box::new(ScalarEngine),
            EngineKind::Striped => Box::new(StripedEngine),
            EngineKind::InterSeq => Box::new(InterSeqEngine),
            EngineKind::Wavefront => Box::new(WavefrontEngine {
                config: WavefrontConfig::default(),
            }),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock seconds a `score_many` call spent in each host phase.
/// The profiler's phase taxonomy for CPU workers: query-profile setup,
/// the DP inner loop, and traceback (zero in score-only searches, kept
/// so the taxonomy stays stable once alignment reconstruction lands).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Seconds building the query profile (striped layout, etc.).
    pub profile_build: f64,
    /// Seconds in the DP recurrence itself.
    pub dp_inner: f64,
    /// Seconds reconstructing alignments.
    pub traceback: f64,
}

impl PhaseTimings {
    /// Total seconds across all phases.
    pub fn total(&self) -> f64 {
        self.profile_build + self.dp_inner + self.traceback
    }
}

/// A local-alignment scoring engine. All engines are *exact*: they must
/// return the same score as the scalar Gotoh reference.
pub trait AlignEngine: Send + Sync {
    /// Which kernel this engine wraps.
    fn kind(&self) -> EngineKind;

    /// Score one pairwise comparison.
    fn score(&self, query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32;

    /// Score one query against many subjects. The default loops over
    /// [`AlignEngine::score`]; batched engines override this.
    fn score_many(&self, query: &[u8], subjects: &[&[u8]], scheme: &ScoringScheme) -> Vec<i32> {
        subjects
            .iter()
            .map(|s| self.score(query, s, scheme))
            .collect()
    }

    /// Like [`AlignEngine::score_many`] but also reports where the wall
    /// time went. The default attributes everything to the DP inner
    /// loop; engines with a separable setup stage (striped profile
    /// construction) override this to split it out. Scores MUST equal
    /// `score_many`'s — profiling never changes results.
    fn score_many_phased(
        &self,
        query: &[u8],
        subjects: &[&[u8]],
        scheme: &ScoringScheme,
    ) -> (Vec<i32>, PhaseTimings) {
        let start = std::time::Instant::now();
        let scores = self.score_many(query, subjects, scheme);
        (
            scores,
            PhaseTimings {
                dp_inner: start.elapsed().as_secs_f64(),
                ..PhaseTimings::default()
            },
        )
    }

    /// Like [`AlignEngine::score_many_phased`], but profile setup may be
    /// served from `cache` and the per-tier resolution counts are
    /// returned. Engines without cacheable setup (or without a tier
    /// ladder) delegate to the phased path and report every subject as
    /// scalar-resolved. Scores MUST equal `score_many`'s.
    fn score_many_cached(
        &self,
        query: &[u8],
        subjects: &[&[u8]],
        scheme: &ScoringScheme,
        _cache: Option<&ProfileCache>,
    ) -> (Vec<i32>, PhaseTimings, TierStats) {
        let (scores, timings) = self.score_many_phased(query, subjects, scheme);
        let stats = TierStats {
            subjects: subjects.len() as u64,
            escalated_scalar: subjects.len() as u64,
            ..TierStats::default()
        };
        (scores, timings, stats)
    }
}

/// Scalar Gotoh engine.
pub struct ScalarEngine;

impl AlignEngine for ScalarEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Scalar
    }
    fn score(&self, query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
        gotoh_score(query, subject, scheme)
    }
}

/// Farrar striped engine, scoring through the runtime-dispatched SIMD
/// backends and the SWIPE-style tier ladder: saturated byte lanes
/// first, 16-bit lanes on saturation, scalar Gotoh last. Profiles are
/// built once per `score_many` batch — or once per *process* when a
/// [`ProfileCache`] is passed to
/// [`AlignEngine::score_many_cached`].
pub struct StripedEngine;

impl AlignEngine for StripedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Striped
    }
    fn score(&self, query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
        striped::striped_score_exact(query, subject, scheme)
    }
    fn score_many(&self, query: &[u8], subjects: &[&[u8]], scheme: &ScoringScheme) -> Vec<i32> {
        let profiles = QueryProfiles::build(query, &scheme.matrix);
        let mut stats = TierStats::default();
        subjects
            .iter()
            .map(|s| tiered_score(&profiles, s, scheme, &mut stats))
            .collect()
    }
    fn score_many_phased(
        &self,
        query: &[u8],
        subjects: &[&[u8]],
        scheme: &ScoringScheme,
    ) -> (Vec<i32>, PhaseTimings) {
        let (scores, timings, _) = self.score_many_cached(query, subjects, scheme, None);
        (scores, timings)
    }
    fn score_many_cached(
        &self,
        query: &[u8],
        subjects: &[&[u8]],
        scheme: &ScoringScheme,
        cache: Option<&ProfileCache>,
    ) -> (Vec<i32>, PhaseTimings, TierStats) {
        // Same computation as `score_many`, with the profile stage (a
        // cache lookup on a warm cache) timed separately from the
        // per-subject tier ladder.
        let start = std::time::Instant::now();
        let profiles = match cache {
            Some(cache) => cache.get_or_build(query, &scheme.matrix),
            None => std::sync::Arc::new(QueryProfiles::build(query, &scheme.matrix)),
        };
        let profile_build = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let mut stats = TierStats::default();
        let scores = subjects
            .iter()
            .map(|s| tiered_score(&profiles, s, scheme, &mut stats))
            .collect();
        (
            scores,
            PhaseTimings {
                profile_build,
                dp_inner: start.elapsed().as_secs_f64(),
                traceback: 0.0,
            },
            stats,
        )
    }
}

/// Inter-sequence engine. `score` on a single pair degenerates to a
/// one-lane batch; its strength is `score_many`.
pub struct InterSeqEngine;

impl AlignEngine for InterSeqEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::InterSeq
    }
    fn score(&self, query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
        interseq::interseq_batch_exact(query, &[subject], scheme)[0]
    }
    fn score_many(&self, query: &[u8], subjects: &[&[u8]], scheme: &ScoringScheme) -> Vec<i32> {
        interseq::interseq_search(query, subjects, scheme)
    }
}

/// Blocked-wavefront engine (fine-grained parallelism inside one
/// comparison).
pub struct WavefrontEngine {
    /// Block partition used for every comparison.
    pub config: WavefrontConfig,
}

impl AlignEngine for WavefrontEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Wavefront
    }
    fn score(&self, query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
        wavefront::wavefront_score(query, subject, scheme, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::Alphabet;

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    fn subjects() -> Vec<Vec<u8>> {
        vec![
            prot(b"MKWVTFISLLFLFSSAYSRG"),
            prot(b"GRSYASSFLF"),
            prot(b"MKWVTFISLL"),
            prot(b"AAAAAAAAAA"),
            prot(b"WWWW"),
            prot(b""),
            prot(b"MKWVTFISLLFLFSSAYSRGMKWVTFISLLFLFSSAYSRG"),
        ]
    }

    #[test]
    fn all_engines_agree_with_scalar() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRGVFRR");
        let subs = subjects();
        let refs: Vec<&[u8]> = subs.iter().map(|s| s.as_slice()).collect();
        let expected: Vec<i32> = refs.iter().map(|s| gotoh_score(&q, s, &scheme)).collect();
        for kind in EngineKind::ALL {
            let engine = kind.build();
            assert_eq!(engine.kind(), kind);
            let got = engine.score_many(&q, &refs, &scheme);
            assert_eq!(got, expected, "engine {kind}");
            // Single-pair path too.
            assert_eq!(engine.score(&q, refs[0], &scheme), expected[0]);
        }
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(EngineKind::Scalar.name(), "scalar");
        assert_eq!(EngineKind::Striped.to_string(), "striped");
        assert_eq!(EngineKind::InterSeq.name(), "interseq");
        assert_eq!(EngineKind::Wavefront.name(), "wavefront");
    }

    #[test]
    fn phased_scoring_matches_unphased_for_all_engines() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRGVFRR");
        let subs = subjects();
        let refs: Vec<&[u8]> = subs.iter().map(|s| s.as_slice()).collect();
        for kind in EngineKind::ALL {
            let engine = kind.build();
            let plain = engine.score_many(&q, &refs, &scheme);
            let (phased, timings) = engine.score_many_phased(&q, &refs, &scheme);
            assert_eq!(phased, plain, "engine {kind}: profiling changed scores");
            assert!(timings.profile_build >= 0.0);
            assert!(timings.dp_inner >= 0.0);
            assert_eq!(timings.traceback, 0.0, "score-only search");
            assert!(timings.total() >= timings.dp_inner);
        }
        // The striped engine is the one that actually splits out a
        // profile-build phase; the default lumps everything in dp_inner.
        let (_, scalar) = ScalarEngine.score_many_phased(&q, &refs, &scheme);
        assert_eq!(scalar.profile_build, 0.0);
    }

    #[test]
    fn cached_scoring_matches_and_hits_on_reuse() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKWVTFISLLFLFSSAYSRGVFRR");
        let subs = subjects();
        let refs: Vec<&[u8]> = subs.iter().map(|s| s.as_slice()).collect();
        let cache = ProfileCache::default();
        let engine = StripedEngine;
        let plain = engine.score_many(&q, &refs, &scheme);
        let (first, _, stats) = engine.score_many_cached(&q, &refs, &scheme, Some(&cache));
        assert_eq!(first, plain);
        assert_eq!(stats.subjects, refs.len() as u64);
        assert_eq!(
            stats.byte_resolved + stats.escalated_16 + stats.escalated_scalar,
            stats.subjects
        );
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // A second job with the same query reuses the profiles.
        let (second, timings, _) = engine.score_many_cached(&q, &refs, &scheme, Some(&cache));
        assert_eq!(second, plain);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(timings.profile_build >= 0.0);
    }

    #[test]
    fn default_cached_path_reports_scalar_resolution() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLAT");
        let subs = subjects();
        let refs: Vec<&[u8]> = subs.iter().map(|s| s.as_slice()).collect();
        let (scores, _, stats) = ScalarEngine.score_many_cached(&q, &refs, &scheme, None);
        assert_eq!(scores, ScalarEngine.score_many(&q, &refs, &scheme));
        assert_eq!(stats.subjects, refs.len() as u64);
        assert_eq!(stats.escalated_scalar, refs.len() as u64);
    }

    #[test]
    fn default_score_many_loops_score() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLAT");
        let s = subjects();
        let refs: Vec<&[u8]> = s.iter().map(|x| x.as_slice()).collect();
        let engine = ScalarEngine;
        let many = engine.score_many(&q, &refs, &scheme);
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(many[i], engine.score(&q, r, &scheme));
        }
    }
}
