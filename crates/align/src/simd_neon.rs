//! NEON intrinsic backends for the striped kernels (aarch64 only).
//!
//! NEON registers are 128-bit, exactly the width of the portable
//! layouts, so these kernels consume the standard
//! [`crate::striped8::ByteProfile`] (16 × `u8`) and
//! [`crate::profile::StripedProfile`] (8 × `i16`) — no wide layout
//! needed. The win over the autovectorized lane-array code is
//! guaranteed saturated ops (`uqadd`/`sqadd`), `ext` for the striped
//! shift, and a `umaxv`/`smaxv` horizontal reduction for the lazy-F
//! exit test.
//!
//! NEON is baseline on aarch64, so no runtime detection is required;
//! the dispatcher still routes through [`crate::dispatch::Backend`] so
//! the scalar fallback stays selectable for oracle testing.

#![cfg(target_arch = "aarch64")]

use crate::profile::StripedProfile;
use crate::striped8::ByteProfile;
use std::arch::aarch64::*;
use swdual_bio::ScoringScheme;

const NEG: i16 = i16::MIN / 2;

/// NEON byte kernel; same contract as
/// [`crate::striped8::striped8_score_profile`].
///
/// # Safety
/// NEON is mandatory on aarch64; the target gate makes this sound.
#[target_feature(enable = "neon")]
pub unsafe fn striped8_score_profile_neon(
    profile: &ByteProfile,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    let seg = profile.segments;
    let open = (scheme.gap_open + scheme.gap_extend).min(255) as u8;
    let ext = scheme.gap_extend.min(255) as u8;

    let zero = vdupq_n_u8(0);
    let vopen = vdupq_n_u8(open);
    let vext = vdupq_n_u8(ext);
    let vbias = vdupq_n_u8(profile.bias);

    let mut h_store: Vec<uint8x16_t> = vec![zero; seg];
    let mut h_load: Vec<uint8x16_t> = vec![zero; seg];
    let mut e: Vec<uint8x16_t> = vec![zero; seg];
    let mut vmax_acc = zero;

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = zero;
        // Shift lanes up by one, lane 0 = 0.
        let mut vh = vextq_u8::<15>(zero, h_store[seg - 1]);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            let pv = vld1q_u8(prof[v].as_ptr());
            vh = vqsubq_u8(vqaddq_u8(vh, pv), vbias);
            vh = vmaxq_u8(vh, e[v]);
            vh = vmaxq_u8(vh, vf);
            vmax_acc = vmaxq_u8(vmax_acc, vh);
            h_store[v] = vh;

            let h_open = vqsubq_u8(vh, vopen);
            e[v] = vmaxq_u8(vqsubq_u8(e[v], vext), h_open);
            vf = vmaxq_u8(vqsubq_u8(vf, vext), h_open);
            vh = h_load[v];
        }

        let mut v = 0usize;
        vf = vextq_u8::<15>(zero, vf);
        loop {
            let threshold = vqsubq_u8(h_store[v], vopen);
            if vmaxvq_u8(vcgtq_u8(vf, threshold)) == 0 {
                break;
            }
            h_store[v] = vmaxq_u8(h_store[v], vf);
            let h_open = vqsubq_u8(h_store[v], vopen);
            e[v] = vmaxq_u8(e[v], h_open);
            vf = vqsubq_u8(vf, vext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = vextq_u8::<15>(zero, vf);
            }
        }
    }

    let best = vmaxvq_u8(vmax_acc);
    let limit = 255u16 - (scheme.matrix.max_score().max(0) as u16 + profile.bias as u16);
    if best as u16 >= limit {
        None
    } else {
        Some(best as i32)
    }
}

/// NEON 16-bit kernel; same contract as
/// [`crate::striped::striped_score_profile`].
///
/// # Safety
/// NEON is mandatory on aarch64; the target gate makes this sound.
#[target_feature(enable = "neon")]
pub unsafe fn striped_score_profile_neon(
    profile: &StripedProfile,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    let seg = profile.segments;
    let open = (scheme.gap_open + scheme.gap_extend) as i16;
    let ext = scheme.gap_extend as i16;

    let zero = vdupq_n_s16(0);
    let vneg = vdupq_n_s16(NEG);
    let vopen = vdupq_n_s16(open);
    let vext = vdupq_n_s16(ext);

    let mut h_store: Vec<int16x8_t> = vec![zero; seg];
    let mut h_load: Vec<int16x8_t> = vec![zero; seg];
    let mut e: Vec<int16x8_t> = vec![vneg; seg];
    let mut vmax_acc = zero;

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = vneg;
        let mut vh = vextq_s16::<7>(zero, h_store[seg - 1]);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            let pv = vld1q_s16(prof[v].as_ptr());
            vh = vqaddq_s16(vh, pv);
            vh = vmaxq_s16(vh, e[v]);
            vh = vmaxq_s16(vh, vf);
            vh = vmaxq_s16(vh, zero);
            vmax_acc = vmaxq_s16(vmax_acc, vh);
            h_store[v] = vh;

            let h_open = vqsubq_s16(vh, vopen);
            e[v] = vmaxq_s16(vqsubq_s16(e[v], vext), h_open);
            vf = vmaxq_s16(vqsubq_s16(vf, vext), h_open);
            vh = h_load[v];
        }

        // Lazy-F with the E refresh (see the portable kernel's docs).
        let mut v = 0usize;
        vf = vextq_s16::<7>(vneg, vf);
        loop {
            let threshold = vqsubq_s16(h_store[v], vopen);
            if vmaxvq_u16(vcgtq_s16(vf, threshold)) == 0 {
                break;
            }
            h_store[v] = vmaxq_s16(h_store[v], vf);
            let h_open = vqsubq_s16(h_store[v], vopen);
            e[v] = vmaxq_s16(e[v], h_open);
            vf = vqsubq_s16(vf, vext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = vextq_s16::<7>(vneg, vf);
            }
        }
    }

    let best = vmaxvq_s16(vmax_acc);
    let limit = i16::MAX - scheme.matrix.max_score() as i16;
    if best >= limit {
        None
    } else {
        Some(best as i32)
    }
}
