//! Thread-parallel database passes.
//!
//! The CPU baselines of the paper's Table I all take a thread count
//! (`swipe -a $T`, `striped -T $T`, `swps3 -j $T`): one process spreads
//! a database pass over several cores. This module reproduces that mode
//! on rayon: subjects are scored in parallel chunks, with a per-chunk
//! profile reuse so the parallel pass does not rebuild query profiles
//! per subject. Inside SWDUAL, a *worker* is a single core (the paper
//! pins one worker per processor), so the runtime does not use this —
//! it exists to reproduce the standalone baselines faithfully and to
//! serve as the library's fast path for plain multi-threaded search.

use crate::engine::EngineKind;
use crate::profile::StripedProfile;
use crate::scalar::gotoh_score;
use crate::striped::striped_score_profile;
use rayon::prelude::*;
use swdual_bio::ScoringScheme;

/// Number of subjects per parallel work item: large enough to amortise
/// task overhead, small enough to balance tail chunks.
const CHUNK: usize = 16;

/// Score one query against every subject in parallel on the global
/// rayon pool, using `kind`'s kernel.
pub fn par_score_many(
    query: &[u8],
    subjects: &[&[u8]],
    scheme: &ScoringScheme,
    kind: EngineKind,
) -> Vec<i32> {
    match kind {
        // The striped engine benefits from sharing one profile across
        // the whole pass; build it once, read-only across threads.
        EngineKind::Striped => {
            let profile = StripedProfile::build(query, &scheme.matrix);
            subjects
                .par_chunks(CHUNK)
                .flat_map_iter(|chunk| {
                    chunk.iter().map(|s| {
                        striped_score_profile(&profile, s, scheme)
                            .unwrap_or_else(|| gotoh_score(query, s, scheme))
                    })
                })
                .collect()
        }
        // Batched engines keep their own batching inside each chunk.
        _ => {
            let engine = kind.build();
            subjects
                .par_chunks(CHUNK)
                .flat_map_iter(|chunk| engine.score_many(query, chunk, scheme))
                .collect()
        }
    }
}

/// Score many queries against many subjects in parallel (queries outer,
/// subjects inner) — the full matrix a standalone tool computes.
/// Returns `scores[q][s]`.
pub fn par_all_vs_all(
    queries: &[&[u8]],
    subjects: &[&[u8]],
    scheme: &ScoringScheme,
    kind: EngineKind,
) -> Vec<Vec<i32>> {
    queries
        .par_iter()
        .map(|q| par_score_many(q, subjects, scheme, kind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect()
    }

    fn subjects(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| pseudo_random(30 + (i * 7) % 120, i as u64 + 1))
            .collect()
    }

    #[test]
    fn parallel_pass_matches_serial_for_every_engine() {
        let scheme = ScoringScheme::protein_default();
        let q = pseudo_random(150, 99);
        let subs = subjects(70);
        let refs: Vec<&[u8]> = subs.iter().map(|s| s.as_slice()).collect();
        let expected: Vec<i32> = refs.iter().map(|s| gotoh_score(&q, s, &scheme)).collect();
        for kind in EngineKind::ALL {
            let got = par_score_many(&q, &refs, &scheme, kind);
            assert_eq!(got, expected, "engine {kind}");
        }
    }

    #[test]
    fn all_vs_all_shape_and_values() {
        let scheme = ScoringScheme::protein_default();
        let qs = subjects(5);
        let ss = subjects(20);
        let q_refs: Vec<&[u8]> = qs.iter().map(|s| s.as_slice()).collect();
        let s_refs: Vec<&[u8]> = ss.iter().map(|s| s.as_slice()).collect();
        let table = par_all_vs_all(&q_refs, &s_refs, &scheme, EngineKind::InterSeq);
        assert_eq!(table.len(), 5);
        for (qi, row) in table.iter().enumerate() {
            assert_eq!(row.len(), 20);
            for (si, &score) in row.iter().enumerate() {
                assert_eq!(
                    score,
                    gotoh_score(q_refs[qi], s_refs[si], &scheme),
                    "({qi},{si})"
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let scheme = ScoringScheme::protein_default();
        let q = pseudo_random(20, 1);
        assert!(par_score_many(&q, &[], &scheme, EngineKind::Striped).is_empty());
        let empty_q: Vec<&[u8]> = vec![];
        assert!(par_all_vs_all(&empty_q, &[], &scheme, EngineKind::Scalar).is_empty());
    }

    #[test]
    fn order_is_preserved_across_chunks() {
        // More subjects than one chunk; results must stay in input order.
        let scheme = ScoringScheme::protein_default();
        let q = pseudo_random(40, 5);
        let subs = subjects(3 * CHUNK + 5);
        let refs: Vec<&[u8]> = subs.iter().map(|s| s.as_slice()).collect();
        let par = par_score_many(&q, &refs, &scheme, EngineKind::InterSeq);
        let serial: Vec<i32> = refs.iter().map(|s| gotoh_score(&q, s, &scheme)).collect();
        assert_eq!(par, serial);
    }
}
