//! `std::simd` portable backends for the striped kernels.
//!
//! Gated behind the `portable-simd` cargo feature because
//! `std::simd` is still a nightly feature; the crate root enables
//! `#![feature(portable_simd)]` only when this feature is on. On stable
//! toolchains the autovectorized lane-array kernels in
//! [`crate::striped`] / [`crate::striped8`] are the portable path.
//!
//! The kernels consume the standard 128-bit layouts
//! ([`crate::striped8::ByteProfile`], [`crate::profile::StripedProfile`])
//! and mirror the lane-array code operation for operation, so they are
//! bit-exact with every other backend.

#![cfg(feature = "portable-simd")]

use crate::profile::{StripedProfile, LANES};
use crate::striped8::{ByteProfile, LANES8};
use std::simd::cmp::{SimdOrd, SimdPartialOrd};
use std::simd::num::SimdUint;
use std::simd::Simd;
use swdual_bio::ScoringScheme;

const NEG: i16 = i16::MIN / 2;

type V8 = Simd<u8, LANES8>;
type V16 = Simd<i16, LANES>;

/// Shift lanes up by one, inserting `fill` into lane 0.
#[inline(always)]
fn shift1_u8(a: V8, fill: u8) -> V8 {
    let mut arr = [fill; LANES8];
    arr[1..].copy_from_slice(&a.to_array()[..LANES8 - 1]);
    V8::from_array(arr)
}

#[inline(always)]
fn shift1_i16(a: V16, fill: i16) -> V16 {
    let mut arr = [fill; LANES];
    arr[1..].copy_from_slice(&a.to_array()[..LANES - 1]);
    V16::from_array(arr)
}

/// Portable-SIMD byte kernel; same contract as
/// [`crate::striped8::striped8_score_profile`].
pub fn striped8_score_profile_portable(
    profile: &ByteProfile,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    let seg = profile.segments;
    let open = V8::splat((scheme.gap_open + scheme.gap_extend).min(255) as u8);
    let ext = V8::splat(scheme.gap_extend.min(255) as u8);
    let bias = V8::splat(profile.bias);
    let zero = V8::splat(0);

    let mut h_store: Vec<V8> = vec![zero; seg];
    let mut h_load: Vec<V8> = vec![zero; seg];
    let mut e: Vec<V8> = vec![zero; seg];
    let mut vmax_acc = zero;

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = zero;
        let mut vh = shift1_u8(h_store[seg - 1], 0);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            let pv = V8::from_array(prof[v]);
            vh = vh.saturating_add(pv).saturating_sub(bias);
            vh = vh.simd_max(e[v]);
            vh = vh.simd_max(vf);
            vmax_acc = vmax_acc.simd_max(vh);
            h_store[v] = vh;

            let h_open = vh.saturating_sub(open);
            e[v] = e[v].saturating_sub(ext).simd_max(h_open);
            vf = vf.saturating_sub(ext).simd_max(h_open);
            vh = h_load[v];
        }

        let mut v = 0usize;
        vf = shift1_u8(vf, 0);
        while vf.simd_gt(h_store[v].saturating_sub(open)).any() {
            h_store[v] = h_store[v].simd_max(vf);
            let h_open = h_store[v].saturating_sub(open);
            e[v] = e[v].simd_max(h_open);
            vf = vf.saturating_sub(ext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = shift1_u8(vf, 0);
            }
        }
    }

    let best = vmax_acc.reduce_max();
    let limit = 255u16 - (scheme.matrix.max_score().max(0) as u16 + profile.bias as u16);
    if best as u16 >= limit {
        None
    } else {
        Some(best as i32)
    }
}

/// Portable-SIMD 16-bit kernel; same contract as
/// [`crate::striped::striped_score_profile`].
pub fn striped_score_profile_portable(
    profile: &StripedProfile,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    use std::simd::num::SimdInt;
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    let seg = profile.segments;
    let open = V16::splat((scheme.gap_open + scheme.gap_extend) as i16);
    let ext = V16::splat(scheme.gap_extend as i16);
    let zero = V16::splat(0);
    let neg = V16::splat(NEG);

    let mut h_store: Vec<V16> = vec![zero; seg];
    let mut h_load: Vec<V16> = vec![zero; seg];
    let mut e: Vec<V16> = vec![neg; seg];
    let mut vmax_acc = zero;

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = neg;
        let mut vh = shift1_i16(h_store[seg - 1], 0);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            let pv = V16::from_array(prof[v]);
            vh = vh.saturating_add(pv);
            vh = vh.simd_max(e[v]);
            vh = vh.simd_max(vf);
            vh = vh.simd_max(zero);
            vmax_acc = vmax_acc.simd_max(vh);
            h_store[v] = vh;

            let h_open = vh.saturating_sub(open);
            e[v] = e[v].saturating_sub(ext).simd_max(h_open);
            vf = vf.saturating_sub(ext).simd_max(h_open);
            vh = h_load[v];
        }

        // Lazy-F with the E refresh (see the portable kernel's docs).
        let mut v = 0usize;
        vf = shift1_i16(vf, NEG);
        while vf.simd_gt(h_store[v].saturating_sub(open)).any() {
            h_store[v] = h_store[v].simd_max(vf);
            let h_open = h_store[v].saturating_sub(open);
            e[v] = e[v].simd_max(h_open);
            vf = vf.saturating_sub(ext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = shift1_i16(vf, NEG);
            }
        }
    }

    let best = vmax_acc.reduce_max();
    let limit = i16::MAX - scheme.matrix.max_score() as i16;
    if best >= limit {
        None
    } else {
        Some(best as i32)
    }
}
