//! Alignment representation: edit operations, CIGAR strings and the
//! three-row pretty rendering of the paper's Figure 1.

use swdual_bio::{Alphabet, ScoringScheme};

/// One column of an alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignOp {
    /// Both residues present and identical.
    Match,
    /// Both residues present but different.
    Mismatch,
    /// Gap in the query (residue consumed from the subject only);
    /// CIGAR `D`.
    Delete,
    /// Gap in the subject (residue consumed from the query only);
    /// CIGAR `I`.
    Insert,
}

impl AlignOp {
    /// CIGAR operation letter (extended CIGAR: `=`, `X`, `I`, `D`).
    pub fn cigar_char(self) -> char {
        match self {
            AlignOp::Match => '=',
            AlignOp::Mismatch => 'X',
            AlignOp::Insert => 'I',
            AlignOp::Delete => 'D',
        }
    }

    /// Whether this op consumes a query residue.
    pub fn consumes_query(self) -> bool {
        matches!(self, AlignOp::Match | AlignOp::Mismatch | AlignOp::Insert)
    }

    /// Whether this op consumes a subject residue.
    pub fn consumes_subject(self) -> bool {
        matches!(self, AlignOp::Match | AlignOp::Mismatch | AlignOp::Delete)
    }
}

/// A pairwise alignment between a query and a subject region.
///
/// Coordinates are 0-based half-open over the *encoded* sequences the
/// alignment was computed from; for a local alignment they delimit the
/// aligned region only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment score under the scheme it was computed with.
    pub score: i32,
    /// Start of the aligned region in the query.
    pub query_start: usize,
    /// End (exclusive) of the aligned region in the query.
    pub query_end: usize,
    /// Start of the aligned region in the subject.
    pub subject_start: usize,
    /// End (exclusive) of the aligned region in the subject.
    pub subject_end: usize,
    /// Column operations from start to end.
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// An empty alignment (score 0, no columns) — what a local alignment
    /// of unrelated sequences degenerates to.
    pub fn empty() -> Alignment {
        Alignment {
            score: 0,
            query_start: 0,
            query_end: 0,
            subject_start: 0,
            subject_end: 0,
            ops: Vec::new(),
        }
    }

    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the alignment has no columns.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count of exact-match columns.
    pub fn matches(&self) -> usize {
        self.ops.iter().filter(|o| **o == AlignOp::Match).count()
    }

    /// Fraction of match columns (0.0 for an empty alignment).
    pub fn identity(&self) -> f64 {
        if self.ops.is_empty() {
            0.0
        } else {
            self.matches() as f64 / self.ops.len() as f64
        }
    }

    /// Number of gap columns (insertions + deletions).
    pub fn gap_columns(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Insert | AlignOp::Delete))
            .count()
    }

    /// Run-length encoded CIGAR string with `=`/`X`/`I`/`D` ops.
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut iter = self.ops.iter().peekable();
        while let Some(&op) = iter.next() {
            let mut run = 1usize;
            while iter.peek() == Some(&&op) {
                iter.next();
                run += 1;
            }
            out.push_str(&run.to_string());
            out.push(op.cigar_char());
        }
        out
    }

    /// Recompute the score of this alignment column-by-column under
    /// `scheme` (affine gaps: a gap run costs `Gs + len·Ge`). Used by the
    /// property tests: a traceback is only correct if this equals
    /// [`Alignment::score`].
    pub fn rescore(&self, query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
        let mut score = 0i32;
        let mut qi = self.query_start;
        let mut sj = self.subject_start;
        let mut prev: Option<AlignOp> = None;
        for &op in &self.ops {
            match op {
                AlignOp::Match | AlignOp::Mismatch => {
                    score += scheme.score(query[qi], subject[sj]);
                    qi += 1;
                    sj += 1;
                }
                AlignOp::Insert => {
                    score -= scheme.gap_extend;
                    if prev != Some(AlignOp::Insert) {
                        score -= scheme.gap_open;
                    }
                    qi += 1;
                }
                AlignOp::Delete => {
                    score -= scheme.gap_extend;
                    if prev != Some(AlignOp::Delete) {
                        score -= scheme.gap_open;
                    }
                    sj += 1;
                }
            }
            prev = Some(op);
        }
        score
    }

    /// Render the three-row representation of the paper's Figure 1:
    /// query row, marker row (`|` match, `.` mismatch, space gap) and
    /// subject row.
    pub fn render(&self, query: &[u8], subject: &[u8], alphabet: Alphabet) -> String {
        let mut top = String::new();
        let mut mid = String::new();
        let mut bot = String::new();
        let mut qi = self.query_start;
        let mut sj = self.subject_start;
        for &op in &self.ops {
            match op {
                AlignOp::Match | AlignOp::Mismatch => {
                    top.push(alphabet.decode_byte(query[qi]) as char);
                    bot.push(alphabet.decode_byte(subject[sj]) as char);
                    mid.push(if op == AlignOp::Match { '|' } else { '.' });
                    qi += 1;
                    sj += 1;
                }
                AlignOp::Insert => {
                    top.push(alphabet.decode_byte(query[qi]) as char);
                    bot.push('-');
                    mid.push(' ');
                    qi += 1;
                }
                AlignOp::Delete => {
                    top.push('-');
                    bot.push(alphabet.decode_byte(subject[sj]) as char);
                    mid.push(' ');
                    sj += 1;
                }
            }
        }
        format!("{top}\n{mid}\n{bot}")
    }

    /// Internal consistency check: op counts must match the coordinate
    /// spans.
    pub fn is_consistent(&self) -> bool {
        let q_consumed: usize = self.ops.iter().filter(|o| o.consumes_query()).count();
        let s_consumed: usize = self.ops.iter().filter(|o| o.consumes_subject()).count();
        self.query_start + q_consumed == self.query_end
            && self.subject_start + s_consumed == self.subject_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::Matrix;

    fn sample() -> Alignment {
        Alignment {
            score: 4,
            query_start: 0,
            query_end: 9,
            subject_start: 0,
            subject_end: 8,
            ops: vec![
                AlignOp::Match,    // A/A
                AlignOp::Insert,   // C/-
                AlignOp::Match,    // T
                AlignOp::Match,    // T
                AlignOp::Match,    // G
                AlignOp::Match,    // T
                AlignOp::Match,    // C
                AlignOp::Mismatch, // C/A
                AlignOp::Match,    // G
            ],
        }
    }

    #[test]
    fn figure1_alignment_renders_and_rescoares() {
        // The exact alignment of the paper's Figure 1.
        let q = Alphabet::Dna.encode(b"ACTTGTCCG").unwrap();
        let s = Alphabet::Dna.encode(b"ATTGTCAG").unwrap();
        let aln = sample();
        assert!(aln.is_consistent());

        let scheme = ScoringScheme::figure1_dna();
        assert_eq!(aln.rescore(&q, &s, &scheme), 4); // the paper's score

        let text = aln.render(&q, &s, Alphabet::Dna);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows[0], "ACTTGTCCG");
        assert_eq!(rows[2], "A-TTGTCAG");
        assert_eq!(rows[1], "| |||||.|");
    }

    #[test]
    fn cigar_run_length_encoding() {
        let aln = sample();
        assert_eq!(aln.cigar(), "1=1I5=1X1=");
    }

    #[test]
    fn counts_and_identity() {
        let aln = sample();
        assert_eq!(aln.len(), 9);
        assert_eq!(aln.matches(), 7);
        assert_eq!(aln.gap_columns(), 1);
        assert!((aln.identity() - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_alignment() {
        let aln = Alignment::empty();
        assert!(aln.is_empty());
        assert_eq!(aln.identity(), 0.0);
        assert_eq!(aln.cigar(), "");
        assert!(aln.is_consistent());
    }

    #[test]
    fn inconsistent_alignment_detected() {
        let mut aln = sample();
        aln.query_end = 5; // wrong span
        assert!(!aln.is_consistent());
    }

    #[test]
    fn affine_rescore_charges_open_once_per_run() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let scheme = ScoringScheme::new(m, 3, 1);
        let q = Alphabet::Dna.encode(b"AATT").unwrap();
        let s = Alphabet::Dna.encode(b"AAGGTT").unwrap();
        let aln = Alignment {
            score: 0, // unused by rescore
            query_start: 0,
            query_end: 4,
            subject_start: 0,
            subject_end: 6,
            ops: vec![
                AlignOp::Match,
                AlignOp::Match,
                AlignOp::Delete,
                AlignOp::Delete,
                AlignOp::Match,
                AlignOp::Match,
            ],
        };
        // 4 matches - (open 3 + 2 * extend 1) = 4 - 5 = -1.
        assert_eq!(aln.rescore(&q, &s, &scheme), -1);
    }
}
