//! Reference (scalar) dynamic-programming kernels.
//!
//! These are straight transcriptions of the paper's recurrences:
//!
//! * [`sw_linear_score`] — Smith-Waterman with a constant gap cost,
//!   Eq. (1): `H[i][j] = max(H[i-1][j-1] + S, H[i][j-1] + g, H[i-1][j] + g, 0)`.
//! * [`gotoh_score`] — Gotoh's affine-gap variant [14], Eqs. (2)–(4),
//!   with three matrices `H`, `E`, `F`; opening a gap costs `Gs + Ge`,
//!   each extension `Ge`.
//!
//! Both run in `O(m·n)` time and `O(n)` space (two rolling rows) and
//! return the maximal local score (the *similarity* of §II-A). They are
//! deliberately simple: every vectorised kernel in this crate is
//! property-tested for exact score agreement against them.

use swdual_bio::matrix::Matrix;
use swdual_bio::ScoringScheme;

/// Smith-Waterman local-alignment score with a *linear* gap model
/// (paper Eq. 1). `gap` is the penalty subtracted per gap character
/// (`g = -2` in Figure 1 means `gap = 2` here).
pub fn sw_linear_score(query: &[u8], subject: &[u8], matrix: &Matrix, gap: i32) -> i32 {
    debug_assert!(gap >= 0, "gap is a penalty, must be >= 0");
    if query.is_empty() || subject.is_empty() {
        return 0;
    }
    // prev[j] = H[i-1][j]; cur[j] = H[i][j]; row 0 and column 0 are zero.
    let n = subject.len();
    let mut prev = vec![0i32; n + 1];
    let mut cur = vec![0i32; n + 1];
    let mut best = 0i32;
    for &q in query {
        let row = matrix.row(q);
        for (j, &s) in subject.iter().enumerate() {
            let diag = prev[j] + row[s as usize];
            let left = cur[j] - gap;
            let up = prev[j + 1] - gap;
            let h = diag.max(left).max(up).max(0);
            cur[j + 1] = h;
            best = best.max(h);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Gotoh affine-gap local-alignment score (paper Eqs. 2–4).
///
/// ```
/// use swdual_align::gotoh_score;
/// use swdual_bio::{Alphabet, ScoringScheme};
///
/// let scheme = ScoringScheme::protein_default();
/// let q = Alphabet::Protein.encode(b"MKWVTF").unwrap();
/// let s = Alphabet::Protein.encode(b"MKWVTF").unwrap();
/// // Identical sequences score the sum of the BLOSUM62 diagonal.
/// assert_eq!(gotoh_score(&q, &s, &scheme), 5 + 5 + 11 + 4 + 5 + 6);
/// ```
///
/// The first residue of a gap costs `Gs + Ge`, every further residue
/// `Ge`, matching the recurrences exactly:
///
/// ```text
/// E[i][j] = -Ge + max(E[i][j-1], H[i][j-1] - Gs)
/// F[i][j] = -Ge + max(F[i-1][j], H[i-1][j] - Gs)
/// H[i][j] = max(H[i-1][j-1] + S(i,j), E[i][j], F[i][j], 0)
/// ```
pub fn gotoh_score(query: &[u8], subject: &[u8], scheme: &ScoringScheme) -> i32 {
    if query.is_empty() || subject.is_empty() {
        return 0;
    }
    let gs = scheme.gap_open;
    let ge = scheme.gap_extend;
    let n = subject.len();

    // Rolling state per column j: h_prev[j] = H[i-1][j], f[j] = F[i-1][j].
    // NEG_BOUND keeps -Ge + NEG_BOUND well above i32::MIN (no overflow).
    const NEG_BOUND: i32 = i32::MIN / 4;
    let mut h_prev = vec![0i32; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut f = vec![NEG_BOUND; n + 1];
    let mut best = 0i32;

    for &q in query {
        let row = scheme.matrix.row(q);
        let mut e = NEG_BOUND; // E[i][0]: no gap can start left of column 1.
        for (j, &s) in subject.iter().enumerate() {
            // Paper Eq. (3): horizontal gap (in the subject direction).
            e = (e.max(h_cur[j] - gs)) - ge;
            // Paper Eq. (4): vertical gap.
            f[j + 1] = (f[j + 1].max(h_prev[j + 1] - gs)) - ge;
            // Paper Eq. (2).
            let h = (h_prev[j] + row[s as usize]).max(e).max(f[j + 1]).max(0);
            h_cur[j + 1] = h;
            best = best.max(h);
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    best
}

/// Gotoh score together with the end coordinates `(i, j)` (1-based, in
/// query/subject order) of the best-scoring cell — the starting point for
/// a traceback or a banded re-alignment.
pub fn gotoh_score_with_end(
    query: &[u8],
    subject: &[u8],
    scheme: &ScoringScheme,
) -> (i32, usize, usize) {
    if query.is_empty() || subject.is_empty() {
        return (0, 0, 0);
    }
    let gs = scheme.gap_open;
    let ge = scheme.gap_extend;
    let n = subject.len();
    const NEG_BOUND: i32 = i32::MIN / 4;
    let mut h_prev = vec![0i32; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut f = vec![NEG_BOUND; n + 1];
    let mut best = 0i32;
    let (mut bi, mut bj) = (0usize, 0usize);

    for (i, &q) in query.iter().enumerate() {
        let row = scheme.matrix.row(q);
        let mut e = NEG_BOUND;
        for (j, &s) in subject.iter().enumerate() {
            e = (e.max(h_cur[j] - gs)) - ge;
            f[j + 1] = (f[j + 1].max(h_prev[j + 1] - gs)) - ge;
            let h = (h_prev[j] + row[s as usize]).max(e).max(f[j + 1]).max(0);
            h_cur[j + 1] = h;
            if h > best {
                best = h;
                bi = i + 1;
                bj = j + 1;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    (best, bi, bj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::{Alphabet, Matrix};

    fn dna(t: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(t).unwrap()
    }
    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    #[test]
    fn identical_sequences_score_sum_of_diagonal() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let s = dna(b"ACGTACGT");
        assert_eq!(sw_linear_score(&s, &s, &m, 2), 8);
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        assert_eq!(sw_linear_score(&dna(b"AAAA"), &dna(b"CCCC"), &m, 2), 0);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let scheme = ScoringScheme::new(m.clone(), 2, 1);
        assert_eq!(sw_linear_score(&[], &dna(b"ACGT"), &m, 2), 0);
        assert_eq!(sw_linear_score(&dna(b"ACGT"), &[], &m, 2), 0);
        assert_eq!(gotoh_score(&[], &dna(b"ACGT"), &scheme), 0);
        assert_eq!(gotoh_score(&dna(b"ACGT"), &[], &scheme), 0);
    }

    #[test]
    fn figure1_sequences_local_score() {
        // Paper Figure 1 aligns ACTTGTCCG / ATTGTCAG globally for score 4
        // with ma=+1, mi=-1, g=-2. The *local* score cannot be lower and a
        // hand-check gives 5 (TTGTC exact match region = 5 matches).
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let s = sw_linear_score(&dna(b"ACTTGTCCG"), &dna(b"ATTGTCAG"), &m, 2);
        assert_eq!(s, 5);
    }

    #[test]
    fn linear_gap_is_special_case_of_affine() {
        // With Gs = 0, Gotoh degenerates to the linear model of Eq. (1).
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let scheme = ScoringScheme::new(m.clone(), 0, 2);
        let a = dna(b"ACTTGTCCGACGT");
        let b = dna(b"ATTGTCAGTT");
        assert_eq!(gotoh_score(&a, &b, &scheme), sw_linear_score(&a, &b, &m, 2));
    }

    #[test]
    fn affine_gap_opens_once_then_extends() {
        // Query AAAATTTT vs subject AAAA-TTTT...: a single 3-gap bridge:
        // AAAA TTTT vs AAAA GGG TTTT. Best local alignment with BLOSUM-free
        // simple scoring: 8 matches, one gap of length 3.
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, -3);
        let scheme = ScoringScheme::new(m, 4, 1);
        let q = dna(b"AAAATTTT");
        let s = dna(b"AAAAGGGTTTT");
        // 8 matches * 2 - (Gs + 3*Ge) = 16 - 7 = 9.
        assert_eq!(gotoh_score(&q, &s, &scheme), 9);
    }

    #[test]
    fn gap_cheaper_than_mismatch_prefers_gaps() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -10);
        let scheme = ScoringScheme::new(m, 0, 1);
        // ACGT vs AGT: skip the C with one gap (cost 1): 3 matches - 1 = 2.
        assert_eq!(gotoh_score(&dna(b"ACGT"), &dna(b"AGT"), &scheme), 2);
    }

    #[test]
    fn protein_blosum62_known_pair() {
        // Identical protein: sum of diagonal BLOSUM62 entries.
        let scheme = ScoringScheme::protein_default();
        let p = prot(b"MKWVTFISLLFLFSSAYS");
        let expected: i32 = p.iter().map(|&c| scheme.score(c, c)).sum();
        assert_eq!(gotoh_score(&p, &p, &scheme), expected);
    }

    #[test]
    fn score_is_symmetric_for_symmetric_matrices() {
        let scheme = ScoringScheme::protein_default();
        let a = prot(b"MKVLATGGARNDCEQ");
        let b = prot(b"KVTAGGWYNDC");
        assert_eq!(gotoh_score(&a, &b, &scheme), gotoh_score(&b, &a, &scheme));
    }

    #[test]
    fn with_end_reports_maximum_cell() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let scheme = ScoringScheme::new(m, 0, 2);
        // Best local region is the common TTGTC; ends at query pos 7 ("ACTTGTC"),
        // subject pos 6 ("ATTGTC").
        let (score, qi, sj) = gotoh_score_with_end(&dna(b"ACTTGTCCG"), &dna(b"ATTGTCAG"), &scheme);
        assert_eq!(score, 5);
        assert_eq!(qi, 7);
        assert_eq!(sj, 6);
    }

    #[test]
    fn long_identical_sequences_do_not_overflow() {
        let scheme = ScoringScheme::protein_default();
        let p = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 6_000];
        // W/W scores 11 -> 66_000, beyond i16 range; i32 handles it.
        assert_eq!(gotoh_score(&p, &p, &scheme), 66_000);
    }

    #[test]
    fn single_residue_inputs() {
        let scheme = ScoringScheme::protein_default();
        let a = prot(b"W");
        let r = prot(b"R");
        assert_eq!(gotoh_score(&a, &a, &scheme), 11);
        // W vs R is negative in BLOSUM62 -> local score clamps to 0.
        assert_eq!(gotoh_score(&a, &r, &scheme), 0);
    }
}
