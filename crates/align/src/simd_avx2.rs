//! AVX2 intrinsic backends for the striped kernels (x86-64 only).
//!
//! These are the same Farrar recurrences as [`crate::striped`] and
//! [`crate::striped8`], hand-lowered to 256-bit AVX2: 32 unsigned byte
//! lanes or 16 signed word lanes per instruction, saturated adds/subs
//! (`vpaddsw`/`vpaddusb` family), and a `vpmovmskb` test for the lazy-F
//! exit instead of a scalar lane scan. The striped interleave crosses
//! the 128-bit lane boundary, so the one-element shift uses the
//! `vperm2i128` + `vpalignr` idiom.
//!
//! Safety: every `unsafe` kernel is `#[target_feature(enable = "avx2")]`
//! and only reachable through [`crate::dispatch`], which verifies AVX2
//! with `is_x86_feature_detected!` before handing these functions out.
//! Saturation guards are the same formulas as the portable kernels, so
//! all backends return bit-identical `Option<i32>` results (the
//! property tests pin this).

#![cfg(target_arch = "x86_64")]

use crate::wide::{ByteProfileW, StripedProfileW};
use std::arch::x86_64::*;
use swdual_bio::ScoringScheme;

/// "No gap state" sentinel, as in the portable 16-bit kernel.
const NEG: i16 = i16::MIN / 2;

/// Shift all 32 byte lanes up by one (lane `l` receives lane `l-1`),
/// inserting 0 into lane 0 — `_mm_slli_si128(v, 1)` extended across the
/// 128-bit boundary.
#[inline(always)]
unsafe fn shift1_u8(a: __m256i) -> __m256i {
    // [0, a_low]: the low 128 get zeroed, the high 128 get a's low half.
    let carry = _mm256_permute2x128_si256(a, a, 0x08);
    _mm256_alignr_epi8(a, carry, 15)
}

/// Shift all 16 word lanes up by one, inserting `FILL` into lane 0.
#[inline(always)]
unsafe fn shift1_i16<const FILL: i16>(a: __m256i) -> __m256i {
    let carry = _mm256_permute2x128_si256(a, a, 0x08);
    let shifted = _mm256_alignr_epi8(a, carry, 14);
    if FILL == 0 {
        shifted // the carry half is zeroed, lane 0 is already 0
    } else {
        _mm256_insert_epi16::<0>(shifted, FILL)
    }
}

/// Horizontal max of 32 unsigned byte lanes.
#[inline(always)]
unsafe fn hmax_u8(a: __m256i) -> u8 {
    let mut buf = [0u8; 32];
    _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, a);
    buf.iter().copied().max().unwrap_or(0)
}

/// Horizontal max of 16 signed word lanes.
#[inline(always)]
unsafe fn hmax_i16(a: __m256i) -> i16 {
    let mut buf = [0i16; 16];
    _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, a);
    buf.iter().copied().max().unwrap_or(i16::MIN)
}

/// AVX2 byte kernel over the wide profile. Same contract as
/// [`crate::striped8::striped8_score_profile`]: `None` means the score
/// came too close to the byte ceiling to trust — escalate to 16-bit.
///
/// # Safety
/// Requires AVX2 (checked by the dispatcher).
#[target_feature(enable = "avx2")]
pub unsafe fn striped8_score_profile_avx2(
    profile: &ByteProfileW,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    debug_assert!(profile.alphabet_size == scheme.matrix.size());
    let seg = profile.segments;
    let open = (scheme.gap_open + scheme.gap_extend).min(255) as u8;
    let ext = scheme.gap_extend.min(255) as u8;

    let zero = _mm256_setzero_si256();
    let vopen = _mm256_set1_epi8(open as i8);
    let vext = _mm256_set1_epi8(ext as i8);
    let vbias = _mm256_set1_epi8(profile.bias as i8);

    let mut h_store: Vec<__m256i> = vec![zero; seg];
    let mut h_load: Vec<__m256i> = vec![zero; seg];
    let mut e: Vec<__m256i> = vec![zero; seg];
    let mut vmax_acc = zero;

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = zero;
        let mut vh = shift1_u8(h_store[seg - 1]);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            let pv = _mm256_loadu_si256(prof[v].as_ptr() as *const __m256i);
            // H = max(diag + score, E, F); unsigned floor is the 0 clamp.
            vh = _mm256_subs_epu8(_mm256_adds_epu8(vh, pv), vbias);
            vh = _mm256_max_epu8(vh, e[v]);
            vh = _mm256_max_epu8(vh, vf);
            vmax_acc = _mm256_max_epu8(vmax_acc, vh);
            h_store[v] = vh;

            let h_open = _mm256_subs_epu8(vh, vopen);
            e[v] = _mm256_max_epu8(_mm256_subs_epu8(e[v], vext), h_open);
            vf = _mm256_max_epu8(_mm256_subs_epu8(vf, vext), h_open);
            vh = h_load[v];
        }

        // Lazy-F with a movemask exit: vf <= H - open in every lane
        // (unsigned: max(vf, t) == t) means no further improvement.
        let mut v = 0usize;
        vf = shift1_u8(vf);
        loop {
            let threshold = _mm256_subs_epu8(h_store[v], vopen);
            let le = _mm256_cmpeq_epi8(_mm256_max_epu8(vf, threshold), threshold);
            if _mm256_movemask_epi8(le) == -1i32 {
                break;
            }
            h_store[v] = _mm256_max_epu8(h_store[v], vf);
            let h_open = _mm256_subs_epu8(h_store[v], vopen);
            e[v] = _mm256_max_epu8(e[v], h_open);
            vf = _mm256_subs_epu8(vf, vext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = shift1_u8(vf);
            }
        }
    }

    let best = hmax_u8(vmax_acc);
    // Identical guard to the portable byte kernel.
    let limit = 255u16 - (scheme.matrix.max_score().max(0) as u16 + profile.bias as u16);
    if best as u16 >= limit {
        None
    } else {
        Some(best as i32)
    }
}

/// AVX2 16-bit kernel over the wide profile. Same contract as
/// [`crate::striped::striped_score_profile`]: `None` means possible
/// `i16` saturation — recompute with the scalar kernel.
///
/// # Safety
/// Requires AVX2 (checked by the dispatcher).
#[target_feature(enable = "avx2")]
pub unsafe fn striped_score_profile_avx2(
    profile: &StripedProfileW,
    subject: &[u8],
    scheme: &ScoringScheme,
) -> Option<i32> {
    if profile.query_len == 0 || subject.is_empty() {
        return Some(0);
    }
    debug_assert!(profile.alphabet_size == scheme.matrix.size());
    let seg = profile.segments;
    let open = (scheme.gap_open + scheme.gap_extend) as i16;
    let ext = scheme.gap_extend as i16;

    let zero = _mm256_setzero_si256();
    let vneg = _mm256_set1_epi16(NEG);
    let vopen = _mm256_set1_epi16(open);
    let vext = _mm256_set1_epi16(ext);

    let mut h_store: Vec<__m256i> = vec![zero; seg];
    let mut h_load: Vec<__m256i> = vec![zero; seg];
    let mut e: Vec<__m256i> = vec![vneg; seg];
    let mut vmax_acc = zero;

    for &s in subject {
        let prof = profile.row(s);
        let mut vf = vneg;
        let mut vh = shift1_i16::<0>(h_store[seg - 1]);
        std::mem::swap(&mut h_store, &mut h_load);

        for v in 0..seg {
            let pv = _mm256_loadu_si256(prof[v].as_ptr() as *const __m256i);
            vh = _mm256_adds_epi16(vh, pv);
            vh = _mm256_max_epi16(vh, e[v]);
            vh = _mm256_max_epi16(vh, vf);
            vh = _mm256_max_epi16(vh, zero);
            vmax_acc = _mm256_max_epi16(vmax_acc, vh);
            h_store[v] = vh;

            let h_open = _mm256_subs_epi16(vh, vopen);
            e[v] = _mm256_max_epi16(_mm256_subs_epi16(e[v], vext), h_open);
            vf = _mm256_max_epi16(_mm256_subs_epi16(vf, vext), h_open);
            vh = h_load[v];
        }

        // Lazy-F, with the E refresh the portable kernel documents.
        let mut v = 0usize;
        vf = shift1_i16::<NEG>(vf);
        loop {
            let threshold = _mm256_subs_epi16(h_store[v], vopen);
            let gt = _mm256_cmpgt_epi16(vf, threshold);
            if _mm256_movemask_epi8(gt) == 0 {
                break;
            }
            h_store[v] = _mm256_max_epi16(h_store[v], vf);
            let h_open = _mm256_subs_epi16(h_store[v], vopen);
            e[v] = _mm256_max_epi16(e[v], h_open);
            vf = _mm256_subs_epi16(vf, vext);
            v += 1;
            if v >= seg {
                v = 0;
                vf = shift1_i16::<NEG>(vf);
            }
        }
    }

    let best = hmax_i16(vmax_acc);
    let limit = i16::MAX - scheme.matrix.max_score() as i16;
    if best >= limit {
        None
    } else {
        Some(best as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::gotoh_score;
    use swdual_bio::{Alphabet, Matrix};

    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect()
    }

    fn avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[test]
    fn byte_kernel_agrees_with_scalar_reference() {
        if !avx2() {
            return;
        }
        let scheme = ScoringScheme::protein_default();
        for seed in 1..16u64 {
            let q = pseudo_random(20 + (seed as usize * 29) % 180, seed);
            let s = pseudo_random(15 + (seed as usize * 41) % 220, seed + 100);
            let p = ByteProfileW::build(&q, &scheme.matrix).unwrap();
            let got = unsafe { striped8_score_profile_avx2(&p, &s, &scheme) };
            assert_eq!(
                got,
                crate::striped8::striped8_score(&q, &s, &scheme),
                "seed {seed}"
            );
            if let Some(score) = got {
                assert_eq!(score, gotoh_score(&q, &s, &scheme), "seed {seed}");
            }
        }
    }

    #[test]
    fn word_kernel_agrees_with_scalar_reference() {
        if !avx2() {
            return;
        }
        let scheme = ScoringScheme::protein_default();
        for seed in 1..16u64 {
            let q = pseudo_random(20 + (seed as usize * 37) % 300, seed);
            let s = pseudo_random(15 + (seed as usize * 53) % 300, seed + 7);
            let p = StripedProfileW::build(&q, &scheme.matrix);
            let got = unsafe { striped_score_profile_avx2(&p, &s, &scheme) };
            assert_eq!(got, crate::striped::striped_score(&q, &s, &scheme));
            assert_eq!(got, Some(gotoh_score(&q, &s, &scheme)), "seed {seed}");
        }
    }

    #[test]
    fn short_queries_exercise_padding_lanes() {
        if !avx2() {
            return;
        }
        let scheme = ScoringScheme::protein_default();
        let s = prot(b"MKVLATGGARNDCEQWYHPST");
        for q in [&b"M"[..], b"MKV", b"MKVLATGGARNDCEQ"] {
            let q = prot(q);
            let p8 = ByteProfileW::build(&q, &scheme.matrix).unwrap();
            let p16 = StripedProfileW::build(&q, &scheme.matrix);
            let want = gotoh_score(&q, &s, &scheme);
            assert_eq!(
                unsafe { striped8_score_profile_avx2(&p8, &s, &scheme) },
                Some(want)
            );
            assert_eq!(
                unsafe { striped_score_profile_avx2(&p16, &s, &scheme) },
                Some(want)
            );
        }
    }

    #[test]
    fn saturation_guards_match_portable_kernels() {
        if !avx2() {
            return;
        }
        let scheme = ScoringScheme::protein_default();
        // 60 Ws saturate the byte kernel, 3000 saturate the word kernel;
        // the wide backends must report None on exactly the same inputs.
        let w60 = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 60];
        let p8 = ByteProfileW::build(&w60, &scheme.matrix).unwrap();
        assert_eq!(
            unsafe { striped8_score_profile_avx2(&p8, &w60, &scheme) },
            None
        );
        let w3000 = vec![Alphabet::Protein.encode_byte(b'W').unwrap(); 3000];
        let p16 = StripedProfileW::build(&w3000, &scheme.matrix);
        assert_eq!(
            unsafe { striped_score_profile_avx2(&p16, &w3000, &scheme) },
            None
        );
    }

    #[test]
    fn lazy_f_crosses_the_mm128_boundary() {
        if !avx2() {
            return;
        }
        // Tiny gap penalties force F to propagate across many lanes,
        // including the vperm2i128 carry path.
        let m = Matrix::match_mismatch(Alphabet::Dna, 5, -1);
        let scheme = ScoringScheme::new(m, 0, 0);
        let q: Vec<u8> = (0..96).map(|i| (i % 4) as u8).collect();
        let s: Vec<u8> = (0..4).map(|i| (i % 4) as u8).collect();
        let want = gotoh_score(&q, &s, &scheme);
        let p8 = ByteProfileW::build(&q, &scheme.matrix).unwrap();
        let p16 = StripedProfileW::build(&q, &scheme.matrix);
        assert_eq!(
            unsafe { striped8_score_profile_avx2(&p8, &s, &scheme) },
            Some(want)
        );
        assert_eq!(
            unsafe { striped_score_profile_avx2(&p16, &s, &scheme) },
            Some(want)
        );
    }
}
