//! Banded Gotoh alignment.
//!
//! When two sequences are known to be similar, the optimal local
//! alignment stays close to the main diagonal and cells further than a
//! *bandwidth* `k` from it cannot participate. Restricting the DP to the
//! band reduces work from `O(m·n)` to `O(k·min(m,n))`. The band here is
//! centred on the diagonal `j - i = offset` (offset 0 = main diagonal).
//!
//! The banded score is a *lower bound* on the unbanded score, with
//! equality whenever the optimal path stays inside the band — a property
//! the tests exercise. Production pipelines (including CUDASW++'s
//! rescoring stage) use exactly this pattern: cheap banded pass first,
//! full pass only when the band saturates.

use swdual_bio::ScoringScheme;

const NEG_BOUND: i32 = i32::MIN / 4;

/// Banded Gotoh local-alignment score.
///
/// Only cells with `|(j - i) - offset| <= bandwidth` are computed.
/// `bandwidth == usize::MAX` degenerates to the full kernel (every cell
/// in band).
pub fn banded_gotoh_score(
    query: &[u8],
    subject: &[u8],
    scheme: &ScoringScheme,
    bandwidth: usize,
    offset: isize,
) -> i32 {
    if query.is_empty() || subject.is_empty() {
        return 0;
    }
    let gs = scheme.gap_open;
    let ge = scheme.gap_extend;
    let n = subject.len();

    let mut h_prev = vec![0i32; n + 1];
    let mut h_cur = vec![0i32; n + 1];
    let mut f = vec![NEG_BOUND; n + 1];
    let mut best = 0i32;

    let band = bandwidth as i64;
    for (idx, &q) in query.iter().enumerate() {
        let i = idx as i64 + 1;
        let row = scheme.matrix.row(q);

        // Band limits for this row: j in [i + offset - band, i + offset + band].
        let centre = i + offset as i64;
        let lo = (centre - band).max(1);
        let hi = (centre.saturating_add(band)).min(n as i64);
        if lo > hi {
            // Row entirely outside the band.
            std::mem::swap(&mut h_prev, &mut h_cur);
            continue;
        }
        let lo = lo as usize;
        let hi = hi as usize;

        // Cells just outside the band behave as unreachable.
        if lo >= 1 {
            h_cur[lo - 1] = if lo == 1 { 0 } else { NEG_BOUND };
        }
        let mut e = NEG_BOUND;
        for j in lo..=hi {
            let s = subject[j - 1];
            e = (e.max(h_cur[j - 1] - gs)) - ge;
            f[j] = (f[j].max(h_prev[j] - gs)) - ge;
            let h = (h_prev[j - 1] + row[s as usize]).max(e).max(f[j]).max(0);
            h_cur[j] = h;
            best = best.max(h);
        }
        // Poison the cell right of the band so the next row's diagonal
        // read cannot see a stale value.
        if hi < n {
            h_cur[hi + 1] = NEG_BOUND;
            f[hi + 1] = NEG_BOUND;
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    best
}

/// Choose a bandwidth for two lengths: the length difference plus a
/// slack. Any optimal alignment must use at least `|m - n|` gap columns,
/// so a band of `|m - n| + slack` covers alignments with up to `slack`
/// extra gaps in each direction.
pub fn bandwidth_for(query_len: usize, subject_len: usize, slack: usize) -> usize {
    query_len.abs_diff(subject_len) + slack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::gotoh_score;
    use swdual_bio::{Alphabet, Matrix};

    fn dna(t: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(t).unwrap()
    }
    fn prot(t: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode(t).unwrap()
    }

    fn scheme_dna() -> ScoringScheme {
        ScoringScheme::new(Matrix::match_mismatch(Alphabet::Dna, 2, -3), 4, 1)
    }

    #[test]
    fn wide_band_equals_full_kernel() {
        let scheme = ScoringScheme::protein_default();
        let q = prot(b"MKVLATGGARNDCEQ");
        let s = prot(b"KVTAGGWYNDCEQMK");
        let full = gotoh_score(&q, &s, &scheme);
        let banded = banded_gotoh_score(&q, &s, &scheme, 64, 0);
        assert_eq!(banded, full);
    }

    #[test]
    fn banded_score_never_exceeds_full() {
        let scheme = scheme_dna();
        let q = dna(b"ACGTACGTTTACGGA");
        let s = dna(b"TACGGACGTACGTAA");
        let full = gotoh_score(&q, &s, &scheme);
        for bw in 0..16 {
            let b = banded_gotoh_score(&q, &s, &scheme, bw, 0);
            assert!(b <= full, "bw={bw}: {b} > {full}");
        }
    }

    #[test]
    fn band_converges_to_full_as_it_widens() {
        let scheme = scheme_dna();
        let q = dna(b"ACGTACGTACGTACGTAAAA");
        let s = dna(b"ACGTACGGACGTACGTAAAA");
        let full = gotoh_score(&q, &s, &scheme);
        let mut prev = i32::MIN;
        for bw in 0..=20 {
            let b = banded_gotoh_score(&q, &s, &scheme, bw, 0);
            assert!(b >= prev, "banded score must be monotone in bandwidth");
            prev = b;
        }
        assert_eq!(prev, full);
    }

    #[test]
    fn similar_sequences_need_narrow_band_only() {
        let scheme = scheme_dna();
        // One substitution: optimal path is the main diagonal.
        let q = dna(b"ACGTACGTACGT");
        let s = dna(b"ACGTACCTACGT");
        let full = gotoh_score(&q, &s, &scheme);
        assert_eq!(banded_gotoh_score(&q, &s, &scheme, 1, 0), full);
    }

    #[test]
    fn offset_band_finds_shifted_match() {
        let scheme = scheme_dna();
        // The match region is shifted +6 in the subject.
        let q = dna(b"ACGTACGT");
        let s = dna(b"TTTTTTACGTACGT");
        let full = gotoh_score(&q, &s, &scheme);
        // Centred band of width 1 misses it…
        assert!(banded_gotoh_score(&q, &s, &scheme, 1, 0) < full);
        // …but the same width at offset 6 finds it.
        assert_eq!(banded_gotoh_score(&q, &s, &scheme, 1, 6), full);
    }

    #[test]
    fn zero_bandwidth_is_diagonal_only() {
        let scheme = scheme_dna();
        let q = dna(b"ACGT");
        let s = dna(b"ACGT");
        // Pure diagonal: all four matches reachable with bandwidth 0.
        assert_eq!(banded_gotoh_score(&q, &s, &scheme, 0, 0), 8);
    }

    #[test]
    fn empty_inputs() {
        let scheme = scheme_dna();
        assert_eq!(banded_gotoh_score(&[], &dna(b"ACGT"), &scheme, 4, 0), 0);
        assert_eq!(banded_gotoh_score(&dna(b"ACGT"), &[], &scheme, 4, 0), 0);
    }

    #[test]
    fn bandwidth_for_covers_length_difference() {
        assert_eq!(bandwidth_for(100, 120, 8), 28);
        assert_eq!(bandwidth_for(120, 100, 0), 20);
        assert_eq!(bandwidth_for(50, 50, 5), 5);
    }
}
