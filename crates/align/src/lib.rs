//! # swdual-align — Smith-Waterman / Gotoh alignment kernels
//!
//! Implements the comparison algorithms of the paper (§II) and the
//! algorithmic cores of every baseline it measures against (§V, Table I):
//!
//! * [`scalar`] — reference implementations: linear-gap Smith-Waterman
//!   (paper Eq. 1) and the Gotoh affine-gap recurrences (Eqs. 2–4).
//!   Every other kernel is property-tested against these.
//! * [`traceback`] — full-matrix alignment with traceback, producing an
//!   [`alignment::Alignment`] like the paper's Figure 1 (local, global
//!   and semi-global modes).
//! * [`banded`] — banded Gotoh for bounded-divergence comparisons.
//! * [`profile`] — query profiles: the substitution matrix re-indexed by
//!   query position, the layout trick shared by STRIPED, SWIPE and
//!   CUDASW++.
//! * [`striped`] — Farrar's striped vertical SIMD kernel [18]
//!   (the STRIPED baseline), with saturating 16-bit lanes and scalar
//!   recompute on overflow.
//! * [`interseq`] — Rognes' inter-sequence SIMD kernel [9] (the SWIPE
//!   baseline): one query against `LANES` database sequences at once.
//! * [`wavefront`] — the fine-grained multi-PE parallelisation of
//!   Figure 2: the DP matrix is cut into blocks and anti-diagonals of
//!   blocks are computed in parallel (rayon), borders handed between
//!   neighbours.
//! * [`engine`] — a common [`engine::AlignEngine`] trait plus the
//!   database-search drivers the workers run.
//!
//! All kernels consume residues already encoded by `swdual-bio` and score
//! with a [`swdual_bio::ScoringScheme`]. Scores are `i32` end-to-end;
//! vectorised kernels use narrower saturating lanes internally and fall
//! back to the scalar kernel when a score would overflow the lane type —
//! exactly how SWIPE and STRIPED handle the same problem.
//!
//! On top of the kernels sits a runtime [`dispatch`] layer (detect the
//! host ISA once, route through AVX2 / NEON / `std::simd` / scalar
//! backends), a [`profile_cache`] that reuses built query profiles
//! across jobs, and the [`tiered`] SWIPE-style pipeline (byte lanes →
//! 16-bit lanes → scalar) that is the default database scoring path.

#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod alignment;
pub mod banded;
pub mod dispatch;
pub mod engine;
pub mod interseq;
pub mod linspace;
pub mod par_search;
pub mod profile;
pub mod profile_cache;
pub mod scalar;
pub mod simd_avx2;
pub mod simd_neon;
pub mod simd_portable;
pub mod striped;
pub mod striped8;
pub mod tiered;
pub mod traceback;
pub mod wavefront;
pub mod wide;

pub use alignment::{AlignOp, Alignment};
pub use dispatch::{Backend, QueryProfiles};
pub use engine::{AlignEngine, EngineKind, PhaseTimings};
pub use profile_cache::ProfileCache;
pub use scalar::{gotoh_score, sw_linear_score};
pub use tiered::{tiered_score, TierStats};
