//! # swdual-align — Smith-Waterman / Gotoh alignment kernels
//!
//! Implements the comparison algorithms of the paper (§II) and the
//! algorithmic cores of every baseline it measures against (§V, Table I):
//!
//! * [`scalar`] — reference implementations: linear-gap Smith-Waterman
//!   (paper Eq. 1) and the Gotoh affine-gap recurrences (Eqs. 2–4).
//!   Every other kernel is property-tested against these.
//! * [`traceback`] — full-matrix alignment with traceback, producing an
//!   [`alignment::Alignment`] like the paper's Figure 1 (local, global
//!   and semi-global modes).
//! * [`banded`] — banded Gotoh for bounded-divergence comparisons.
//! * [`profile`] — query profiles: the substitution matrix re-indexed by
//!   query position, the layout trick shared by STRIPED, SWIPE and
//!   CUDASW++.
//! * [`striped`] — Farrar's striped vertical SIMD kernel [18]
//!   (the STRIPED baseline), with saturating 16-bit lanes and scalar
//!   recompute on overflow.
//! * [`interseq`] — Rognes' inter-sequence SIMD kernel [9] (the SWIPE
//!   baseline): one query against `LANES` database sequences at once.
//! * [`wavefront`] — the fine-grained multi-PE parallelisation of
//!   Figure 2: the DP matrix is cut into blocks and anti-diagonals of
//!   blocks are computed in parallel (rayon), borders handed between
//!   neighbours.
//! * [`engine`] — a common [`engine::AlignEngine`] trait plus the
//!   database-search drivers the workers run.
//!
//! All kernels consume residues already encoded by `swdual-bio` and score
//! with a [`swdual_bio::ScoringScheme`]. Scores are `i32` end-to-end;
//! vectorised kernels use narrower saturating lanes internally and fall
//! back to the scalar kernel when a score would overflow the lane type —
//! exactly how SWIPE and STRIPED handle the same problem.

pub mod alignment;
pub mod banded;
pub mod engine;
pub mod interseq;
pub mod linspace;
pub mod par_search;
pub mod profile;
pub mod scalar;
pub mod striped;
pub mod striped8;
pub mod traceback;
pub mod wavefront;

pub use alignment::{AlignOp, Alignment};
pub use engine::{AlignEngine, EngineKind, PhaseTimings};
pub use scalar::{gotoh_score, sw_linear_score};
