//! Property tests: every kernel must agree exactly with the scalar Gotoh
//! reference on arbitrary sequences and arbitrary scoring schemes, and
//! tracebacks must reconstruct alignments whose recomputed score equals
//! the reported score.

use proptest::prelude::*;
use swdual_align::banded::{banded_gotoh_score, bandwidth_for};
use swdual_align::dispatch::{Backend, QueryProfiles};
use swdual_align::engine::EngineKind;
use swdual_align::interseq::interseq_batch_exact;
use swdual_align::scalar::{gotoh_score, sw_linear_score};
use swdual_align::striped::striped_score_exact;
use swdual_align::tiered::{tiered_score, TierStats};
use swdual_align::traceback::{self, Mode};
use swdual_align::wavefront::{wavefront_score, WavefrontConfig};
use swdual_bio::{Alphabet, Matrix, ScoringScheme};

/// Random protein residues (codes 0..20, the unambiguous amino acids).
fn residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 0..max_len)
}

/// Random DNA residues (codes 0..4).
fn dna_residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..max_len)
}

/// Random scoring scheme: random match/mismatch matrix and random gap
/// penalties, including degenerate (zero) penalties.
fn scheme() -> impl Strategy<Value = ScoringScheme> {
    (1i32..12, -12i32..0, 0i32..12, 0i32..6).prop_map(|(ma, mi, gs, ge)| {
        ScoringScheme::new(Matrix::match_mismatch(Alphabet::Protein, ma, mi), gs, ge)
    })
}

/// Random *biological* scheme: BLOSUM62 with random affine penalties.
fn blosum_scheme() -> impl Strategy<Value = ScoringScheme> {
    (1i32..16, 1i32..5).prop_map(|(gs, ge)| ScoringScheme::new(Matrix::blosum62().clone(), gs, ge))
}

/// Adversarial high-score schemes: match rewards spanning the byte
/// profile's bias-rejection boundary (|min| or max past 120, spread
/// past 250), so some draws force the 16-bit tier from the start while
/// others saturate bytes mid-run.
fn adversarial_scheme() -> impl Strategy<Value = ScoringScheme> {
    (60i32..160, -160i32..-60, 0i32..14, 0i32..6).prop_map(|(ma, mi, gs, ge)| {
        ScoringScheme::new(Matrix::match_mismatch(Alphabet::Dna, ma, mi), gs, ge)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn striped_agrees_with_scalar(q in residues(120), s in residues(160), sch in scheme()) {
        prop_assert_eq!(striped_score_exact(&q, &s, &sch), gotoh_score(&q, &s, &sch));
    }

    #[test]
    fn striped_agrees_on_blosum(q in residues(120), s in residues(160), sch in blosum_scheme()) {
        prop_assert_eq!(striped_score_exact(&q, &s, &sch), gotoh_score(&q, &s, &sch));
    }

    #[test]
    fn interseq_agrees_with_scalar(
        q in residues(80),
        subjects in prop::collection::vec(residues(120), 0..8),
        sch in scheme(),
    ) {
        let refs: Vec<&[u8]> = subjects.iter().map(|s| s.as_slice()).collect();
        let got = interseq_batch_exact(&q, &refs, &sch);
        for (l, s) in refs.iter().enumerate() {
            prop_assert_eq!(got[l], gotoh_score(&q, s, &sch), "lane {}", l);
        }
    }

    #[test]
    fn wavefront_agrees_with_scalar(
        q in residues(150),
        s in residues(150),
        sch in scheme(),
        br in 1usize..40,
        bc in 1usize..40,
    ) {
        let cfg = WavefrontConfig { block_rows: br, block_cols: bc };
        prop_assert_eq!(
            wavefront_score(&q, &s, &sch, cfg),
            gotoh_score(&q, &s, &sch)
        );
    }

    #[test]
    fn all_engines_agree(q in residues(60), s in residues(90), sch in blosum_scheme()) {
        let expected = gotoh_score(&q, &s, &sch);
        for kind in EngineKind::ALL {
            let engine = kind.build();
            prop_assert_eq!(engine.score(&q, &s, &sch), expected, "engine {}", kind);
        }
    }

    #[test]
    fn local_traceback_score_matches_and_rescoares(
        q in residues(80),
        s in residues(80),
        sch in scheme(),
    ) {
        let aln = traceback::local(&q, &s, &sch);
        prop_assert_eq!(aln.score, gotoh_score(&q, &s, &sch));
        prop_assert!(aln.is_consistent());
        prop_assert_eq!(aln.rescore(&q, &s, &sch), aln.score);
        // Local alignments never start or end with a gap column.
        if let (Some(first), Some(last)) = (aln.ops.first(), aln.ops.last()) {
            prop_assert!(first.consumes_query() && first.consumes_subject());
            prop_assert!(last.consumes_query() && last.consumes_subject());
        }
    }

    #[test]
    fn global_traceback_spans_everything(
        q in residues(60),
        s in residues(60),
        sch in blosum_scheme(),
    ) {
        let aln = traceback::global(&q, &s, &sch);
        prop_assert!(aln.is_consistent());
        prop_assert_eq!(aln.query_start, 0);
        prop_assert_eq!(aln.query_end, q.len());
        prop_assert_eq!(aln.subject_start, 0);
        prop_assert_eq!(aln.subject_end, s.len());
        prop_assert_eq!(aln.rescore(&q, &s, &sch), aln.score);
    }

    #[test]
    fn semiglobal_traceback_consumes_query(
        q in residues(50),
        s in residues(70),
        sch in blosum_scheme(),
    ) {
        let aln = traceback::align(&q, &s, &sch, Mode::SemiGlobal);
        prop_assert!(aln.is_consistent());
        if !q.is_empty() {
            prop_assert_eq!(aln.query_start, 0);
            prop_assert_eq!(aln.query_end, q.len());
            prop_assert_eq!(aln.rescore(&q, &s, &sch), aln.score);
        }
        // Semi-global ≥ global: end gaps are free.
        let global = traceback::global(&q, &s, &sch);
        prop_assert!(aln.score >= global.score);
    }

    #[test]
    fn local_dominates_other_modes(
        q in residues(50),
        s in residues(50),
        sch in blosum_scheme(),
    ) {
        // The best local score is >= any anchored variant's score.
        let local = gotoh_score(&q, &s, &sch);
        let global = traceback::global(&q, &s, &sch);
        let semi = traceback::align(&q, &s, &sch, Mode::SemiGlobal);
        prop_assert!(local >= global.score.max(0).min(local)); // trivial guard
        prop_assert!(local >= semi.score || local == 0 && semi.score <= 0);
        prop_assert!(semi.score >= global.score);
    }

    #[test]
    fn banded_is_lower_bound_and_converges(
        q in residues(70),
        s in residues(70),
        sch in blosum_scheme(),
        bw in 0usize..16,
    ) {
        let full = gotoh_score(&q, &s, &sch);
        let banded = banded_gotoh_score(&q, &s, &sch, bw, 0);
        prop_assert!(banded <= full);
        // Full-width band equals the unbanded kernel.
        let wide = bandwidth_for(q.len(), s.len(), q.len().max(s.len()));
        prop_assert_eq!(banded_gotoh_score(&q, &s, &sch, wide, 0), full);
    }

    #[test]
    fn byte_kernel_pipeline_agrees_with_scalar(
        q in residues(100),
        s in residues(140),
        sch in scheme(),
    ) {
        prop_assert_eq!(
            swdual_align::striped8::striped8_score_exact(&q, &s, &sch),
            gotoh_score(&q, &s, &sch)
        );
    }

    #[test]
    fn byte_kernel_on_blosum(q in residues(100), s in residues(140), sch in blosum_scheme()) {
        prop_assert_eq!(
            swdual_align::striped8::striped8_score_exact(&q, &s, &sch),
            gotoh_score(&q, &s, &sch)
        );
    }

    #[test]
    fn linear_space_global_matches_full_traceback(
        q in residues(70),
        s in residues(70),
        sch in scheme(),
    ) {
        let full = traceback::global(&q, &s, &sch);
        let lin = swdual_align::linspace::global_linear_space(&q, &s, &sch);
        prop_assert_eq!(lin.score, full.score);
        prop_assert!(lin.is_consistent());
        prop_assert_eq!(lin.rescore(&q, &s, &sch), lin.score);
    }

    #[test]
    fn linear_space_local_matches_scalar(
        q in residues(70),
        s in residues(70),
        sch in blosum_scheme(),
    ) {
        let lin = swdual_align::linspace::local_linear_space(&q, &s, &sch);
        prop_assert_eq!(lin.score, gotoh_score(&q, &s, &sch));
        prop_assert!(lin.is_consistent());
        if !lin.is_empty() {
            prop_assert_eq!(lin.rescore(&q, &s, &sch), lin.score);
        }
    }

    #[test]
    fn linear_gap_equals_gotoh_with_zero_open(
        q in residues(90),
        s in residues(90),
        gap in 0i32..8,
        ma in 1i32..8,
        mi in -8i32..0,
    ) {
        let m = Matrix::match_mismatch(Alphabet::Protein, ma, mi);
        let sch = ScoringScheme::new(m.clone(), 0, gap);
        prop_assert_eq!(
            sw_linear_score(&q, &s, &m, gap),
            gotoh_score(&q, &s, &sch)
        );
    }

    #[test]
    fn score_invariants(q in residues(60), s in residues(60), sch in blosum_scheme()) {
        let score = gotoh_score(&q, &s, &sch);
        // Local scores are non-negative.
        prop_assert!(score >= 0);
        // Symmetry (BLOSUM62 is symmetric).
        prop_assert_eq!(score, gotoh_score(&s, &q, &sch));
        // Self-comparison upper-bounds cross-comparison scores
        // (q vs q contains the perfect diagonal).
        let self_q = gotoh_score(&q, &q, &sch);
        prop_assert!(self_q >= score);
    }

    #[test]
    fn appending_residues_never_decreases_score(
        q in residues(40),
        s in residues(40),
        extra in residues(10),
        sch in blosum_scheme(),
    ) {
        // Local alignment over a superstring can only be at least as good.
        let base = gotoh_score(&q, &s, &sch);
        let mut s_ext = s.clone();
        s_ext.extend_from_slice(&extra);
        prop_assert!(gotoh_score(&q, &s_ext, &sch) >= base);
    }

    // ---- dispatched-backend bit-exactness -------------------------------
    //
    // Every SIMD backend reachable on this host must return results that
    // are bit-identical to the scalar lane-array oracle on BOTH kernel
    // tiers, including the `None` saturation signal — an AVX2 build that
    // escalates on different subjects than the scalar build would make
    // results host-dependent.

    #[test]
    fn backends_bit_exact_on_protein(
        q in residues(120),
        s in residues(160),
        sch in scheme(),
    ) {
        let oracle = QueryProfiles::build_for(Backend::Scalar, &q, &sch.matrix);
        let want8 = oracle.score8(&s, &sch);
        let want16 = oracle.score16(&s, &sch);
        // The oracle's word tier itself must match the Gotoh reference
        // whenever it does not saturate.
        if let Some(w) = want16 {
            prop_assert_eq!(w, gotoh_score(&q, &s, &sch));
        }
        for backend in Backend::available() {
            let p = QueryProfiles::build_for(backend, &q, &sch.matrix);
            prop_assert_eq!(p.score8(&s, &sch), want8, "byte tier, backend {}", backend);
            prop_assert_eq!(p.score16(&s, &sch), want16, "word tier, backend {}", backend);
        }
    }

    #[test]
    fn backends_bit_exact_on_blosum(
        q in residues(120),
        s in residues(160),
        sch in blosum_scheme(),
    ) {
        let oracle = QueryProfiles::build_for(Backend::Scalar, &q, &sch.matrix);
        let want8 = oracle.score8(&s, &sch);
        let want16 = oracle.score16(&s, &sch);
        for backend in Backend::available() {
            let p = QueryProfiles::build_for(backend, &q, &sch.matrix);
            prop_assert_eq!(p.score8(&s, &sch), want8, "byte tier, backend {}", backend);
            prop_assert_eq!(p.score16(&s, &sch), want16, "word tier, backend {}", backend);
        }
    }

    #[test]
    fn backends_bit_exact_on_adversarial_dna(
        q in dna_residues(100),
        s in dna_residues(140),
        sch in adversarial_scheme(),
    ) {
        // High-magnitude scores: byte profiles are often rejected
        // outright and 16-bit saturation is reachable; the saturation
        // *signal* must also agree across backends.
        let oracle = QueryProfiles::build_for(Backend::Scalar, &q, &sch.matrix);
        let want8 = oracle.score8(&s, &sch);
        let want16 = oracle.score16(&s, &sch);
        for backend in Backend::available() {
            let p = QueryProfiles::build_for(backend, &q, &sch.matrix);
            prop_assert_eq!(p.score8(&s, &sch), want8, "byte tier, backend {}", backend);
            prop_assert_eq!(p.score16(&s, &sch), want16, "word tier, backend {}", backend);
        }
    }

    #[test]
    fn tiered_pipeline_exact_on_every_backend(
        q in residues(90),
        subjects in prop::collection::vec(residues(120), 0..6),
        sch in blosum_scheme(),
    ) {
        for backend in Backend::available() {
            let p = QueryProfiles::build_for(backend, &q, &sch.matrix);
            let mut stats = TierStats::default();
            for s in &subjects {
                prop_assert_eq!(
                    tiered_score(&p, s, &sch, &mut stats),
                    gotoh_score(&q, s, &sch),
                    "backend {}", backend
                );
            }
            prop_assert_eq!(stats.subjects, subjects.len() as u64);
            prop_assert_eq!(
                stats.byte_resolved + stats.escalated_16 + stats.escalated_scalar,
                stats.subjects
            );
        }
    }
}
