//! Chrome-trace export of a fault-injected run: the recovery plan and
//! the simulated device must show up as their own track groups, so a
//! loaded trace visually separates "what the master re-planned" from
//! normal execution and from device activity.

use std::time::Duration;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::Alphabet;
use swdual_obs::{Obs, Track};
use swdual_runtime::{run_search, FaultPlan, RuntimeConfig, WorkerFault, WorkerSpec};

fn database(n: usize, len: usize, seed: u64) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    let mut state = seed | 1;
    for i in 0..n {
        let residues: Vec<u8> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect();
        set.push(Sequence::from_codes(
            format!("d{i}"),
            Alphabet::Protein,
            residues,
        ))
        .unwrap();
    }
    set
}

fn queries_from(db: &SequenceSet, picks: &[usize]) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    for (i, &pick) in picks.iter().enumerate() {
        let mut s = db.get(pick).unwrap().clone();
        s.id = format!("q{i}");
        set.push(s).unwrap();
    }
    set
}

/// Trace process ids assigned by `chrome_trace` (see obs::export).
const PID_WALL: u64 = 1;
const PID_MODELLED: u64 = 2;
const PID_PLANNED: u64 = 3;
const PID_RECOVERED: u64 = 4;

#[test]
fn fault_run_trace_has_recovered_and_device_track_groups() {
    let db = database(20, 100, 11);
    let queries = queries_from(&db, &[1, 5, 9, 13, 17]);
    // CPU worker 0 survives; GPU worker 1's device dies after one
    // kernel, so its orphans are re-planned onto worker 0 and the
    // recovery shows up on Track::Recovered(0).
    let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
    let obs = Obs::enabled();
    let config = RuntimeConfig {
        obs: obs.clone(),
        faults: FaultPlan::none().with(1, WorkerFault::DeviceFault { after_kernels: 1 }),
        min_job_timeout: Duration::from_millis(60),
        ..RuntimeConfig::default()
    };
    let _ = run_search(db, queries, &workers, config);

    let events = obs.events();
    assert!(events
        .iter()
        .any(|e| matches!(e.track, Track::Recovered(_))));
    assert!(events.iter().any(|e| matches!(e.track, Track::Device(_))));

    let trace = swdual_obs::export::chrome_trace(&obs);
    let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
    let trace_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array")
        .clone();

    // All four synthetic processes are named, including the recovered
    // group that only exists because the run had a fault.
    let process_names: Vec<u64> = trace_events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("name").and_then(|n| n.as_str()) == Some("process_name")
        })
        .filter_map(|e| e.get("pid").and_then(|p| p.as_u64()))
        .collect();
    for pid in [PID_WALL, PID_MODELLED, PID_PLANNED, PID_RECOVERED] {
        assert!(process_names.contains(&pid), "process {pid} must be named");
    }

    let spans_on = |pid: u64| -> Vec<&serde_json::Value> {
        trace_events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("pid").and_then(|p| p.as_u64()) == Some(pid)
            })
            .collect()
    };

    // The recovery plan is its own process group, distinct from the
    // original planned schedule, and its rows use the worker tids.
    let recovered = spans_on(PID_RECOVERED);
    assert!(!recovered.is_empty(), "recovered spans must be exported");
    for span in &recovered {
        let tid = span.get("tid").and_then(|t| t.as_u64()).unwrap();
        assert!((10..1000).contains(&tid), "recovered row on worker tid");
    }
    assert!(
        !spans_on(PID_PLANNED).is_empty(),
        "original plan must still be exported alongside the recovery"
    );

    // Device activity lands on the wall/modelled clocks but in its own
    // tid namespace (1000 + device id), disjoint from worker rows.
    let device_spans: Vec<u64> = spans_on(PID_WALL)
        .iter()
        .chain(spans_on(PID_MODELLED).iter())
        .filter_map(|e| e.get("tid").and_then(|t| t.as_u64()))
        .filter(|tid| *tid >= 1000)
        .collect();
    assert!(!device_spans.is_empty(), "device spans must be exported");

    // Worker rows exist in the same processes under their own tids, so
    // the two groups render as separate tracks.
    assert!(spans_on(PID_WALL).iter().any(|e| e
        .get("tid")
        .and_then(|t| t.as_u64())
        .is_some_and(|t| (10..1000).contains(&t))));
}
