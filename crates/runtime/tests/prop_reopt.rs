//! Online re-optimization properties.
//!
//! 1. For random workloads, zoo pools, seeded stragglers and deliberate
//!    prior miscalibration, a re-opt-enabled run returns top-k hits
//!    bit-identical to the static fault-free run — re-planning only
//!    moves work between workers, never changes what is computed.
//! 2. At the scheduler level, repeated remainder re-plans under random
//!    observed-factor re-calibrations place every remaining task
//!    exactly once, every time — the invariant the master's queue
//!    surgery relies on.

use proptest::prelude::*;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::Alphabet;
use swdual_runtime::master::ReoptConfig;
use swdual_runtime::{run_search, FaultPlan, RuntimeConfig, WorkerFault, WorkerSpec};
use swdual_sched::binsearch::BinarySearchConfig;
use swdual_sched::{reschedule_remainder_weighted, Task, TaskSet, WorkerFactors};

fn database(n: usize, len: usize, seed: u64) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    let mut state = seed | 1;
    for i in 0..n {
        let residues: Vec<u8> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect();
        set.push(Sequence::from_codes(
            format!("d{i}"),
            Alphabet::Protein,
            residues,
        ))
        .unwrap();
    }
    set
}

fn queries_from(db: &SequenceSet, n_queries: usize, seed: u64) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    let mut state = seed | 1;
    for i in 0..n_queries {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = ((state >> 33) as usize) % db.len();
        let mut s = db.get(pick).unwrap().clone();
        s.id = format!("q{i}");
        set.push(s).unwrap();
    }
    set
}

/// A pool of `cpus` CPU workers and `gpus` GPU workers where
/// `miscal_seed` picks one worker to carry a wrong (2×) prior.
fn miscalibrated_pool(cpus: usize, gpus: usize, miscal_seed: u64) -> Vec<WorkerSpec> {
    let mut v = Vec::with_capacity(cpus + gpus);
    for _ in 0..cpus {
        v.push(WorkerSpec::cpu_default());
    }
    for _ in 0..gpus {
        v.push(WorkerSpec::gpu_default());
    }
    let victim = (miscal_seed as usize) % v.len();
    v[victim] = v[victim].clone().with_prior_scale(2.0);
    v
}

/// A seeded straggler plan that always spares worker 0 so the workload
/// can always finish even if every straggler were infinitely slow.
fn straggler_plan(seed: u64, n_workers: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let mut state = seed | 1;
    for w in 1..n_workers {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let roll = (state >> 33) % 100;
        if roll < 50 {
            let factor = 2.0 + (roll % 5) as f64;
            plan = plan.with(
                w,
                WorkerFault::Straggler {
                    delay_ms: 0,
                    factor,
                },
            );
        }
    }
    plan
}

proptest! {
    // Each case runs two full searches with real threads; keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn reopt_run_matches_static_fault_free_hits(
        db_n in 6usize..14,
        db_len in 30usize..80,
        n_queries in 2usize..8,
        cpus in 1usize..3,
        gpus in 1usize..3,
        data_seed in 1u64..10_000,
        fault_seed in 1u64..10_000,
    ) {
        let static_pool: Vec<WorkerSpec> = {
            let mut v = Vec::new();
            for _ in 0..cpus {
                v.push(WorkerSpec::cpu_default());
            }
            for _ in 0..gpus {
                v.push(WorkerSpec::gpu_default());
            }
            v
        };
        let db = database(db_n, db_len, data_seed);
        let queries = queries_from(&db, n_queries, data_seed ^ 0xABCD);

        // Static, fault-free, well-calibrated reference.
        let reference = run_search(
            db.clone(),
            queries.clone(),
            &static_pool,
            RuntimeConfig::default(),
        );

        // Re-opt-enabled run on a miscalibrated pool with stragglers:
        // an aggressive threshold so re-planning actually triggers.
        let pool = miscalibrated_pool(cpus, gpus, fault_seed);
        let reopt = run_search(
            db,
            queries,
            &pool,
            RuntimeConfig {
                faults: straggler_plan(fault_seed, pool.len()),
                reopt: ReoptConfig {
                    enabled: true,
                    threshold: 1.2,
                    min_remaining: 1,
                },
                ..RuntimeConfig::default()
            },
        );

        prop_assert_eq!(
            &reopt.hits, &reference.hits,
            "re-opt run diverged from static fault-free hits (fault seed {})",
            fault_seed
        );
        // Accounting still covers every task exactly once.
        let tasks: usize = reopt.worker_stats.iter().map(|s| s.tasks).sum();
        prop_assert_eq!(tasks, n_queries);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn repeated_weighted_replans_place_each_remaining_task_exactly_once(
        n_tasks in 1usize..40,
        cpus in 1usize..4,
        gpus in 1usize..4,
        rounds in 1usize..5,
        seed in 1u64..1_000_000,
    ) {
        let tasks = TaskSet::new(
            (0..n_tasks)
                .map(|id| {
                    let len = 16 + (id * 131) % 4000;
                    let p_cpu = 1.8 + len as f64 * 0.01;
                    let p_gpu = 0.5 + len as f64 * 0.001;
                    Task::new(id, p_cpu, p_gpu)
                })
                .collect(),
        );

        let mut state = seed | 1;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1_000_000) as f64 / 1_000_000.0
        };

        // Simulate the master's life: after each round a random subset
        // of tasks completes, and the rest is re-planned on a freshly
        // re-calibrated platform.
        let mut remaining: Vec<usize> = (0..n_tasks).collect();
        for round in 0..rounds {
            if remaining.is_empty() {
                break;
            }
            let factors = WorkerFactors::new(
                (0..cpus).map(|_| 1.0 + rand01() * 8.0).collect(),
                (0..gpus).map(|_| 1.0 + rand01() * 8.0).collect(),
            );
            let plan = reschedule_remainder_weighted(
                &tasks,
                &remaining,
                &factors,
                BinarySearchConfig::default(),
            );

            // Exactly-once: the re-plan covers precisely the remainder.
            let mut placed: Vec<usize> = plan.placements.iter().map(|p| p.task).collect();
            placed.sort_unstable();
            let mut expect = remaining.clone();
            expect.sort_unstable();
            prop_assert_eq!(
                placed, expect,
                "round {} re-plan lost or duplicated tasks", round
            );

            // Retire a random prefix of the plan (what "completed"
            // before the next skew observation).
            let keep: Vec<usize> = plan
                .placements
                .iter()
                .filter(|_| rand01() < 0.5)
                .map(|p| p.task)
                .collect();
            remaining = keep;
        }
    }
}
