//! End-to-end fault-tolerance property: for random workloads, worker
//! pools and seeded fault plans (which always spare at least one
//! worker), the search terminates and returns top-k hits bit-identical
//! to the fault-free run.
//!
//! The invariant holds by construction — alignment scores are a pure
//! function of (query, database, scheme), so faults can only move work
//! around — but this test exercises the whole detection/recovery
//! machinery: notified and silent crashes, device faults, stragglers,
//! registration losses, re-planning, deduplication.

use proptest::prelude::*;
use std::time::Duration;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::Alphabet;
use swdual_runtime::master::AllocationPolicy;
use swdual_runtime::{run_search, FaultPlan, RuntimeConfig, WorkerSpec};

fn database(n: usize, len: usize, seed: u64) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    let mut state = seed | 1;
    for i in 0..n {
        let residues: Vec<u8> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect();
        set.push(Sequence::from_codes(
            format!("d{i}"),
            Alphabet::Protein,
            residues,
        ))
        .unwrap();
    }
    set
}

fn queries_from(db: &SequenceSet, n_queries: usize, seed: u64) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    let mut state = seed | 1;
    for i in 0..n_queries {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = ((state >> 33) as usize) % db.len();
        let mut s = db.get(pick).unwrap().clone();
        s.id = format!("q{i}");
        set.push(s).unwrap();
    }
    set
}

fn workers(cpus: usize, gpus: usize) -> Vec<WorkerSpec> {
    let mut v = Vec::with_capacity(cpus + gpus);
    for _ in 0..cpus {
        v.push(WorkerSpec::cpu_default());
    }
    for _ in 0..gpus {
        v.push(WorkerSpec::gpu_default());
    }
    v
}

proptest! {
    // Each case runs two full searches with real threads; keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn faulted_search_matches_fault_free_hits(
        db_n in 6usize..16,
        db_len in 30usize..90,
        n_queries in 1usize..6,
        cpus in 1usize..3,
        gpus in 0usize..3,
        data_seed in 1u64..10_000,
        fault_seed in 1u64..10_000,
        self_sched in any::<bool>(),
    ) {
        let pool = workers(cpus, gpus);
        let db = database(db_n, db_len, data_seed);
        let queries = queries_from(&db, n_queries, data_seed ^ 0xABCD);
        let policy = if self_sched {
            AllocationPolicy::SelfScheduling
        } else {
            RuntimeConfig::default().policy
        };

        let healthy = run_search(
            db.clone(),
            queries.clone(),
            &pool,
            RuntimeConfig {
                policy,
                ..RuntimeConfig::default()
            },
        );

        // Seeded plans always spare at least one worker, so recovery
        // can always finish the workload.
        let plan = FaultPlan::seeded(fault_seed, pool.len());
        let faulted = run_search(
            db,
            queries,
            &pool,
            RuntimeConfig {
                policy,
                faults: plan.clone(),
                // Fast silent-death detection; generous retry budget so
                // transient re-queues of straggler-held tasks never
                // exhaust it.
                min_job_timeout: Duration::from_millis(80),
                max_task_retries: 10,
                ..RuntimeConfig::default()
            },
        );

        prop_assert_eq!(
            &faulted.hits, &healthy.hits,
            "hits diverged under plan `{}` (fault seed {})",
            plan, fault_seed
        );
        // Accounting still covers every task exactly once.
        let tasks: usize = faulted.worker_stats.iter().map(|s| s.tasks).sum();
        prop_assert_eq!(tasks, n_queries);
    }
}
