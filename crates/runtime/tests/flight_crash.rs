//! Crash-surviving flight recorder, end to end: a run fills the ring
//! with real master/worker events, a worker thread then panics, and the
//! installed hook must leave behind a `CRASH-<pid>.jsonl` fragment that
//! parses as a valid `swdual-journal/2` document.
//!
//! This is the only test binary in the workspace that installs a panic
//! hook — hooks are process-global, so keeping them out of shared test
//! binaries avoids cross-test surprises.

use std::path::PathBuf;
use std::time::Duration;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::Alphabet;
use swdual_obs::journal::{parse_journal, validate_header};
use swdual_obs::{FlightRecorder, Obs};
use swdual_runtime::{run_search, RuntimeConfig, WorkerSpec};

fn database(n: usize, len: usize, seed: u64) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    let mut state = seed | 1;
    for i in 0..n {
        let residues: Vec<u8> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20) as u8
            })
            .collect();
        set.push(Sequence::from_codes(
            format!("d{i}"),
            Alphabet::Protein,
            residues,
        ))
        .unwrap();
    }
    set
}

fn queries_from(db: &SequenceSet, picks: &[usize]) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    for (i, &pick) in picks.iter().enumerate() {
        let mut s = db.get(pick).unwrap().clone();
        s.id = format!("q{i}");
        set.push(s).unwrap();
    }
    set
}

#[test]
fn panicking_worker_leaves_a_parseable_crash_fragment() {
    // Honour SWDUAL_CRASH_DIR when the harness (CI) sets it, so the
    // fragment can be picked up by `swdual explain` afterwards;
    // otherwise dump into a private temp dir and clean up.
    let fallback = std::env::temp_dir().join(format!("swdual-flight-{}", std::process::id()));
    std::fs::create_dir_all(&fallback).unwrap();
    let dir: PathBuf = FlightRecorder::crash_dir(&fallback);
    std::fs::create_dir_all(&dir).unwrap();
    let crash = FlightRecorder::crash_path(&dir);
    let _ = std::fs::remove_file(&crash);

    // Fill the ring with real events from a small hybrid run.
    let obs = Obs::enabled();
    let flight = FlightRecorder::new(256);
    obs.attach_flight(&flight);
    let db = database(16, 80, 7);
    let queries = queries_from(&db, &[1, 5, 9]);
    let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
    let config = RuntimeConfig {
        obs: obs.clone(),
        min_job_timeout: Duration::from_millis(60),
        ..RuntimeConfig::default()
    };
    let _ = run_search(db, queries, &workers, config);
    assert!(flight.seen() > 0, "run should have recorded events");

    flight.install_panic_hook(&fallback);

    // A worker thread dies mid-flight. The hook fires at panic time,
    // before the unwind is caught by `join`, and dumps the ring.
    let handle = std::thread::Builder::new()
        .name("swdual-worker-crash".into())
        .spawn(|| panic!("deliberate worker crash (flight recorder test)"))
        .unwrap();
    assert!(handle.join().is_err(), "worker thread must have panicked");

    let text = std::fs::read_to_string(&crash)
        .unwrap_or_else(|e| panic!("crash fragment {} missing: {e}", crash.display()));
    let mut lines = text.lines();
    let header = lines.next().expect("fragment has a header line");
    validate_header(header).expect("fragment header is a valid swdual-journal/2 header");
    let events = parse_journal(&text).expect("fragment parses as a journal");
    assert!(
        !events.is_empty(),
        "fragment should carry the ring contents"
    );
    assert_eq!(events.len(), flight.len());

    // Dumps are once-per-process: a second panic must not clobber the
    // fragment (mtime/content stay put because the hook refuses).
    let before = std::fs::read_to_string(&crash).unwrap();
    let again = std::thread::spawn(|| panic!("second crash"));
    assert!(again.join().is_err());
    let after = std::fs::read_to_string(&crash).unwrap();
    assert_eq!(before, after, "flight dump must be write-once");

    // Leave the fragment in place when CI pointed us at a shared dir.
    if std::env::var_os(swdual_obs::flight::CRASH_DIR_ENV).is_none() {
        let _ = std::fs::remove_dir_all(&fallback);
    }
}
