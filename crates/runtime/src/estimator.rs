//! Task-time estimation for the allocator.
//!
//! The master must predict each task's processing time on both worker
//! species before any task has run (the paper's master does the same:
//! the dual approximation consumes `pⱼ` and `p̄ⱼ`, not measurements).
//! Estimates use the saturating-rate model shared with
//! `swdual-platform::calib`; the defaults below describe the paper's
//! machine (SWIPE-class CPU worker, Tesla C2050-class GPU worker).

use serde::{Deserialize, Serialize};
use swdual_gpusim::{DeviceClass, DeviceSpec};

/// Conservative cold-host prior: 10 MCUPS (cells per second). The
/// silent-death deadline is bounded below by pending cells at this
/// rate, so even a grossly mis-modelled (or deliberately
/// re-calibrated) slow host is never declared dead while it could
/// still plausibly be computing. Re-optimization recalibrates the
/// *planning* estimates, never this floor.
pub const COLD_HOST_CELLS_PER_SEC: f64 = 1.0e7;

/// Throughput model of one worker species.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerRateModel {
    /// Peak sustained GCUPS for long queries.
    pub peak_gcups: f64,
    /// Query length reaching half of peak.
    pub half_length: f64,
    /// Fixed per-task overhead in seconds (dispatch + merge).
    pub per_task_overhead: f64,
}

impl WorkerRateModel {
    /// SWIPE-class CPU worker (one core), from the Table II calibration.
    pub fn cpu_swipe() -> WorkerRateModel {
        WorkerRateModel {
            peak_gcups: 8.38,
            half_length: 25.0,
            per_task_overhead: 1.8,
        }
    }

    /// CUDASW++-class GPU worker (one Tesla C2050), from the Table II
    /// calibration.
    pub fn gpu_tesla() -> WorkerRateModel {
        WorkerRateModel {
            peak_gcups: 32.9,
            half_length: 280.0,
            per_task_overhead: 1.8,
        }
    }

    /// End-to-end rate model for a zoo device class (see
    /// `swdual_gpusim::DeviceClass::estimator_curve`). For
    /// [`DeviceClass::C2050`] this is exactly [`WorkerRateModel::gpu_tesla`].
    pub fn for_class(class: DeviceClass) -> WorkerRateModel {
        let (peak_gcups, half_length, per_task_overhead) = class.estimator_curve();
        WorkerRateModel {
            peak_gcups,
            half_length,
            per_task_overhead,
        }
    }

    /// Rate model for an arbitrary device spec: a recognised zoo spec
    /// uses its class calibration; a custom spec derives an end-to-end
    /// curve from its kernel fields (kernel peak scaled by the C2050's
    /// end-to-end/kernel ratio, same saturation shape, default
    /// overhead).
    pub fn for_device(spec: &DeviceSpec) -> WorkerRateModel {
        match DeviceClass::of_spec(spec) {
            Some(class) => WorkerRateModel::for_class(class),
            None => WorkerRateModel {
                peak_gcups: spec.peak_gcups * (32.9 / 27.5),
                half_length: spec.query_half_length,
                per_task_overhead: 1.8,
            },
        }
    }

    /// Sustained GCUPS for a query of `len` residues.
    pub fn rate_gcups(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.peak_gcups * len as f64 / (len as f64 + self.half_length)
    }

    /// Estimated seconds for a task of `query_len` against
    /// `db_residues`.
    pub fn task_seconds(&self, query_len: usize, db_residues: u64) -> f64 {
        if query_len == 0 {
            return self.per_task_overhead.max(1e-9);
        }
        let cells = query_len as f64 * db_residues as f64;
        self.per_task_overhead + cells / (self.rate_gcups(query_len) * 1e9)
    }
}

/// Wall-clock seconds the master grants a worker for its pending work
/// before declaring it dead: the modelled estimate mapped to wall time
/// by the observed wall/modelled ratio, stretched by `slack`, floored
/// at `floor` so a cold start (ratio still zero) never times anyone
/// out instantly.
pub fn job_deadline_seconds(modelled_est: f64, observed_ratio: f64, slack: f64, floor: f64) -> f64 {
    (slack * modelled_est * observed_ratio).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_floors_and_scales() {
        // Cold start: no observed ratio yet — the floor rules.
        assert_eq!(job_deadline_seconds(100.0, 0.0, 4.0, 5.0), 5.0);
        // Warm: modelled 10s at an observed wall/modelled ratio of 0.5,
        // slack 4 => 20s, above the floor.
        assert!((job_deadline_seconds(10.0, 0.5, 4.0, 5.0) - 20.0).abs() < 1e-12);
        // Tiny estimates never dip below the floor.
        assert_eq!(job_deadline_seconds(1e-6, 1e-3, 4.0, 0.05), 0.05);
    }

    #[test]
    fn gpu_is_faster_on_long_queries() {
        let cpu = WorkerRateModel::cpu_swipe();
        let gpu = WorkerRateModel::gpu_tesla();
        let db = 10_000_000u64;
        assert!(gpu.task_seconds(5000, db) < cpu.task_seconds(5000, db));
        // Acceleration grows with query length.
        let accel_short = cpu.task_seconds(100, db) / gpu.task_seconds(100, db);
        let accel_long = cpu.task_seconds(5000, db) / gpu.task_seconds(5000, db);
        assert!(accel_long > accel_short);
    }

    #[test]
    fn c2050_class_model_is_the_tesla_calibration() {
        assert_eq!(
            WorkerRateModel::for_class(DeviceClass::C2050),
            WorkerRateModel::gpu_tesla()
        );
        assert_eq!(
            WorkerRateModel::for_device(&DeviceSpec::tesla_c2050()),
            WorkerRateModel::gpu_tesla()
        );
    }

    #[test]
    fn zoo_models_keep_their_class_shapes() {
        let db = 10_000_000u64;
        let cpu = WorkerRateModel::cpu_swipe();
        for class in DeviceClass::ALL {
            let m = WorkerRateModel::for_class(class);
            // Every zoo member beats the single-core CPU on long queries.
            assert!(
                m.task_seconds(5000, db) < cpu.task_seconds(5000, db),
                "{} should beat the CPU on long queries",
                class.name()
            );
        }
        // The near-flat classes reach most of peak at short lengths
        // where the C2050 is still ramping.
        let c2050 = WorkerRateModel::for_class(DeviceClass::C2050);
        let knl = WorkerRateModel::for_class(DeviceClass::Knl);
        let bioseal = WorkerRateModel::for_class(DeviceClass::Bioseal);
        assert!(knl.rate_gcups(64) / knl.peak_gcups > 0.6);
        assert!(bioseal.rate_gcups(64) / bioseal.peak_gcups > 0.85);
        assert!(c2050.rate_gcups(64) / c2050.peak_gcups < 0.25);
    }

    #[test]
    fn custom_spec_model_derives_from_kernel_fields() {
        let toy = DeviceSpec::toy(1 << 20);
        let m = WorkerRateModel::for_device(&toy);
        assert!((m.peak_gcups - toy.peak_gcups * (32.9 / 27.5)).abs() < 1e-12);
        assert_eq!(m.half_length, toy.query_half_length);
    }

    #[test]
    fn zero_length_task_is_overhead_only() {
        let cpu = WorkerRateModel::cpu_swipe();
        assert!((cpu.task_seconds(0, 1_000_000) - cpu.per_task_overhead).abs() < 1e-12);
        assert_eq!(cpu.rate_gcups(0), 0.0);
    }
}
