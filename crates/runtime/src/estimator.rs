//! Task-time estimation for the allocator.
//!
//! The master must predict each task's processing time on both worker
//! species before any task has run (the paper's master does the same:
//! the dual approximation consumes `pⱼ` and `p̄ⱼ`, not measurements).
//! Estimates use the saturating-rate model shared with
//! `swdual-platform::calib`; the defaults below describe the paper's
//! machine (SWIPE-class CPU worker, Tesla C2050-class GPU worker).

use serde::{Deserialize, Serialize};

/// Throughput model of one worker species.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerRateModel {
    /// Peak sustained GCUPS for long queries.
    pub peak_gcups: f64,
    /// Query length reaching half of peak.
    pub half_length: f64,
    /// Fixed per-task overhead in seconds (dispatch + merge).
    pub per_task_overhead: f64,
}

impl WorkerRateModel {
    /// SWIPE-class CPU worker (one core), from the Table II calibration.
    pub fn cpu_swipe() -> WorkerRateModel {
        WorkerRateModel {
            peak_gcups: 8.38,
            half_length: 25.0,
            per_task_overhead: 1.8,
        }
    }

    /// CUDASW++-class GPU worker (one Tesla C2050), from the Table II
    /// calibration.
    pub fn gpu_tesla() -> WorkerRateModel {
        WorkerRateModel {
            peak_gcups: 32.9,
            half_length: 280.0,
            per_task_overhead: 1.8,
        }
    }

    /// Sustained GCUPS for a query of `len` residues.
    pub fn rate_gcups(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.peak_gcups * len as f64 / (len as f64 + self.half_length)
    }

    /// Estimated seconds for a task of `query_len` against
    /// `db_residues`.
    pub fn task_seconds(&self, query_len: usize, db_residues: u64) -> f64 {
        if query_len == 0 {
            return self.per_task_overhead.max(1e-9);
        }
        let cells = query_len as f64 * db_residues as f64;
        self.per_task_overhead + cells / (self.rate_gcups(query_len) * 1e9)
    }
}

/// Wall-clock seconds the master grants a worker for its pending work
/// before declaring it dead: the modelled estimate mapped to wall time
/// by the observed wall/modelled ratio, stretched by `slack`, floored
/// at `floor` so a cold start (ratio still zero) never times anyone
/// out instantly.
pub fn job_deadline_seconds(modelled_est: f64, observed_ratio: f64, slack: f64, floor: f64) -> f64 {
    (slack * modelled_est * observed_ratio).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_floors_and_scales() {
        // Cold start: no observed ratio yet — the floor rules.
        assert_eq!(job_deadline_seconds(100.0, 0.0, 4.0, 5.0), 5.0);
        // Warm: modelled 10s at an observed wall/modelled ratio of 0.5,
        // slack 4 => 20s, above the floor.
        assert!((job_deadline_seconds(10.0, 0.5, 4.0, 5.0) - 20.0).abs() < 1e-12);
        // Tiny estimates never dip below the floor.
        assert_eq!(job_deadline_seconds(1e-6, 1e-3, 4.0, 0.05), 0.05);
    }

    #[test]
    fn gpu_is_faster_on_long_queries() {
        let cpu = WorkerRateModel::cpu_swipe();
        let gpu = WorkerRateModel::gpu_tesla();
        let db = 10_000_000u64;
        assert!(gpu.task_seconds(5000, db) < cpu.task_seconds(5000, db));
        // Acceleration grows with query length.
        let accel_short = cpu.task_seconds(100, db) / gpu.task_seconds(100, db);
        let accel_long = cpu.task_seconds(5000, db) / gpu.task_seconds(5000, db);
        assert!(accel_long > accel_short);
    }

    #[test]
    fn zero_length_task_is_overhead_only() {
        let cpu = WorkerRateModel::cpu_swipe();
        assert!((cpu.task_seconds(0, 1_000_000) - cpu.per_task_overhead).abs() < 1e-12);
        assert_eq!(cpu.rate_gcups(0), 0.0);
    }
}
