//! Message types of the master-slave protocol (paper Figure 6).

use serde::{Deserialize, Serialize};

/// One hit in a query's result list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hit {
    /// Index of the database sequence.
    pub db_index: usize,
    /// Local-alignment score.
    pub score: i32,
}

/// Ranked hits of one query against the database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryHits {
    /// Index of the query in the query set.
    pub query_index: usize,
    /// Hits sorted by descending score (ties by ascending db index),
    /// truncated to the configured `top_k`.
    pub hits: Vec<Hit>,
}

/// A worker's registration message — the paper's Figure 6 "Register
/// with master" step. The master builds its task-time estimates from
/// the rate models the workers *declare*, not from static assumptions.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// Worker id assigned at spawn.
    pub worker_id: usize,
    /// Human-readable engine description.
    pub description: String,
    /// Whether this worker is a GPU.
    pub is_gpu: bool,
    /// Declared throughput model for task-time estimation.
    pub rate_model: crate::estimator::WorkerRateModel,
}

/// A task sent from master to a worker: compare query `query_index`
/// against the whole database.
///
/// Carries its causal lineage: which plan decision placed it, when the
/// master handed it over (both clocks), and a global dispatch sequence
/// number. Workers echo these onto their execution spans so the
/// journal's dispatch → queue-wait → exec chain is reconstructible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Task id (equals the query index in SWDUAL).
    pub task_id: usize,
    /// Query to compare.
    pub query_index: usize,
    /// Global dispatch order (0-based across all workers).
    pub dispatch_seq: u64,
    /// Plan decision that placed this dispatch: 0 is the initial
    /// schedule, each re-plan (re-optimization round or fault
    /// re-dispatch) increments it.
    pub decision: u64,
    /// Master's wall clock at hand-off (seconds since the Obs epoch).
    pub dispatch_wall: f64,
    /// Worker's modelled clock at hand-off (the virtual time the
    /// master has seen the worker complete so far).
    pub dispatch_virt: f64,
}

impl Job {
    /// A job with empty lineage (decision 0, dispatched at time zero) —
    /// the form tests and self-contained drivers use.
    pub fn new(task_id: usize, query_index: usize) -> Self {
        Job {
            task_id,
            query_index,
            dispatch_seq: 0,
            decision: 0,
            dispatch_wall: 0.0,
            dispatch_virt: 0.0,
        }
    }
}

/// A completed task reported back to the master.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Task id of the finished job.
    pub task_id: usize,
    /// Worker that executed it.
    pub worker_id: usize,
    /// Scores against every database sequence, in database order.
    pub scores: Vec<i32>,
    /// Real seconds the worker spent computing.
    pub wall_seconds: f64,
    /// Modelled seconds (virtual device time for GPU workers, modelled
    /// kernel time for CPU workers).
    pub modelled_seconds: f64,
    /// DP cells computed.
    pub cells: u64,
}

/// Why a worker stopped serving jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The worker process died (injected crash with notification).
    Crash,
    /// The worker's GPU device failed after this many kernel launches.
    DeviceFault {
        /// Kernels the device completed before failing.
        after_kernels: u64,
    },
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::Crash => write!(f, "crash"),
            FailureReason::DeviceFault { after_kernels } => {
                write!(f, "device fault after {after_kernels} kernel(s)")
            }
        }
    }
}

/// A worker's explicit death notification: the clean-exit path of the
/// fault model. Silent deaths send nothing and are detected by the
/// master's per-worker deadlines instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// The dying worker.
    pub worker_id: usize,
    /// Why it died.
    pub reason: FailureReason,
    /// The task it was holding when it died, if any — the master
    /// re-dispatches this (and, for static policies, everything else
    /// still queued on the worker).
    pub in_flight: Option<usize>,
}

/// What flows from workers back to the master.
#[derive(Debug, Clone)]
pub enum WorkerMsg {
    /// A finished task.
    Completed(JobResult),
    /// The worker is dead; its in-flight task needs a new home.
    Failed(WorkerFailure),
}

/// Per-worker accounting the master reports at the end of a search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker id (registration order).
    pub worker_id: usize,
    /// Human-readable description ("CPU(striped)", "GPU(Tesla ...)").
    pub description: String,
    /// Tasks executed.
    pub tasks: usize,
    /// Real busy seconds.
    pub busy_wall: f64,
    /// Modelled busy seconds.
    pub busy_modelled: f64,
    /// DP cells computed.
    pub cells: u64,
}

impl WorkerStats {
    /// Modelled GCUPS of this worker over its busy time.
    pub fn modelled_gcups(&self) -> f64 {
        if self.busy_modelled <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.busy_modelled / 1e9
        }
    }
}

/// Reduce a full score vector to the top-`k` hits.
pub fn top_k_hits(query_index: usize, scores: &[i32], k: usize) -> QueryHits {
    let mut hits: Vec<Hit> = scores
        .iter()
        .enumerate()
        .map(|(db_index, &score)| Hit { db_index, score })
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    hits.truncate(k);
    QueryHits { query_index, hits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_sorts_and_truncates() {
        let scores = vec![5, 9, 1, 9, 3];
        let h = top_k_hits(7, &scores, 3);
        assert_eq!(h.query_index, 7);
        assert_eq!(h.hits.len(), 3);
        // Ties (9 at indices 1 and 3) break by db index.
        assert_eq!(
            h.hits[0],
            Hit {
                db_index: 1,
                score: 9
            }
        );
        assert_eq!(
            h.hits[1],
            Hit {
                db_index: 3,
                score: 9
            }
        );
        assert_eq!(
            h.hits[2],
            Hit {
                db_index: 0,
                score: 5
            }
        );
    }

    #[test]
    fn top_k_larger_than_list() {
        let h = top_k_hits(0, &[1, 2], 10);
        assert_eq!(h.hits.len(), 2);
        assert_eq!(h.hits[0].score, 2);
    }

    #[test]
    fn top_k_zero_keeps_nothing() {
        let h = top_k_hits(2, &[9, 3, 7], 0);
        assert_eq!(h.query_index, 2);
        assert!(h.hits.is_empty());
    }

    #[test]
    fn top_k_of_empty_scores_is_empty() {
        let h = top_k_hits(0, &[], 5);
        assert!(h.hits.is_empty());
    }

    #[test]
    fn ties_at_the_cutoff_keep_lowest_db_indices() {
        // Four sequences tie at score 5; k=2 must keep the two with the
        // lowest db indices, deterministically.
        let scores = vec![5, 5, 5, 5];
        let h = top_k_hits(0, &scores, 2);
        assert_eq!(
            h.hits,
            vec![
                Hit {
                    db_index: 0,
                    score: 5
                },
                Hit {
                    db_index: 1,
                    score: 5
                },
            ]
        );
        // And the selection is stable across repeated reductions.
        assert_eq!(top_k_hits(0, &scores, 2), h);
    }

    #[test]
    fn all_negative_scores_still_rank() {
        let scores = vec![-7, -2, -9, -2];
        let h = top_k_hits(1, &scores, 3);
        let ranked: Vec<(usize, i32)> = h.hits.iter().map(|h| (h.db_index, h.score)).collect();
        assert_eq!(ranked, vec![(1, -2), (3, -2), (0, -7)]);
    }

    #[test]
    fn stats_and_hits_roundtrip_through_json() {
        let stats = WorkerStats {
            worker_id: 2,
            description: "GPU(Tesla C2050)".into(),
            tasks: 7,
            busy_wall: 0.25,
            busy_modelled: 1.5,
            cells: 123_456,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: WorkerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);

        let hits = QueryHits {
            query_index: 4,
            hits: vec![
                Hit {
                    db_index: 9,
                    score: 42,
                },
                Hit {
                    db_index: 1,
                    score: 7,
                },
            ],
        };
        let json = serde_json::to_string(&hits).unwrap();
        let back: QueryHits = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hits);
    }

    #[test]
    fn worker_stats_gcups() {
        let s = WorkerStats {
            worker_id: 0,
            description: "x".into(),
            tasks: 1,
            busy_wall: 1.0,
            busy_modelled: 2.0,
            cells: 4_000_000_000,
        };
        assert!((s.modelled_gcups() - 2.0).abs() < 1e-12);
    }
}
