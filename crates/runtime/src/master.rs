//! The master: task generation, allocation, dispatch and result
//! merging (paper Figure 6, left column).

use crate::messages::{top_k_hits, Job, JobResult, QueryHits, WorkerStats};
use crate::worker::{WorkerContext, WorkerSpec};
use crossbeam::channel;
use std::sync::Arc;
use std::time::Instant;
use swdual_bio::seq::SequenceSet;
use swdual_bio::ScoringScheme;
use swdual_obs::{Obs, Track};
use swdual_sched::binsearch::{dual_approx_schedule_observed, BinarySearchConfig};
use swdual_sched::dual::KnapsackMethod;
use swdual_sched::schedule::{PeKind, Schedule};
use swdual_sched::{PlatformSpec, Task, TaskSet};

/// How the master allocates tasks to workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// SWDUAL's one-round allocation: compute a static schedule with
    /// the dual-approximation algorithm, then send each worker its
    /// ordered task list upfront.
    DualApprox(KnapsackMethod),
    /// Dynamic self-scheduling: all workers drain one shared queue.
    SelfScheduling,
    /// Iterative allocation (paper §IV's "iteratively until all tasks
    /// are executed"): the task list is released in `rounds` batches,
    /// each scheduled by the dual approximation on top of the loads the
    /// previous batches left.
    MultiRound {
        /// Number of release batches.
        rounds: usize,
    },
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Scoring parameters.
    pub scheme: ScoringScheme,
    /// Allocation policy.
    pub policy: AllocationPolicy,
    /// Hits kept per query.
    pub top_k: usize,
    /// Event recorder. Disabled by default: tracing then costs one
    /// branch per would-be event and nothing else. Pass a clone of an
    /// enabled [`Obs`] to capture master phases, scheduler decisions,
    /// per-job worker spans and device activity.
    pub obs: Obs,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            scheme: ScoringScheme::protein_default(),
            policy: AllocationPolicy::DualApprox(KnapsackMethod::Greedy),
            top_k: 10,
            obs: Obs::disabled(),
        }
    }
}

/// Everything a finished search reports.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Ranked hits per query, in query order.
    pub hits: Vec<QueryHits>,
    /// Per-worker accounting.
    pub worker_stats: Vec<WorkerStats>,
    /// Real elapsed seconds of the whole search.
    pub wall_seconds: f64,
    /// Modelled makespan: the latest modelled finish over workers —
    /// the quantity comparable to the paper's tables.
    pub modelled_makespan: f64,
    /// Total DP cells computed.
    pub total_cells: u64,
    /// The static schedule, when the policy produced one.
    pub schedule: Option<Schedule>,
}

impl SearchOutcome {
    /// Modelled aggregate throughput in GCUPS.
    pub fn modelled_gcups(&self) -> f64 {
        if self.modelled_makespan <= 0.0 {
            0.0
        } else {
            self.total_cells as f64 / self.modelled_makespan / 1e9
        }
    }

    /// Real aggregate throughput in GCUPS.
    pub fn wall_gcups(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_cells as f64 / self.wall_seconds / 1e9
        }
    }
}

/// Penalty factor applied to the present species' time to stand in for
/// an absent species. Large enough that the knapsack never prefers the
/// absent side, small enough that sums over any realistic task count
/// stay finite — unlike the previous `f64::MAX / 4.0` sentinel, whose
/// area sums overflowed to infinity and poisoned the scheduler's
/// lower-bound and ratio-to-lower-bound diagnostics on single-species
/// platforms.
const ABSENT_SPECIES_PENALTY: f64 = 1.0e6;

/// Build the scheduler instance from the rate models the workers
/// declared at registration.
fn build_tasks(
    queries: &SequenceSet,
    db_residues: u64,
    cpu_model: Option<crate::estimator::WorkerRateModel>,
    gpu_model: Option<crate::estimator::WorkerRateModel>,
) -> TaskSet {
    TaskSet::new(
        queries
            .iter()
            .enumerate()
            .map(|(id, q)| {
                let cpu = cpu_model.map(|m| m.task_seconds(q.len(), db_residues));
                let gpu = gpu_model.map(|m| m.task_seconds(q.len(), db_residues));
                // With a species absent, derive a prohibitive but
                // finite time from the species that is present.
                let (p_cpu, p_gpu) = match (cpu, gpu) {
                    (Some(c), Some(g)) => (c, g),
                    (Some(c), None) => (c, c * ABSENT_SPECIES_PENALTY),
                    (None, Some(g)) => (g * ABSENT_SPECIES_PENALTY, g),
                    (None, None) => unreachable!("at least one worker species registers"),
                };
                Task::new(id, p_cpu, p_gpu)
            })
            .collect(),
    )
}

/// Execute a full database search on the given workers.
///
/// # Panics
/// Panics when `workers` is empty or a query/database is inconsistent
/// with the scheme's alphabet.
pub fn run_search(
    database: SequenceSet,
    queries: SequenceSet,
    workers: &[WorkerSpec],
    config: RuntimeConfig,
) -> SearchOutcome {
    assert!(!workers.is_empty(), "at least one worker required");
    let n_tasks = queries.len();
    let database = Arc::new(database);
    let queries = Arc::new(queries);
    let db_residues = database.total_residues();
    let total_cells: u64 = queries.iter().map(|q| q.len() as u64 * db_residues).sum();

    // Identify species.
    let cpu_worker_ids: Vec<usize> = workers
        .iter()
        .enumerate()
        .filter_map(|(i, w)| (!w.is_gpu()).then_some(i))
        .collect();
    let gpu_worker_ids: Vec<usize> = workers
        .iter()
        .enumerate()
        .filter_map(|(i, w)| w.is_gpu().then_some(i))
        .collect();
    let platform = PlatformSpec::new(cpu_worker_ids.len(), gpu_worker_ids.len());

    // Phase 1 — spawn workers; each registers with the master before
    // waiting for jobs (paper Figure 6: "Register with master" /
    // "Register slaves"). Job queues exist upfront but are filled only
    // after allocation.
    let (reg_tx, reg_rx) = channel::unbounded::<crate::messages::Registration>();
    let (result_tx, result_rx) = channel::unbounded::<JobResult>();
    let shared_queue = matches!(config.policy, AllocationPolicy::SelfScheduling);
    let (shared_tx, shared_rx) = channel::unbounded::<Job>();
    let mut private_tx: Vec<Option<channel::Sender<Job>>> = Vec::with_capacity(workers.len());

    let obs = config.obs.clone();
    let start = Instant::now();
    let mut results: Vec<JobResult> = Vec::with_capacity(n_tasks);
    let mut schedule: Option<Schedule> = None;

    std::thread::scope(|scope| {
        let t_register = obs.now();
        for (worker_id, spec) in workers.iter().enumerate() {
            let job_rx = if shared_queue {
                private_tx.push(None);
                shared_rx.clone()
            } else {
                let (tx, rx) = channel::unbounded::<Job>();
                private_tx.push(Some(tx));
                rx
            };
            let ctx = WorkerContext {
                worker_id,
                database: Arc::clone(&database),
                queries: Arc::clone(&queries),
                scheme: config.scheme.clone(),
                obs: obs.clone(),
            };
            let spec = spec.clone();
            let result_tx = result_tx.clone();
            let reg_tx = reg_tx.clone();
            scope.spawn(move || {
                crate::worker::worker_loop_registered(spec, ctx, Some(reg_tx), job_rx, result_tx)
            });
        }
        drop(reg_tx);
        drop(result_tx);
        drop(shared_rx);

        // Phase 2 — collect every registration ("Register slaves").
        let mut registrations: Vec<crate::messages::Registration> =
            reg_rx.iter().take(workers.len()).collect();
        registrations.sort_by_key(|r| r.worker_id);
        assert_eq!(registrations.len(), workers.len(), "every worker registers");
        obs.span(
            Track::Master,
            "register",
            t_register,
            obs.now() - t_register,
            None,
            &[("workers", workers.len() as f64)],
        );

        // Phase 3 — allocate from the *declared* rate models.
        let t_allocate = obs.now();
        let cpu_model = registrations
            .iter()
            .find(|r| !r.is_gpu)
            .map(|r| r.rate_model);
        let gpu_model = registrations
            .iter()
            .find(|r| r.is_gpu)
            .map(|r| r.rate_model);
        let tasks = build_tasks(&queries, db_residues, cpu_model, gpu_model);
        let planned: Option<Schedule> = match config.policy {
            AllocationPolicy::DualApprox(method) => Some(
                dual_approx_schedule_observed(
                    &tasks,
                    &platform,
                    BinarySearchConfig {
                        method,
                        ..BinarySearchConfig::default()
                    },
                    &obs,
                )
                .schedule,
            ),
            AllocationPolicy::SelfScheduling => None,
            AllocationPolicy::MultiRound { rounds } => {
                Some(swdual_sched::multiround::multi_round_schedule(
                    &tasks,
                    &platform,
                    rounds,
                    BinarySearchConfig::default(),
                ))
            }
        };
        obs.span(
            Track::Master,
            "allocate",
            t_allocate,
            obs.now() - t_allocate,
            None,
            &[("tasks", n_tasks as f64)],
        );

        // The planned schedule goes on its own modelled-clock tracks so
        // exports can overlay plan against actual execution.
        if obs.is_enabled() {
            if let Some(s) = &planned {
                for p in &s.placements {
                    let worker_id = match p.pe.kind {
                        PeKind::Cpu => cpu_worker_ids[p.pe.index],
                        PeKind::Gpu => gpu_worker_ids[p.pe.index],
                    };
                    obs.virtual_span(
                        Track::Planned(worker_id),
                        &format!("task-{}", p.task),
                        p.start,
                        p.end - p.start,
                        &[("task", p.task as f64)],
                    );
                }
            }
        }

        // Phase 4 — dispatch: private per-worker queues ordered by
        // planned start, or the shared self-scheduling queue.
        let t_dispatch = obs.now();
        match &planned {
            Some(s) => {
                let mut jobs: Vec<Vec<(f64, Job)>> = vec![Vec::new(); workers.len()];
                for p in &s.placements {
                    let worker_id = match p.pe.kind {
                        PeKind::Cpu => cpu_worker_ids[p.pe.index],
                        PeKind::Gpu => gpu_worker_ids[p.pe.index],
                    };
                    jobs[worker_id].push((
                        p.start,
                        Job {
                            task_id: p.task,
                            query_index: p.task,
                        },
                    ));
                }
                for (worker_id, mut list) in jobs.into_iter().enumerate() {
                    list.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    let tx = private_tx[worker_id].as_ref().expect("private queue");
                    for (_, job) in list {
                        tx.send(job).expect("queue open");
                    }
                }
            }
            None => {
                for task_id in 0..n_tasks {
                    shared_tx
                        .send(Job {
                            task_id,
                            query_index: task_id,
                        })
                        .expect("queue open");
                }
            }
        }
        schedule = planned;
        // Close all job queues: one-round dispatch is complete.
        private_tx.clear();
        drop(shared_tx);
        obs.span(
            Track::Master,
            "dispatch",
            t_dispatch,
            obs.now() - t_dispatch,
            None,
            &[("tasks", n_tasks as f64)],
        );

        // Phase 5 — merge results as they stream in.
        let t_merge = obs.now();
        for r in result_rx.iter() {
            results.push(r);
        }
        obs.span(
            Track::Master,
            "merge",
            t_merge,
            obs.now() - t_merge,
            None,
            &[("results", results.len() as f64)],
        );
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), n_tasks, "every task must report a result");

    // Per-query hits.
    let mut hits: Vec<Option<QueryHits>> = vec![None; n_tasks];
    let mut stats: Vec<WorkerStats> = workers
        .iter()
        .enumerate()
        .map(|(worker_id, spec)| WorkerStats {
            worker_id,
            description: spec.description(),
            tasks: 0,
            busy_wall: 0.0,
            busy_modelled: 0.0,
            cells: 0,
        })
        .collect();
    for r in &results {
        hits[r.task_id] = Some(top_k_hits(r.task_id, &r.scores, config.top_k));
        let s = &mut stats[r.worker_id];
        s.tasks += 1;
        s.busy_wall += r.wall_seconds;
        s.busy_modelled += r.modelled_seconds;
        s.cells += r.cells;
    }
    let hits: Vec<QueryHits> = hits.into_iter().map(|h| h.expect("all merged")).collect();
    let modelled_makespan = stats.iter().map(|s| s.busy_modelled).fold(0.0, f64::max);

    SearchOutcome {
        hits,
        worker_stats: stats,
        wall_seconds,
        modelled_makespan,
        total_cells,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_bio::seq::Sequence;
    use swdual_bio::Alphabet;

    fn db(n: usize, len: usize) -> SequenceSet {
        swdual_datagen_stub::database(n, len)
    }

    // Minimal local generator to avoid a dev-dependency cycle with
    // swdual-datagen (which this crate must not depend on).
    mod swdual_datagen_stub {
        use super::*;
        pub fn database(n: usize, len: usize) -> SequenceSet {
            let mut set = SequenceSet::new(Alphabet::Protein);
            let mut state = 0xDEAD_BEEFu64;
            for i in 0..n {
                let residues: Vec<u8> = (0..len)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) % 20) as u8
                    })
                    .collect();
                set.push(Sequence::from_codes(
                    format!("d{i}"),
                    Alphabet::Protein,
                    residues,
                ))
                .unwrap();
            }
            set
        }
    }

    fn queries_from(db: &SequenceSet, picks: &[usize]) -> SequenceSet {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, &p) in picks.iter().enumerate() {
            let mut s = db.get(p).unwrap().clone();
            s.id = format!("q{i}");
            set.push(s).unwrap();
        }
        set
    }

    #[test]
    fn dual_approx_search_finds_planted_sources() {
        let database = db(24, 120);
        let queries = queries_from(&database, &[3, 11, 17, 20]);
        let workers = vec![
            WorkerSpec::cpu_default(),
            WorkerSpec::cpu_default(),
            WorkerSpec::gpu_default(),
        ];
        let outcome = run_search(database, queries, &workers, RuntimeConfig::default());
        assert_eq!(outcome.hits.len(), 4);
        // Each query is an exact copy of a database entry: its top hit
        // must be that entry.
        for (qi, src) in [3usize, 11, 17, 20].iter().enumerate() {
            assert_eq!(outcome.hits[qi].hits[0].db_index, *src, "query {qi}");
        }
        assert!(outcome.schedule.is_some());
        assert!(outcome.total_cells > 0);
        assert!(outcome.modelled_makespan > 0.0);
        assert!(outcome.wall_seconds > 0.0);
    }

    #[test]
    fn self_scheduling_gives_identical_hits() {
        let database = db(16, 90);
        let queries = queries_from(&database, &[0, 5, 9]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
        let a = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let b = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                policy: AllocationPolicy::SelfScheduling,
                ..RuntimeConfig::default()
            },
        );
        // Allocation changes, results must not.
        assert_eq!(a.hits, b.hits);
        assert!(b.schedule.is_none());
    }

    #[test]
    fn every_worker_species_alone_works() {
        let database = db(12, 60);
        let queries = queries_from(&database, &[1, 2]);
        for workers in [
            vec![WorkerSpec::cpu_default()],
            vec![WorkerSpec::gpu_default()],
            vec![WorkerSpec::gpu_default(), WorkerSpec::gpu_default()],
        ] {
            let outcome = run_search(
                database.clone(),
                queries.clone(),
                &workers,
                RuntimeConfig::default(),
            );
            assert_eq!(outcome.hits[0].hits[0].db_index, 1);
            assert_eq!(outcome.hits[1].hits[0].db_index, 2);
            // All tasks accounted for.
            let total: usize = outcome.worker_stats.iter().map(|s| s.tasks).sum();
            assert_eq!(total, 2);
        }
    }

    #[test]
    fn stats_partition_the_work() {
        let database = db(20, 80);
        let queries = queries_from(&database, &[0, 4, 8, 12, 16]);
        let workers = vec![
            WorkerSpec::cpu_default(),
            WorkerSpec::gpu_default(),
            WorkerSpec::gpu_default(),
        ];
        let outcome = run_search(database, queries, &workers, RuntimeConfig::default());
        let tasks: usize = outcome.worker_stats.iter().map(|s| s.tasks).sum();
        assert_eq!(tasks, 5);
        let cells: u64 = outcome.worker_stats.iter().map(|s| s.cells).sum();
        assert_eq!(cells, outcome.total_cells);
        // GPU workers must carry most of the load under the dual
        // allocator (they are modelled ~4x faster).
        let gpu_tasks: usize = outcome
            .worker_stats
            .iter()
            .filter(|s| s.description.starts_with("GPU"))
            .map(|s| s.tasks)
            .sum();
        assert!(gpu_tasks >= 3, "GPUs only got {gpu_tasks} of 5 tasks");
    }

    #[test]
    fn multi_round_policy_gives_identical_hits() {
        let database = db(18, 70);
        let queries = queries_from(&database, &[2, 6, 10, 14]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
        let one = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let multi = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                policy: AllocationPolicy::MultiRound { rounds: 2 },
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(one.hits, multi.hits);
        assert!(multi.schedule.is_some());
        let tasks: usize = multi.worker_stats.iter().map(|s| s.tasks).sum();
        assert_eq!(tasks, 4);
    }

    #[test]
    fn top_k_truncates_hit_lists() {
        let database = db(30, 50);
        let queries = queries_from(&database, &[7]);
        let outcome = run_search(
            database,
            queries,
            &[WorkerSpec::cpu_default()],
            RuntimeConfig {
                top_k: 5,
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(outcome.hits[0].hits.len(), 5);
        // Scores are sorted descending.
        let scores: Vec<i32> = outcome.hits[0].hits.iter().map(|h| h.score).collect();
        let mut sorted = scores.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(scores, sorted);
    }

    #[test]
    #[should_panic]
    fn no_workers_panics() {
        let database = db(2, 10);
        let queries = queries_from(&database, &[0]);
        let _ = run_search(database, queries, &[], RuntimeConfig::default());
    }

    #[test]
    fn single_species_task_times_stay_finite() {
        // Regression: the old absent-species sentinel (`f64::MAX / 4.0`)
        // made area sums overflow to infinity on single-species
        // platforms, poisoning the scheduler's lower bound. The penalty
        // must be prohibitive yet keep every derived quantity finite.
        let database = db(10, 60);
        let queries = queries_from(&database, &[0, 3, 6, 9]);
        let db_residues = database.total_residues();
        for (cpu, gpu) in [
            (Some(crate::estimator::WorkerRateModel::cpu_swipe()), None),
            (None, Some(crate::estimator::WorkerRateModel::gpu_tesla())),
        ] {
            let tasks = build_tasks(&queries, db_residues, cpu, gpu);
            let mut area = 0.0;
            for t in tasks.iter() {
                assert!(t.p_cpu.is_finite() && t.p_cpu > 0.0);
                assert!(t.p_gpu.is_finite() && t.p_gpu > 0.0);
                area += t.p_cpu + t.p_gpu;
            }
            assert!(area.is_finite(), "area sum must not overflow");
            // The absent side is prohibitive, not just slightly worse.
            let t0 = tasks.iter().next().unwrap();
            let ratio = (t0.p_cpu / t0.p_gpu).max(t0.p_gpu / t0.p_cpu);
            assert!(ratio >= 1.0e5, "penalty too mild: ratio {ratio}");
            // And the scheduler's diagnostics stay usable.
            let platform = PlatformSpec::new(1, 1);
            let outcome = dual_approx_schedule_observed(
                &tasks,
                &platform,
                BinarySearchConfig::default(),
                &Obs::disabled(),
            );
            assert!(outcome.lower_bound.is_finite());
            assert!(outcome.upper_bound.is_finite());
            assert!(outcome.schedule.makespan().is_finite());
        }
    }

    #[test]
    fn enabled_obs_captures_phases_planned_and_actual_spans() {
        let database = db(16, 80);
        let queries = queries_from(&database, &[1, 5, 9, 13]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
        let obs = Obs::enabled();
        let outcome = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                obs: obs.clone(),
                ..RuntimeConfig::default()
            },
        );
        let events = obs.events();
        // Every master phase appears exactly once.
        for phase in ["register", "allocate", "dispatch", "merge"] {
            let n = events
                .iter()
                .filter(|e| e.track == Track::Master && e.name == phase)
                .count();
            assert_eq!(n, 1, "phase {phase}");
        }
        // Every dispatched task has an actual span on some worker track
        // and a planned span on the matching planned track.
        for task in 0..4usize {
            let name = format!("task-{task}");
            let actual: Vec<usize> = events
                .iter()
                .filter_map(|e| match e.track {
                    Track::Worker(w) if e.name == name => Some(w),
                    _ => None,
                })
                .collect();
            let planned: Vec<usize> = events
                .iter()
                .filter_map(|e| match e.track {
                    Track::Planned(w) if e.name == name => Some(w),
                    _ => None,
                })
                .collect();
            assert_eq!(actual.len(), 1, "task {task} executed once");
            assert_eq!(planned.len(), 1, "task {task} planned once");
            assert_eq!(actual, planned, "task {task} ran where it was planned");
        }
        // Scheduler events made it onto the scheduler track.
        assert!(events.iter().any(|e| e.track == Track::Scheduler));
        // Obs-derived per-worker modelled busy totals agree with the
        // hand-accumulated WorkerStats.
        for stats in &outcome.worker_stats {
            let from_events: f64 = events
                .iter()
                .filter(|e| e.track == Track::Worker(stats.worker_id))
                .filter_map(|e| e.virt_dur)
                .sum();
            assert!(
                (from_events - stats.busy_modelled).abs() <= 1e-9 * stats.busy_modelled.max(1.0),
                "worker {}: events {} vs stats {}",
                stats.worker_id,
                from_events,
                stats.busy_modelled
            );
            let spans = events
                .iter()
                .filter(|e| e.track == Track::Worker(stats.worker_id))
                .count();
            assert_eq!(spans, stats.tasks, "worker {} span count", stats.worker_id);
        }
    }

    #[test]
    fn empty_query_set_is_fine() {
        let database = db(4, 20);
        let queries = SequenceSet::new(Alphabet::Protein);
        let outcome = run_search(
            database,
            queries,
            &[WorkerSpec::cpu_default()],
            RuntimeConfig::default(),
        );
        assert!(outcome.hits.is_empty());
        assert_eq!(outcome.total_cells, 0);
    }
}
