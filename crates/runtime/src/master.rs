//! The master: task generation, allocation, dispatch and result
//! merging (paper Figure 6, left column) — plus fault tolerance.
//!
//! The fault-tolerant merge loop guarantees [`try_run_search`] always
//! returns: every worker either answers, notifies its death, or blows a
//! deadline derived from its own declared rate model; orphaned tasks
//! are re-planned onto the survivors with the same dual-approximation
//! allocator that produced the original schedule; and a bounded retry
//! count converts pathological fault storms into a typed
//! [`SearchError`] instead of a hang.
//!
//! Faults never change results. Alignment scores are a pure function of
//! (query, database, scheme), so any completion path — the original
//! worker, a late straggler, a re-dispatched copy — produces the same
//! score vector; the master dedups by task id and keeps the first.

use crate::estimator::{job_deadline_seconds, COLD_HOST_CELLS_PER_SEC};
use crate::faults::FaultPlan;
use crate::messages::{
    top_k_hits, FailureReason, Job, JobResult, QueryHits, Registration, WorkerMsg, WorkerStats,
};
use crate::worker::{WorkerContext, WorkerSpec};
use crossbeam::channel::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swdual_bio::seq::SequenceSet;
use swdual_bio::ScoringScheme;
use swdual_obs::{Obs, Track};
use swdual_sched::binsearch::{dual_approx_schedule_observed, BinarySearchConfig};
use swdual_sched::dual::KnapsackMethod;
use swdual_sched::remainder::{reschedule_remainder, reschedule_remainder_weighted, WorkerFactors};
use swdual_sched::schedule::{PeKind, Schedule};
use swdual_sched::{PlatformSpec, Task, TaskSet};

/// How the master allocates tasks to workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// SWDUAL's one-round allocation: compute a static schedule with
    /// the dual-approximation algorithm, then send each worker its
    /// ordered task list upfront.
    DualApprox(KnapsackMethod),
    /// Dynamic self-scheduling: all workers drain one shared queue.
    SelfScheduling,
    /// Iterative allocation (paper §IV's "iteratively until all tasks
    /// are executed"): the task list is released in `rounds` batches,
    /// each scheduled by the dual approximation on top of the loads the
    /// previous batches left.
    MultiRound {
        /// Number of release batches.
        rounds: usize,
    },
}

/// Online re-optimization knobs.
///
/// When enabled (static policies only), the master folds each
/// completion's observed modelled-time-per-estimate ratio into a
/// per-worker slowdown factor, species-relative: a worker is "slow"
/// compared to the fastest *same-species* worker with data, never
/// compared across species (GPU workers report kernel-only modelled
/// clocks that are incommensurable with CPU estimates). When any live
/// worker's factor has grown by at least `threshold` since the plan it
/// is executing was drawn, and at least `min_remaining` tasks are still
/// undispatched, the remaining work is re-planned on the re-calibrated
/// platform via the weighted remainder scheduler. Dispatch runs with a
/// window of one job in flight per worker, so "remaining" is genuinely
/// revocable. Deadlines (and their conservative 10-MCUPS floor) are
/// untouched by re-calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReoptConfig {
    /// Master switch; `false` reproduces the static one-round planner
    /// bit for bit.
    pub enabled: bool,
    /// Relative skew growth (≥ 1) that triggers a re-plan.
    pub threshold: f64,
    /// Minimum undispatched tasks worth re-planning.
    pub min_remaining: usize,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        ReoptConfig {
            enabled: false,
            threshold: 1.5,
            min_remaining: 2,
        }
    }
}

impl ReoptConfig {
    /// Enabled with the default threshold and minimum.
    pub fn enabled() -> ReoptConfig {
        ReoptConfig {
            enabled: true,
            ..ReoptConfig::default()
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Scoring parameters.
    pub scheme: ScoringScheme,
    /// Allocation policy.
    pub policy: AllocationPolicy,
    /// Hits kept per query.
    pub top_k: usize,
    /// Event recorder. Disabled by default: tracing then costs one
    /// branch per would-be event and nothing else. Pass a clone of an
    /// enabled [`Obs`] to capture master phases, scheduler decisions,
    /// per-job worker spans, device activity and fault events.
    pub obs: Obs,
    /// Injected faults (empty by default — every worker healthy).
    pub faults: FaultPlan,
    /// How long the master waits for registrations before proceeding
    /// with whoever answered. Healthy runs never pay this: the wait
    /// also ends as soon as every spawned worker has either registered
    /// or demonstrably died.
    pub registration_timeout: Duration,
    /// Floor of the per-worker job deadline. Detection of silent
    /// worker deaths can never be faster than this.
    pub min_job_timeout: Duration,
    /// Slack factor stretching the modelled-time-derived deadline (see
    /// [`crate::estimator::job_deadline_seconds`]).
    pub job_timeout_slack: f64,
    /// How many times one task may be re-dispatched before the search
    /// gives up with [`SearchError::RetriesExhausted`].
    pub max_task_retries: usize,
    /// Online re-optimization (adaptive re-planning) knobs.
    pub reopt: ReoptConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            scheme: ScoringScheme::protein_default(),
            policy: AllocationPolicy::DualApprox(KnapsackMethod::Greedy),
            top_k: 10,
            obs: Obs::disabled(),
            faults: FaultPlan::none(),
            registration_timeout: Duration::from_secs(5),
            min_job_timeout: Duration::from_secs(5),
            job_timeout_slack: 4.0,
            max_task_retries: 3,
            reopt: ReoptConfig::default(),
        }
    }
}

/// Why a search could not complete. Every variant is a *decision*, not
/// a hang: the master always reaches one of these or a full result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchError {
    /// No worker specs were supplied at all.
    NoWorkers,
    /// Workers were spawned but none registered within the deadline.
    NoWorkersRegistered,
    /// Every worker died before the task list was finished.
    AllWorkersDead {
        /// Tasks completed before the platform was lost.
        completed: usize,
        /// Total tasks in the search.
        total: usize,
    },
    /// One task was re-dispatched more than the configured bound.
    RetriesExhausted {
        /// The task that kept failing.
        task_id: usize,
        /// Dispatch attempts it consumed.
        retries: usize,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::NoWorkers => write!(f, "no workers supplied"),
            SearchError::NoWorkersRegistered => {
                write!(f, "no worker registered within the deadline")
            }
            SearchError::AllWorkersDead { completed, total } => write!(
                f,
                "all workers died with {completed}/{total} tasks complete"
            ),
            SearchError::RetriesExhausted { task_id, retries } => {
                write!(f, "task {task_id} failed after {retries} dispatch attempts")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// Everything a finished search reports.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Ranked hits per query, in query order.
    pub hits: Vec<QueryHits>,
    /// Per-worker accounting.
    pub worker_stats: Vec<WorkerStats>,
    /// Real elapsed seconds of the whole search.
    pub wall_seconds: f64,
    /// Modelled makespan: the latest modelled finish over workers —
    /// the quantity comparable to the paper's tables.
    pub modelled_makespan: f64,
    /// Total DP cells computed.
    pub total_cells: u64,
    /// The static schedule, when the policy produced one.
    pub schedule: Option<Schedule>,
}

impl SearchOutcome {
    /// Modelled aggregate throughput in GCUPS.
    pub fn modelled_gcups(&self) -> f64 {
        if self.modelled_makespan <= 0.0 {
            0.0
        } else {
            self.total_cells as f64 / self.modelled_makespan / 1e9
        }
    }

    /// Real aggregate throughput in GCUPS.
    pub fn wall_gcups(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.total_cells as f64 / self.wall_seconds / 1e9
        }
    }
}

/// Penalty factor applied to the present species' time to stand in for
/// an absent species. Large enough that the knapsack never prefers the
/// absent side, small enough that sums over any realistic task count
/// stay finite — unlike the previous `f64::MAX / 4.0` sentinel, whose
/// area sums overflowed to infinity and poisoned the scheduler's
/// lower-bound and ratio-to-lower-bound diagnostics on single-species
/// platforms.
const ABSENT_SPECIES_PENALTY: f64 = 1.0e6;

// `reason` argument values on `worker_death` fault events.
const DEATH_CRASH: f64 = 0.0;
const DEATH_DEVICE: f64 = 1.0;
const DEATH_TIMEOUT: f64 = 2.0;
const DEATH_DISPATCH: f64 = 3.0;

// Note on deadlines: modelled estimates describe the *paper's*
// hardware; until the first completion calibrates this host, a deadline
// derived from them alone can be arbitrarily wrong (a debug build chews
// through a 5000-residue query orders of magnitude slower than the
// modelled Tesla). Deadlines therefore never fire before the time a
// 10-MCUPS host would need for the worker's largest pending task (the
// [`COLD_HOST_CELLS_PER_SEC`] prior from `crate::estimator`) —
// conservative enough that no real host, optimised or not, is
// misdeclared dead, while tiny test workloads still detect silent
// deaths within the configured floor.

/// Largest per-worker slowdown factor re-optimization will believe.
/// Bounds both the re-planned load skew and (via the threshold-growth
/// trigger) the number of re-plans a pathological worker can cause.
const MAX_REOPT_FACTOR: f64 = 32.0;

/// Build the scheduler instance from the rate models the workers
/// declared at registration.
fn build_tasks(
    queries: &SequenceSet,
    db_residues: u64,
    cpu_model: Option<crate::estimator::WorkerRateModel>,
    gpu_model: Option<crate::estimator::WorkerRateModel>,
) -> TaskSet {
    TaskSet::new(
        queries
            .iter()
            .enumerate()
            .map(|(id, q)| {
                let cpu = cpu_model.map(|m| m.task_seconds(q.len(), db_residues));
                let gpu = gpu_model.map(|m| m.task_seconds(q.len(), db_residues));
                // With a species absent, derive a prohibitive but
                // finite time from the species that is present.
                let (p_cpu, p_gpu) = match (cpu, gpu) {
                    (Some(c), Some(g)) => (c, g),
                    (Some(c), None) => (c, c * ABSENT_SPECIES_PENALTY),
                    (None, Some(g)) => (g * ABSENT_SPECIES_PENALTY, g),
                    (None, None) => unreachable!("at least one worker species registers"),
                };
                Task::new(id, p_cpu, p_gpu)
            })
            .collect(),
    )
}

/// Causal-lineage state of the dispatch pipeline: the global dispatch
/// sequence, the current plan decision epoch (0 = initial schedule,
/// bumped by every re-optimization round and every fault re-plan), and
/// the modelled time the master has seen each worker complete so far —
/// the worker-side virtual clock at hand-off, which the worker echoes
/// back as the modelled dispatch timestamp of its execution span.
struct DispatchState {
    seq: u64,
    decision: u64,
    virt_done: Vec<f64>,
}

impl DispatchState {
    fn new(workers: usize) -> DispatchState {
        DispatchState {
            seq: 0,
            decision: 0,
            virt_done: vec![0.0; workers],
        }
    }

    /// Stamp lineage onto a job bound for worker `w` (or the shared
    /// queue, `w = None`).
    fn stamp(&mut self, t: usize, w: Option<usize>, obs: &Obs) -> Job {
        let job = Job {
            task_id: t,
            query_index: t,
            dispatch_seq: self.seq,
            decision: self.decision,
            dispatch_wall: obs.now(),
            dispatch_virt: w.map_or(0.0, |w| self.virt_done[w]),
        };
        self.seq += 1;
        job
    }
}

/// Journal the `task_dispatch` causal edge of a *successfully sent*
/// job: plan decision → dispatch, the parent link the explain module
/// and the Chrome-trace flow arrows follow. `worker` is −1 when the
/// job went to the self-scheduling shared queue (receiver unknown).
fn journal_dispatch(job: &Job, w: Option<usize>, obs: &Obs) {
    obs.instant(
        Track::Master,
        "task_dispatch",
        &[
            ("task", job.task_id as f64),
            ("worker", w.map_or(-1.0, |w| w as f64)),
            ("seq", job.dispatch_seq as f64),
            ("decision", job.decision as f64),
            ("virt", job.dispatch_virt),
        ],
    );
}

/// Mutable recovery state threaded through re-dispatch.
struct Recovery<'a> {
    tasks: &'a TaskSet,
    is_gpu: &'a [bool],
    alive: &'a mut Vec<bool>,
    queue: &'a mut Vec<Vec<usize>>,
    in_flight: &'a mut Vec<Option<usize>>,
    private_tx: &'a mut Vec<Option<channel::Sender<Job>>>,
    /// `Some` under self-scheduling: orphans go back to the shared
    /// queue instead of a re-planned static schedule.
    shared_tx: Option<&'a channel::Sender<Job>>,
    done: &'a [bool],
    retries: &'a mut Vec<usize>,
    max_retries: usize,
    completed: usize,
    n_tasks: usize,
    ds: &'a mut DispatchState,
    obs: &'a Obs,
}

/// Keep the window-1 dispatch invariant for worker `w`: while it is
/// alive and idle, pop the head of its master-held queue and send it
/// (skipping tasks that completed elsewhere in the meantime). At most
/// one job is ever in flight per worker, so everything still queued
/// remains revocable by re-planning. Returns the worker's re-orphaned
/// queue when it turns out to be dead at send time.
#[allow(clippy::too_many_arguments)]
fn feed_worker(
    w: usize,
    alive: &mut [bool],
    queue: &mut [Vec<usize>],
    in_flight: &mut [Option<usize>],
    private_tx: &mut [Option<channel::Sender<Job>>],
    done: &[bool],
    ds: &mut DispatchState,
    obs: &Obs,
) -> Vec<usize> {
    let mut orphans = Vec::new();
    while alive[w] && in_flight[w].is_none() && !queue[w].is_empty() {
        let t = queue[w].remove(0);
        if done[t] {
            continue;
        }
        let job = ds.stamp(t, Some(w), obs);
        let sent = private_tx[w]
            .as_ref()
            .map(|tx| tx.send(job).is_ok())
            .unwrap_or(false);
        if sent {
            in_flight[w] = Some(t);
            journal_dispatch(&job, Some(w), obs);
        } else {
            // Dead at send: reclaim this task and the rest of its queue.
            alive[w] = false;
            private_tx[w] = None;
            orphans.push(t);
            orphans.append(&mut queue[w]);
            obs.instant(
                Track::Faults,
                "worker_death",
                &[("worker", w as f64), ("reason", DEATH_DISPATCH)],
            );
            obs.counter("workers_lost", 1.0);
        }
    }
    orphans
}

/// Give orphaned tasks a new home. Static policies re-plan them with
/// the dual approximation on the surviving platform (the recovery
/// schedule shows up on [`Track::Recovered`] rows); self-scheduling
/// pushes them back onto the shared queue. Survivors found dead while
/// re-dispatching are declared dead and their load re-orphaned, until
/// everything is placed, the platform is empty, or a task blows its
/// retry budget.
fn redispatch_orphans(cx: Recovery<'_>, orphans: Vec<usize>) -> Result<(), SearchError> {
    let Recovery {
        tasks,
        is_gpu,
        alive,
        queue,
        in_flight,
        private_tx,
        shared_tx,
        done,
        retries,
        max_retries,
        completed,
        n_tasks,
        ds,
        obs,
    } = cx;
    let mut to_place = orphans;
    loop {
        to_place.retain(|&t| !done[t]);
        to_place.sort_unstable();
        to_place.dedup();
        if to_place.is_empty() {
            return Ok(());
        }
        for &t in &to_place {
            retries[t] += 1;
            if retries[t] > max_retries {
                return Err(SearchError::RetriesExhausted {
                    task_id: t,
                    retries: retries[t],
                });
            }
            obs.instant(
                Track::Faults,
                "task_redispatch",
                &[("task", t as f64), ("retry", retries[t] as f64)],
            );
            obs.counter("tasks_redispatched", 1.0);
        }

        if let Some(shared) = shared_tx {
            ds.decision += 1;
            for &t in &to_place {
                let job = ds.stamp(t, None, obs);
                if shared.send(job).is_err() {
                    return Err(SearchError::AllWorkersDead {
                        completed,
                        total: n_tasks,
                    });
                }
                journal_dispatch(&job, None, obs);
            }
            return Ok(());
        }

        // Static policies: re-plan the orphans on whoever survives.
        let live_cpu: Vec<usize> = (0..alive.len())
            .filter(|&w| alive[w] && !is_gpu[w])
            .collect();
        let live_gpu: Vec<usize> = (0..alive.len())
            .filter(|&w| alive[w] && is_gpu[w])
            .collect();
        if live_cpu.is_empty() && live_gpu.is_empty() {
            return Err(SearchError::AllWorkersDead {
                completed,
                total: n_tasks,
            });
        }
        let platform = PlatformSpec::new(live_cpu.len(), live_gpu.len());
        let plan = reschedule_remainder(tasks, &to_place, &platform, BinarySearchConfig::default());
        // Each fault re-plan is its own decision in the causal lineage.
        ds.decision += 1;
        let mut per: Vec<Vec<(f64, usize)>> = vec![Vec::new(); alive.len()];
        for p in &plan.placements {
            let w = match p.pe.kind {
                PeKind::Cpu => live_cpu[p.pe.index],
                PeKind::Gpu => live_gpu[p.pe.index],
            };
            if obs.is_enabled() {
                obs.virtual_span(
                    Track::Recovered(w),
                    &format!("task-{}", p.task),
                    p.start,
                    p.end - p.start,
                    &[("task", p.task as f64), ("decision", ds.decision as f64)],
                );
            }
            per[w].push((p.start, p.task));
        }
        let mut next_round: Vec<usize> = Vec::new();
        for (w, mut list) in per.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            list.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            queue[w].extend(list.into_iter().map(|(_, t)| t));
            // Window-1: only the head goes out now; the rest waits in
            // the master-held queue. A survivor found dead at send time
            // re-orphans its whole queue for the next round.
            next_round.append(&mut feed_worker(
                w, alive, queue, in_flight, private_tx, done, ds, obs,
            ));
        }
        to_place = next_round;
    }
}

/// Execute a full database search on the given workers, tolerating the
/// faults the run's [`FaultPlan`] injects (and, structurally, any
/// worker death or stall the deadlines catch): orphaned tasks are
/// re-planned on the survivors, results are deduplicated by task id,
/// and the search either completes with exactly the hits a fault-free
/// run produces or returns a typed [`SearchError`]. It cannot hang.
pub fn try_run_search(
    database: SequenceSet,
    queries: SequenceSet,
    workers: &[WorkerSpec],
    config: RuntimeConfig,
) -> Result<SearchOutcome, SearchError> {
    if workers.is_empty() {
        return Err(SearchError::NoWorkers);
    }
    let n_tasks = queries.len();
    let database = Arc::new(database);
    let queries = Arc::new(queries);
    let db_residues = database.total_residues();
    let total_cells: u64 = queries.iter().map(|q| q.len() as u64 * db_residues).sum();
    let is_gpu: Vec<bool> = workers.iter().map(|w| w.is_gpu()).collect();

    let (reg_tx, reg_rx) = channel::unbounded::<Registration>();
    let (msg_tx, msg_rx) = channel::unbounded::<WorkerMsg>();
    let shared_queue = matches!(config.policy, AllocationPolicy::SelfScheduling);
    let (shared_tx, shared_rx) = channel::unbounded::<Job>();
    let mut shared_tx = Some(shared_tx);
    let mut private_tx: Vec<Option<channel::Sender<Job>>> = Vec::with_capacity(workers.len());

    let obs = config.obs.clone();
    let start = Instant::now();
    let mut results: Vec<JobResult> = Vec::with_capacity(n_tasks);
    let mut schedule: Option<Schedule> = None;
    let mut error: Option<SearchError> = None;

    std::thread::scope(|scope| {
        // Phase 1 — spawn workers; each registers with the master
        // before waiting for jobs (paper Figure 6: "Register with
        // master" / "Register slaves").
        let t_register = obs.now();
        for (worker_id, spec) in workers.iter().enumerate() {
            let job_rx = if shared_queue {
                private_tx.push(None);
                shared_rx.clone()
            } else {
                let (tx, rx) = channel::unbounded::<Job>();
                private_tx.push(Some(tx));
                rx
            };
            let ctx = WorkerContext {
                worker_id,
                database: Arc::clone(&database),
                queries: Arc::clone(&queries),
                scheme: config.scheme.clone(),
                obs: obs.clone(),
                fault: config.faults.get(worker_id),
            };
            let spec = spec.clone();
            let msg_tx = msg_tx.clone();
            let reg_tx = reg_tx.clone();
            scope.spawn(move || {
                crate::worker::worker_loop_registered(spec, ctx, Some(reg_tx), job_rx, msg_tx)
            });
        }
        drop(reg_tx);
        drop(msg_tx);
        drop(shared_rx);

        // Phase 2 — collect registrations ("Register slaves") until
        // everyone answered, every hello sender is gone (each worker
        // either registered or died trying), or the deadline passed.
        let mut registrations: Vec<Registration> = Vec::new();
        let reg_deadline = Instant::now() + config.registration_timeout;
        while registrations.len() < workers.len() {
            match reg_rx.recv_deadline(reg_deadline) {
                Ok(r) => registrations.push(r),
                Err(_) => break, // deadline or disconnect
            }
        }
        registrations.sort_by_key(|r| r.worker_id);
        let mut alive = vec![false; workers.len()];
        for r in &registrations {
            alive[r.worker_id] = true;
        }
        for w in 0..workers.len() {
            if !alive[w] {
                // Dead at (or before) registration: close its queue so
                // the thread — if it is somehow still there — exits.
                private_tx[w] = None;
                obs.instant(
                    Track::Faults,
                    "worker_lost_registration",
                    &[("worker", w as f64)],
                );
                obs.counter("workers_lost", 1.0);
            }
        }
        // Journal who registered as what: the auditor uses these to
        // attribute species (CPU/GPU) to worker tracks.
        for r in &registrations {
            obs.instant(
                Track::Master,
                "worker_registered",
                &[
                    ("worker", r.worker_id as f64),
                    ("is_gpu", if r.is_gpu { 1.0 } else { 0.0 }),
                ],
            );
        }
        // Journal each worker's device class. Event args are numeric,
        // so the class rides in the event name (`device_class:<name>`);
        // the auditor parses it back out without the obs crate ever
        // depending on the device zoo types.
        if obs.is_enabled() {
            for r in &registrations {
                let class = match workers[r.worker_id].device_class_of() {
                    Some(c) => c.name(),
                    None if r.is_gpu => "custom",
                    None => "cpu",
                };
                obs.instant(
                    Track::Master,
                    &format!("device_class:{class}"),
                    &[("worker", r.worker_id as f64)],
                );
            }
        }
        obs.span(
            Track::Master,
            "register",
            t_register,
            obs.now() - t_register,
            None,
            &[
                ("workers", workers.len() as f64),
                ("registered", registrations.len() as f64),
            ],
        );
        let metrics = obs.metrics();
        metrics.gauge("workers_alive", &[], registrations.len() as f64);
        metrics.gauge("tasks_total", &[], n_tasks as f64);
        metrics.gauge("queue_depth", &[], n_tasks as f64);
        if registrations.is_empty() {
            error = Some(SearchError::NoWorkersRegistered);
        }

        if error.is_none() {
            // Phase 3 — allocate from the *declared* rate models of
            // the workers that actually registered.
            let t_allocate = obs.now();
            let cpu_model = registrations
                .iter()
                .find(|r| !r.is_gpu)
                .map(|r| r.rate_model);
            let gpu_model = registrations
                .iter()
                .find(|r| r.is_gpu)
                .map(|r| r.rate_model);
            let live_cpu: Vec<usize> = registrations
                .iter()
                .filter(|r| !r.is_gpu)
                .map(|r| r.worker_id)
                .collect();
            let live_gpu: Vec<usize> = registrations
                .iter()
                .filter(|r| r.is_gpu)
                .map(|r| r.worker_id)
                .collect();
            let platform = PlatformSpec::new(live_cpu.len(), live_gpu.len());
            let tasks = build_tasks(&queries, db_residues, cpu_model, gpu_model);
            // Journal the rate-model estimates per task: the auditor
            // reconstructs acceleration ratios (p_cpu/p_gpu) from these
            // to judge the knapsack's GPU-side ordering.
            if obs.is_enabled() {
                for t in tasks.iter() {
                    let qlen = queries.get(t.id).map_or(0, |q| q.len());
                    obs.instant(
                        Track::Master,
                        "task_model",
                        &[
                            ("task", t.id as f64),
                            ("p_cpu", t.p_cpu),
                            ("p_gpu", t.p_gpu),
                            ("query_len", qlen as f64),
                            ("cells", qlen as f64 * db_residues as f64),
                        ],
                    );
                }
            }
            let planned: Option<Schedule> = match config.policy {
                AllocationPolicy::DualApprox(method) => Some(
                    dual_approx_schedule_observed(
                        &tasks,
                        &platform,
                        BinarySearchConfig {
                            method,
                            ..BinarySearchConfig::default()
                        },
                        &obs,
                    )
                    .schedule,
                ),
                AllocationPolicy::SelfScheduling => None,
                AllocationPolicy::MultiRound { rounds } => {
                    Some(swdual_sched::multiround::multi_round_schedule(
                        &tasks,
                        &platform,
                        rounds,
                        BinarySearchConfig::default(),
                    ))
                }
            };
            obs.span(
                Track::Master,
                "allocate",
                t_allocate,
                obs.now() - t_allocate,
                None,
                &[("tasks", n_tasks as f64)],
            );

            // The planned schedule goes on its own modelled-clock
            // tracks so exports can overlay plan against actual.
            if obs.is_enabled() {
                if let Some(s) = &planned {
                    for p in &s.placements {
                        let worker_id = match p.pe.kind {
                            PeKind::Cpu => live_cpu[p.pe.index],
                            PeKind::Gpu => live_gpu[p.pe.index],
                        };
                        obs.virtual_span(
                            Track::Planned(worker_id),
                            &format!("task-{}", p.task),
                            p.start,
                            p.end - p.start,
                            &[("task", p.task as f64), ("decision", 0.0)],
                        );
                    }
                }
            }

            // Phase 4 — dispatch. Static policies now run with a
            // window of one: the master holds each worker's ordered
            // task queue and keeps exactly one job in flight per
            // worker, so every task still queued is revocable — the
            // raw material for both orphan re-dispatch and online
            // re-optimization. Self-scheduling keeps its shared queue.
            let t_dispatch = obs.now();
            let mut ds = DispatchState::new(workers.len());
            let mut queue: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];
            let mut in_flight: Vec<Option<usize>> = vec![None; workers.len()];
            let mut done = vec![false; n_tasks];
            let mut retries = vec![0usize; n_tasks];
            let mut completed = 0usize;
            let mut initial_orphans: Vec<usize> = Vec::new();
            match &planned {
                Some(s) => {
                    let mut jobs: Vec<Vec<(f64, usize)>> = vec![Vec::new(); workers.len()];
                    for p in &s.placements {
                        let worker_id = match p.pe.kind {
                            PeKind::Cpu => live_cpu[p.pe.index],
                            PeKind::Gpu => live_gpu[p.pe.index],
                        };
                        jobs[worker_id].push((p.start, p.task));
                    }
                    for (worker_id, mut list) in jobs.into_iter().enumerate() {
                        list.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                        queue[worker_id].extend(list.into_iter().map(|(_, t)| t));
                        initial_orphans.append(&mut feed_worker(
                            worker_id,
                            &mut alive,
                            &mut queue,
                            &mut in_flight,
                            &mut private_tx,
                            &done,
                            &mut ds,
                            &obs,
                        ));
                    }
                }
                None => {
                    for task_id in 0..n_tasks {
                        let job = ds.stamp(task_id, None, &obs);
                        if shared_tx
                            .as_ref()
                            .expect("shared queue open")
                            .send(job)
                            .is_err()
                        {
                            error = Some(SearchError::AllWorkersDead {
                                completed: 0,
                                total: n_tasks,
                            });
                            break;
                        }
                        journal_dispatch(&job, None, &obs);
                    }
                }
            }
            schedule = planned;
            obs.span(
                Track::Master,
                "dispatch",
                t_dispatch,
                obs.now() - t_dispatch,
                None,
                &[("tasks", n_tasks as f64)],
            );

            // Phase 5 — merge results as they stream in, watching for
            // deaths (explicit or by deadline), re-dispatching orphans
            // and — when enabled — re-optimizing the remaining plan.
            let t_merge = obs.now();
            // Largest observed wall-seconds per estimated-modelled-second:
            // converts modelled estimates into wall deadlines as the run
            // calibrates itself.
            let mut wall_ratio = 0.0f64;
            // Re-optimization state: per-worker maxima of the observed
            // modelled-time/estimate ratio (the estimator's
            // miscalibration as seen on the deterministic modelled
            // clock), and the slowdown factor each worker's *current
            // plan* was drawn with (1.0 = the original uniform prior).
            let mut obs_ratio = vec![0.0f64; workers.len()];
            let mut planned_factor = vec![1.0f64; workers.len()];
            let mut reopt_rounds = 0usize;
            let reopt = config.reopt;
            // Slowest observed wall-seconds per alignment cell, seeded
            // with the conservative cold-start prior. This bounds every
            // deadline from below: the modelled-estimate path can be
            // badly miscalibrated (modelled overhead dominates tiny
            // tasks while wall time is compute-dominated), but "no host
            // is slower than 10 MCUPS" always holds.
            let mut secs_per_cell = 1.0 / COLD_HOST_CELLS_PER_SEC;
            let floor = config.min_job_timeout.as_secs_f64();
            let slack = config.job_timeout_slack;
            let est_on = |w: usize, t: usize| {
                let task = tasks.tasks()[t];
                if is_gpu[w] {
                    task.p_gpu
                } else {
                    task.p_cpu
                }
            };
            let cells_of = |t: usize| {
                queries
                    .get(t)
                    .map_or(0.0, |q| q.len() as f64 * db_residues as f64)
            };
            // The worker's whole obligation — the in-flight job plus
            // its master-held queue — prices its deadline, exactly as
            // the old all-upfront dispatch did. Re-optimization never
            // touches this path: the floor below (cells at the
            // conservative cold-host prior) holds whatever the
            // re-calibrated planning factors say.
            let timeout_for =
                |w: usize, in_flight_w: Option<usize>, queue_w: &[usize], ratio: f64, spc: f64| {
                    let mut est = 0.0f64;
                    let mut max_cells = 0.0f64;
                    for t in in_flight_w.into_iter().chain(queue_w.iter().copied()) {
                        est = est.max(est_on(w, t));
                        max_cells = max_cells.max(cells_of(t));
                    }
                    let modelled = job_deadline_seconds(est, ratio, slack, floor);
                    Duration::from_secs_f64(modelled.max(slack * max_cells * spc))
                };
            let far_future = Instant::now() + Duration::from_secs(365 * 86_400);
            let mut deadlines: Vec<Instant> = vec![far_future; workers.len()];
            // Deadlines are wall-now-relative and recomputed on every
            // merge-loop message — far too chatty to journal each. The
            // watchdog only needs the timeout *magnitude* to judge
            // silent-death proximity, so publish a `worker_deadline`
            // instant when a worker's timeout changes by >10%.
            let mut published_deadline: Vec<f64> = vec![0.0; workers.len()];
            macro_rules! refresh_deadlines {
                () => {
                    for w in 0..workers.len() {
                        deadlines[w] = if alive[w] && in_flight[w].is_some() {
                            let timeout =
                                timeout_for(w, in_flight[w], &queue[w], wall_ratio, secs_per_cell);
                            let secs = timeout.as_secs_f64();
                            if (secs - published_deadline[w]).abs() > 0.1 * published_deadline[w] {
                                published_deadline[w] = secs;
                                obs.instant(
                                    Track::Master,
                                    "worker_deadline",
                                    &[("worker", w as f64), ("timeout", secs)],
                                );
                            }
                            Instant::now() + timeout
                        } else {
                            far_future
                        };
                    }
                };
            }
            // Online re-optimization: recompute species-relative
            // slowdown factors from the observed modelled/estimate
            // ratios; when some live worker's factor has grown past the
            // threshold relative to the plan it is executing, pull every
            // still-queued task back and re-plan them on the
            // re-calibrated platform with the weighted remainder
            // scheduler. The in-flight jobs (one per worker) stay where
            // they are. A macro because it reworks half the merge
            // loop's mutable state.
            macro_rules! maybe_reoptimize {
                () => {
                    if reopt.enabled && !shared_queue && schedule.is_some() && error.is_none() {
                        let live_cpu: Vec<usize> = (0..workers.len())
                            .filter(|&w| alive[w] && !is_gpu[w])
                            .collect();
                        let live_gpu: Vec<usize> = (0..workers.len())
                            .filter(|&w| alive[w] && is_gpu[w])
                            .collect();
                        // Species-relative factors: baseline is the
                        // fastest same-species worker *with data*;
                        // workers without data keep the honest prior.
                        let factors_of = |ids: &[usize]| -> Vec<f64> {
                            let baseline = ids
                                .iter()
                                .map(|&w| obs_ratio[w])
                                .filter(|&r| r > 0.0)
                                .fold(f64::INFINITY, f64::min);
                            ids.iter()
                                .map(|&w| {
                                    if obs_ratio[w] > 0.0 && baseline.is_finite() && baseline > 0.0
                                    {
                                        (obs_ratio[w] / baseline).clamp(1.0, MAX_REOPT_FACTOR)
                                    } else {
                                        1.0
                                    }
                                })
                                .collect()
                        };
                        let cpu_f = factors_of(&live_cpu);
                        let gpu_f = factors_of(&live_gpu);
                        let mut skew = 1.0f64;
                        for (i, &w) in live_cpu.iter().enumerate() {
                            skew = skew.max(cpu_f[i] / planned_factor[w]);
                        }
                        for (i, &w) in live_gpu.iter().enumerate() {
                            skew = skew.max(gpu_f[i] / planned_factor[w]);
                        }
                        metrics.gauge("reopt_skew", &[], skew);
                        let remaining: usize = (0..workers.len()).map(|w| queue[w].len()).sum();
                        if skew >= reopt.threshold && remaining >= reopt.min_remaining {
                            let mut remainder: Vec<usize> = Vec::with_capacity(remaining);
                            for w in 0..workers.len() {
                                remainder.append(&mut queue[w]);
                            }
                            remainder.retain(|&t| !done[t]);
                            if !remainder.is_empty() {
                                reopt_rounds += 1;
                                obs.instant(
                                    Track::Faults,
                                    "reopt_replan",
                                    &[
                                        ("round", reopt_rounds as f64),
                                        ("remaining", remainder.len() as f64),
                                        ("skew", skew),
                                    ],
                                );
                                obs.counter("reopt_replans", 1.0);
                                metrics.gauge("reopt_rounds", &[], reopt_rounds as f64);
                                ds.decision += 1;
                                let wf = WorkerFactors::new(cpu_f.clone(), gpu_f.clone());
                                let plan = reschedule_remainder_weighted(
                                    &tasks,
                                    &remainder,
                                    &wf,
                                    BinarySearchConfig::default(),
                                );
                                for (i, &w) in live_cpu.iter().enumerate() {
                                    planned_factor[w] = cpu_f[i];
                                }
                                for (i, &w) in live_gpu.iter().enumerate() {
                                    planned_factor[w] = gpu_f[i];
                                }
                                let mut per: Vec<Vec<(f64, usize)>> =
                                    vec![Vec::new(); workers.len()];
                                for p in &plan.placements {
                                    let w = match p.pe.kind {
                                        PeKind::Cpu => live_cpu[p.pe.index],
                                        PeKind::Gpu => live_gpu[p.pe.index],
                                    };
                                    if obs.is_enabled() {
                                        obs.virtual_span(
                                            Track::Recovered(w),
                                            &format!("task-{}", p.task),
                                            p.start,
                                            p.end - p.start,
                                            &[
                                                ("task", p.task as f64),
                                                ("reopt", reopt_rounds as f64),
                                                ("decision", ds.decision as f64),
                                            ],
                                        );
                                    }
                                    per[w].push((p.start, p.task));
                                }
                                let mut stranded: Vec<usize> = Vec::new();
                                for (w, mut list) in per.into_iter().enumerate() {
                                    if list.is_empty() {
                                        continue;
                                    }
                                    list.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                                    queue[w].extend(list.into_iter().map(|(_, t)| t));
                                    stranded.append(&mut feed_worker(
                                        w,
                                        &mut alive,
                                        &mut queue,
                                        &mut in_flight,
                                        &mut private_tx,
                                        &done,
                                        &mut ds,
                                        &obs,
                                    ));
                                }
                                if !stranded.is_empty() {
                                    let res = redispatch_orphans(
                                        Recovery {
                                            tasks: &tasks,
                                            is_gpu: &is_gpu,
                                            alive: &mut alive,
                                            queue: &mut queue,
                                            in_flight: &mut in_flight,
                                            private_tx: &mut private_tx,
                                            shared_tx: None,
                                            done: &done,
                                            retries: &mut retries,
                                            max_retries: config.max_task_retries,
                                            completed,
                                            n_tasks,
                                            ds: &mut ds,
                                            obs: &obs,
                                        },
                                        stranded,
                                    );
                                    if let Err(e) = res {
                                        error = Some(e);
                                    }
                                }
                                refresh_deadlines!();
                            }
                        }
                    }
                };
            }

            refresh_deadlines!();
            let mut last_activity = Instant::now();
            let tick = (config.min_job_timeout / 8)
                .min(Duration::from_millis(25))
                .max(Duration::from_millis(1));

            if error.is_none() && !initial_orphans.is_empty() {
                let res = redispatch_orphans(
                    Recovery {
                        tasks: &tasks,
                        is_gpu: &is_gpu,
                        alive: &mut alive,
                        queue: &mut queue,
                        in_flight: &mut in_flight,
                        private_tx: &mut private_tx,
                        shared_tx: None,
                        done: &done,
                        retries: &mut retries,
                        max_retries: config.max_task_retries,
                        completed,
                        n_tasks,
                        ds: &mut ds,
                        obs: &obs,
                    },
                    initial_orphans,
                );
                match res {
                    Ok(()) => refresh_deadlines!(),
                    Err(e) => error = Some(e),
                }
            }

            while error.is_none() && completed < n_tasks {
                match msg_rx.recv_timeout(tick) {
                    Ok(WorkerMsg::Completed(r)) => {
                        last_activity = Instant::now();
                        let w = r.worker_id;
                        if in_flight[w] == Some(r.task_id) {
                            in_flight[w] = None;
                        }
                        queue[w].retain(|&t| t != r.task_id);
                        // Advance the master's view of this worker's
                        // modelled clock: the virtual timestamp its
                        // *next* dispatch will carry.
                        ds.virt_done[w] += r.modelled_seconds.max(0.0);
                        // Calibrate against the *estimator's* modelled
                        // time for this task — the same quantity the
                        // deadlines below are computed from. (The
                        // worker-reported modelled clock is a different
                        // animal: GPU workers report kernel-only virtual
                        // seconds, orders of magnitude away from both
                        // the estimate and the wall clock.)
                        let est = est_on(w, r.task_id);
                        if est > 0.0 {
                            wall_ratio = wall_ratio.max(r.wall_seconds / est);
                            // Modelled/estimate ratio on the worker's own
                            // deterministic clock feeds re-optimization.
                            // Within one species the modelled clocks are
                            // commensurable, so the *relative* spread of
                            // these ratios is exactly the slowdown skew.
                            if r.modelled_seconds > 0.0 {
                                obs_ratio[w] = obs_ratio[w].max(r.modelled_seconds / est);
                            }
                        }
                        let cells = cells_of(r.task_id);
                        if cells > 0.0 {
                            secs_per_cell = secs_per_cell.max(r.wall_seconds / cells);
                        }
                        if done[r.task_id] {
                            // A straggler or an undetected-dead worker
                            // finished a task someone else already
                            // completed. Scores are identical by
                            // construction; keep the first.
                            obs.instant(
                                Track::Faults,
                                "duplicate_result",
                                &[("task", r.task_id as f64), ("worker", w as f64)],
                            );
                            obs.counter("duplicate_results", 1.0);
                        } else {
                            done[r.task_id] = true;
                            completed += 1;
                            results.push(r);
                            metrics.gauge("queue_depth", &[], (n_tasks - completed) as f64);
                            metrics.gauge("tasks_completed", &[], completed as f64);
                        }
                        maybe_reoptimize!();
                        if error.is_none() && !shared_queue {
                            let stranded = feed_worker(
                                w,
                                &mut alive,
                                &mut queue,
                                &mut in_flight,
                                &mut private_tx,
                                &done,
                                &mut ds,
                                &obs,
                            );
                            if !stranded.is_empty() {
                                let res = redispatch_orphans(
                                    Recovery {
                                        tasks: &tasks,
                                        is_gpu: &is_gpu,
                                        alive: &mut alive,
                                        queue: &mut queue,
                                        in_flight: &mut in_flight,
                                        private_tx: &mut private_tx,
                                        shared_tx: None,
                                        done: &done,
                                        retries: &mut retries,
                                        max_retries: config.max_task_retries,
                                        completed,
                                        n_tasks,
                                        ds: &mut ds,
                                        obs: &obs,
                                    },
                                    stranded,
                                );
                                match res {
                                    Ok(()) => refresh_deadlines!(),
                                    Err(e) => error = Some(e),
                                }
                            }
                        }
                        if alive[w] {
                            deadlines[w] = if in_flight[w].is_none() {
                                far_future
                            } else {
                                Instant::now()
                                    + timeout_for(
                                        w,
                                        in_flight[w],
                                        &queue[w],
                                        wall_ratio,
                                        secs_per_cell,
                                    )
                            };
                        }
                    }
                    Ok(WorkerMsg::Failed(f)) => {
                        last_activity = Instant::now();
                        let w = f.worker_id;
                        if alive[w] {
                            alive[w] = false;
                            private_tx[w] = None;
                            let reason = match f.reason {
                                FailureReason::Crash => DEATH_CRASH,
                                FailureReason::DeviceFault { .. } => DEATH_DEVICE,
                            };
                            obs.instant(
                                Track::Faults,
                                "worker_death",
                                &[("worker", w as f64), ("reason", reason)],
                            );
                            obs.counter("workers_lost", 1.0);
                            let mut orphans: Vec<usize> = Vec::new();
                            if let Some(t) = in_flight[w].take() {
                                orphans.push(t);
                            }
                            orphans.append(&mut queue[w]);
                            if let Some(t) = f.in_flight {
                                if !orphans.contains(&t) {
                                    orphans.push(t);
                                }
                            }
                            let res = redispatch_orphans(
                                Recovery {
                                    tasks: &tasks,
                                    is_gpu: &is_gpu,
                                    alive: &mut alive,
                                    queue: &mut queue,
                                    in_flight: &mut in_flight,
                                    private_tx: &mut private_tx,
                                    shared_tx: if shared_queue {
                                        shared_tx.as_ref()
                                    } else {
                                        None
                                    },
                                    done: &done,
                                    retries: &mut retries,
                                    max_retries: config.max_task_retries,
                                    completed,
                                    n_tasks,
                                    ds: &mut ds,
                                    obs: &obs,
                                },
                                orphans,
                            );
                            match res {
                                Ok(()) => refresh_deadlines!(),
                                Err(e) => error = Some(e),
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        let now = Instant::now();
                        if shared_queue {
                            // Self-scheduling: the master cannot know
                            // which worker holds which task, so a
                            // global stall re-queues everything not
                            // done (duplicates are deduped on merge).
                            let est = (0..n_tasks)
                                .filter(|&t| !done[t])
                                .map(|t| {
                                    let task = tasks.tasks()[t];
                                    let mut e = 0.0f64;
                                    if (0..workers.len()).any(|w| alive[w] && !is_gpu[w]) {
                                        e = e.max(task.p_cpu);
                                    }
                                    if (0..workers.len()).any(|w| alive[w] && is_gpu[w]) {
                                        e = e.max(task.p_gpu);
                                    }
                                    e
                                })
                                .fold(0.0, f64::max);
                            let max_cells = (0..n_tasks)
                                .filter(|&t| !done[t])
                                .map(cells_of)
                                .fold(0.0, f64::max);
                            let stall = Duration::from_secs_f64(
                                job_deadline_seconds(est, wall_ratio, slack, floor)
                                    .max(slack * max_cells * secs_per_cell),
                            );
                            if now.duration_since(last_activity) >= stall {
                                obs.instant(
                                    Track::Faults,
                                    "stall_redispatch",
                                    &[("outstanding", (n_tasks - completed) as f64)],
                                );
                                let orphans: Vec<usize> =
                                    (0..n_tasks).filter(|&t| !done[t]).collect();
                                let res = redispatch_orphans(
                                    Recovery {
                                        tasks: &tasks,
                                        is_gpu: &is_gpu,
                                        alive: &mut alive,
                                        queue: &mut queue,
                                        in_flight: &mut in_flight,
                                        private_tx: &mut private_tx,
                                        shared_tx: shared_tx.as_ref(),
                                        done: &done,
                                        retries: &mut retries,
                                        max_retries: config.max_task_retries,
                                        completed,
                                        n_tasks,
                                        ds: &mut ds,
                                        obs: &obs,
                                    },
                                    orphans,
                                );
                                if let Err(e) = res {
                                    error = Some(e);
                                }
                                last_activity = Instant::now();
                            }
                        } else {
                            for w in 0..workers.len() {
                                if error.is_some() {
                                    break;
                                }
                                if alive[w] && in_flight[w].is_some() && now >= deadlines[w] {
                                    alive[w] = false;
                                    private_tx[w] = None;
                                    obs.instant(
                                        Track::Faults,
                                        "worker_death",
                                        &[("worker", w as f64), ("reason", DEATH_TIMEOUT)],
                                    );
                                    obs.counter("workers_lost", 1.0);
                                    let mut orphans: Vec<usize> = Vec::new();
                                    if let Some(t) = in_flight[w].take() {
                                        orphans.push(t);
                                    }
                                    orphans.append(&mut queue[w]);
                                    let res = redispatch_orphans(
                                        Recovery {
                                            tasks: &tasks,
                                            is_gpu: &is_gpu,
                                            alive: &mut alive,
                                            queue: &mut queue,
                                            in_flight: &mut in_flight,
                                            private_tx: &mut private_tx,
                                            shared_tx: None,
                                            done: &done,
                                            retries: &mut retries,
                                            max_retries: config.max_task_retries,
                                            completed,
                                            n_tasks,
                                            ds: &mut ds,
                                            obs: &obs,
                                        },
                                        orphans,
                                    );
                                    match res {
                                        Ok(()) => refresh_deadlines!(),
                                        Err(e) => error = Some(e),
                                    }
                                }
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        // Every worker thread has exited with work
                        // still outstanding.
                        error = Some(SearchError::AllWorkersDead {
                            completed,
                            total: n_tasks,
                        });
                    }
                }
            }
            obs.span(
                Track::Master,
                "merge",
                t_merge,
                obs.now() - t_merge,
                None,
                &[("results", completed as f64)],
            );
        }

        // Shut every queue so surviving worker threads drain out and
        // the scope join below completes — on success and error alike.
        private_tx.clear();
        shared_tx = None;
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    if let Some(e) = error {
        return Err(e);
    }
    debug_assert_eq!(results.len(), n_tasks, "every task reported exactly once");

    // Per-query hits.
    let mut hits: Vec<Option<QueryHits>> = vec![None; n_tasks];
    let mut stats: Vec<WorkerStats> = workers
        .iter()
        .enumerate()
        .map(|(worker_id, spec)| WorkerStats {
            worker_id,
            description: spec.description(),
            tasks: 0,
            busy_wall: 0.0,
            busy_modelled: 0.0,
            cells: 0,
        })
        .collect();
    for r in &results {
        hits[r.task_id] = Some(top_k_hits(r.task_id, &r.scores, config.top_k));
        let s = &mut stats[r.worker_id];
        s.tasks += 1;
        s.busy_wall += r.wall_seconds;
        s.busy_modelled += r.modelled_seconds;
        s.cells += r.cells;
    }
    let hits: Vec<QueryHits> = hits.into_iter().map(|h| h.expect("all merged")).collect();
    let modelled_makespan = stats.iter().map(|s| s.busy_modelled).fold(0.0, f64::max);

    Ok(SearchOutcome {
        hits,
        worker_stats: stats,
        wall_seconds,
        modelled_makespan,
        total_cells,
        schedule,
    })
}

/// Execute a full database search on the given workers.
///
/// Thin wrapper over [`try_run_search`] for call sites that treat any
/// [`SearchError`] as fatal.
///
/// # Panics
/// Panics when the search returns an error (no workers, platform lost,
/// retry budget exhausted) or a query/database is inconsistent with
/// the scheme's alphabet.
pub fn run_search(
    database: SequenceSet,
    queries: SequenceSet,
    workers: &[WorkerSpec],
    config: RuntimeConfig,
) -> SearchOutcome {
    match try_run_search(database, queries, workers, config) {
        Ok(outcome) => outcome,
        Err(e) => panic!("search failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::WorkerFault;
    use swdual_bio::seq::Sequence;
    use swdual_bio::Alphabet;

    fn db(n: usize, len: usize) -> SequenceSet {
        swdual_datagen_stub::database(n, len)
    }

    // Minimal local generator to avoid a dev-dependency cycle with
    // swdual-datagen (which this crate must not depend on).
    mod swdual_datagen_stub {
        use super::*;
        pub fn database(n: usize, len: usize) -> SequenceSet {
            let mut set = SequenceSet::new(Alphabet::Protein);
            let mut state = 0xDEAD_BEEFu64;
            for i in 0..n {
                let residues: Vec<u8> = (0..len)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) % 20) as u8
                    })
                    .collect();
                set.push(Sequence::from_codes(
                    format!("d{i}"),
                    Alphabet::Protein,
                    residues,
                ))
                .unwrap();
            }
            set
        }
    }

    fn queries_from(db: &SequenceSet, picks: &[usize]) -> SequenceSet {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, &p) in picks.iter().enumerate() {
            let mut s = db.get(p).unwrap().clone();
            s.id = format!("q{i}");
            set.push(s).unwrap();
        }
        set
    }

    #[test]
    fn dual_approx_search_finds_planted_sources() {
        let database = db(24, 120);
        let queries = queries_from(&database, &[3, 11, 17, 20]);
        let workers = vec![
            WorkerSpec::cpu_default(),
            WorkerSpec::cpu_default(),
            WorkerSpec::gpu_default(),
        ];
        let outcome = run_search(database, queries, &workers, RuntimeConfig::default());
        assert_eq!(outcome.hits.len(), 4);
        // Each query is an exact copy of a database entry: its top hit
        // must be that entry.
        for (qi, src) in [3usize, 11, 17, 20].iter().enumerate() {
            assert_eq!(outcome.hits[qi].hits[0].db_index, *src, "query {qi}");
        }
        assert!(outcome.schedule.is_some());
        assert!(outcome.total_cells > 0);
        assert!(outcome.modelled_makespan > 0.0);
        assert!(outcome.wall_seconds > 0.0);
    }

    #[test]
    fn self_scheduling_gives_identical_hits() {
        let database = db(16, 90);
        let queries = queries_from(&database, &[0, 5, 9]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
        let a = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let b = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                policy: AllocationPolicy::SelfScheduling,
                ..RuntimeConfig::default()
            },
        );
        // Allocation changes, results must not.
        assert_eq!(a.hits, b.hits);
        assert!(b.schedule.is_none());
    }

    #[test]
    fn every_worker_species_alone_works() {
        let database = db(12, 60);
        let queries = queries_from(&database, &[1, 2]);
        for workers in [
            vec![WorkerSpec::cpu_default()],
            vec![WorkerSpec::gpu_default()],
            vec![WorkerSpec::gpu_default(), WorkerSpec::gpu_default()],
        ] {
            let outcome = run_search(
                database.clone(),
                queries.clone(),
                &workers,
                RuntimeConfig::default(),
            );
            assert_eq!(outcome.hits[0].hits[0].db_index, 1);
            assert_eq!(outcome.hits[1].hits[0].db_index, 2);
            // All tasks accounted for.
            let total: usize = outcome.worker_stats.iter().map(|s| s.tasks).sum();
            assert_eq!(total, 2);
        }
    }

    #[test]
    fn stats_partition_the_work() {
        let database = db(20, 80);
        let queries = queries_from(&database, &[0, 4, 8, 12, 16]);
        let workers = vec![
            WorkerSpec::cpu_default(),
            WorkerSpec::gpu_default(),
            WorkerSpec::gpu_default(),
        ];
        let outcome = run_search(database, queries, &workers, RuntimeConfig::default());
        let tasks: usize = outcome.worker_stats.iter().map(|s| s.tasks).sum();
        assert_eq!(tasks, 5);
        let cells: u64 = outcome.worker_stats.iter().map(|s| s.cells).sum();
        assert_eq!(cells, outcome.total_cells);
        // GPU workers must carry most of the load under the dual
        // allocator (they are modelled ~4x faster).
        let gpu_tasks: usize = outcome
            .worker_stats
            .iter()
            .filter(|s| s.description.starts_with("GPU"))
            .map(|s| s.tasks)
            .sum();
        assert!(gpu_tasks >= 3, "GPUs only got {gpu_tasks} of 5 tasks");
    }

    #[test]
    fn multi_round_policy_gives_identical_hits() {
        let database = db(18, 70);
        let queries = queries_from(&database, &[2, 6, 10, 14]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
        let one = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let multi = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                policy: AllocationPolicy::MultiRound { rounds: 2 },
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(one.hits, multi.hits);
        assert!(multi.schedule.is_some());
        let tasks: usize = multi.worker_stats.iter().map(|s| s.tasks).sum();
        assert_eq!(tasks, 4);
    }

    #[test]
    fn top_k_truncates_hit_lists() {
        let database = db(30, 50);
        let queries = queries_from(&database, &[7]);
        let outcome = run_search(
            database,
            queries,
            &[WorkerSpec::cpu_default()],
            RuntimeConfig {
                top_k: 5,
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(outcome.hits[0].hits.len(), 5);
        // Scores are sorted descending.
        let scores: Vec<i32> = outcome.hits[0].hits.iter().map(|h| h.score).collect();
        let mut sorted = scores.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(scores, sorted);
    }

    #[test]
    #[should_panic]
    fn no_workers_panics() {
        let database = db(2, 10);
        let queries = queries_from(&database, &[0]);
        let _ = run_search(database, queries, &[], RuntimeConfig::default());
    }

    #[test]
    fn no_workers_is_a_typed_error() {
        let database = db(2, 10);
        let queries = queries_from(&database, &[0]);
        assert_eq!(
            try_run_search(database, queries, &[], RuntimeConfig::default()).unwrap_err(),
            SearchError::NoWorkers
        );
    }

    #[test]
    fn single_species_task_times_stay_finite() {
        // Regression: the old absent-species sentinel (`f64::MAX / 4.0`)
        // made area sums overflow to infinity on single-species
        // platforms, poisoning the scheduler's lower bound. The penalty
        // must be prohibitive yet keep every derived quantity finite.
        let database = db(10, 60);
        let queries = queries_from(&database, &[0, 3, 6, 9]);
        let db_residues = database.total_residues();
        for (cpu, gpu) in [
            (Some(crate::estimator::WorkerRateModel::cpu_swipe()), None),
            (None, Some(crate::estimator::WorkerRateModel::gpu_tesla())),
        ] {
            let tasks = build_tasks(&queries, db_residues, cpu, gpu);
            let mut area = 0.0;
            for t in tasks.iter() {
                assert!(t.p_cpu.is_finite() && t.p_cpu > 0.0);
                assert!(t.p_gpu.is_finite() && t.p_gpu > 0.0);
                area += t.p_cpu + t.p_gpu;
            }
            assert!(area.is_finite(), "area sum must not overflow");
            // The absent side is prohibitive, not just slightly worse.
            let t0 = tasks.iter().next().unwrap();
            let ratio = (t0.p_cpu / t0.p_gpu).max(t0.p_gpu / t0.p_cpu);
            assert!(ratio >= 1.0e5, "penalty too mild: ratio {ratio}");
            // And the scheduler's diagnostics stay usable.
            let platform = PlatformSpec::new(1, 1);
            let outcome = dual_approx_schedule_observed(
                &tasks,
                &platform,
                BinarySearchConfig::default(),
                &Obs::disabled(),
            );
            assert!(outcome.lower_bound.is_finite());
            assert!(outcome.upper_bound.is_finite());
            assert!(outcome.schedule.makespan().is_finite());
        }
    }

    #[test]
    fn enabled_obs_captures_phases_planned_and_actual_spans() {
        let database = db(16, 80);
        let queries = queries_from(&database, &[1, 5, 9, 13]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
        let obs = Obs::enabled();
        let outcome = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                obs: obs.clone(),
                ..RuntimeConfig::default()
            },
        );
        let events = obs.events();
        // Every master phase appears exactly once.
        for phase in ["register", "allocate", "dispatch", "merge"] {
            let n = events
                .iter()
                .filter(|e| e.track == Track::Master && e.name == phase)
                .count();
            assert_eq!(n, 1, "phase {phase}");
        }
        // Every dispatched task has an actual span on some worker track
        // and a planned span on the matching planned track.
        for task in 0..4usize {
            let name = format!("task-{task}");
            let actual: Vec<usize> = events
                .iter()
                .filter_map(|e| match e.track {
                    Track::Worker(w) if e.name == name => Some(w),
                    _ => None,
                })
                .collect();
            let planned: Vec<usize> = events
                .iter()
                .filter_map(|e| match e.track {
                    Track::Planned(w) if e.name == name => Some(w),
                    _ => None,
                })
                .collect();
            assert_eq!(actual.len(), 1, "task {task} executed once");
            assert_eq!(planned.len(), 1, "task {task} planned once");
            assert_eq!(actual, planned, "task {task} ran where it was planned");
        }
        // Scheduler events made it onto the scheduler track.
        assert!(events.iter().any(|e| e.track == Track::Scheduler));
        // A fault-free run records no fault events.
        assert!(!events.iter().any(|e| e.track == Track::Faults));
        // Obs-derived per-worker modelled busy totals agree with the
        // hand-accumulated WorkerStats.
        for stats in &outcome.worker_stats {
            let from_events: f64 = events
                .iter()
                .filter(|e| e.track == Track::Worker(stats.worker_id))
                .filter_map(|e| e.virt_dur)
                .sum();
            assert!(
                (from_events - stats.busy_modelled).abs() <= 1e-9 * stats.busy_modelled.max(1.0),
                "worker {}: events {} vs stats {}",
                stats.worker_id,
                from_events,
                stats.busy_modelled
            );
            let spans = events
                .iter()
                .filter(|e| e.track == Track::Worker(stats.worker_id))
                .count();
            assert_eq!(spans, stats.tasks, "worker {} span count", stats.worker_id);
        }
    }

    #[test]
    fn empty_query_set_is_fine() {
        let database = db(4, 20);
        let queries = SequenceSet::new(Alphabet::Protein);
        let outcome = run_search(
            database,
            queries,
            &[WorkerSpec::cpu_default()],
            RuntimeConfig::default(),
        );
        assert!(outcome.hits.is_empty());
        assert_eq!(outcome.total_cells, 0);
    }

    // ---- fault-tolerance tests ----

    fn fault_config(faults: FaultPlan) -> RuntimeConfig {
        RuntimeConfig {
            faults,
            // Fast silent-death detection for tests; correctness does
            // not depend on the value.
            min_job_timeout: Duration::from_millis(60),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn gpu_device_fault_mid_run_recovers_with_identical_hits() {
        // The acceptance scenario: a GPU worker's device dies mid-job;
        // the master re-plans its orphans on the surviving CPU worker,
        // the search completes, and the hits are bit-identical to a
        // fault-free run. Fault + re-dispatch events land on the
        // faults track, the recovery plan on the recovered tracks.
        let database = db(20, 100);
        let queries = queries_from(&database, &[1, 5, 9, 13, 17]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()];
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let obs = Obs::enabled();
        let faulted = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                obs: obs.clone(),
                ..fault_config(
                    FaultPlan::none().with(1, WorkerFault::DeviceFault { after_kernels: 1 }),
                )
            },
        );
        assert_eq!(faulted.hits, healthy.hits, "faults must not change hits");
        // The GPU completed exactly its one kernel before dying.
        assert_eq!(faulted.worker_stats[1].tasks, 1);
        assert_eq!(faulted.worker_stats[0].tasks, 4);
        let events = obs.events();
        assert!(
            events
                .iter()
                .any(|e| e.track == Track::Faults && e.name == "worker_death"),
            "death must be recorded"
        );
        assert!(
            events
                .iter()
                .any(|e| e.track == Track::Faults && e.name == "task_redispatch"),
            "re-dispatches must be recorded"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e.track, Track::Recovered(0))),
            "recovery plan must be recorded on the survivor's track"
        );
    }

    #[test]
    fn notified_crash_recovers() {
        let database = db(16, 80);
        let queries = queries_from(&database, &[0, 4, 8, 12]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::cpu_default()];
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let faulted = run_search(
            database,
            queries,
            &workers,
            fault_config(FaultPlan::none().with(
                0,
                WorkerFault::Crash {
                    after_jobs: 0,
                    notify: true,
                },
            )),
        );
        assert_eq!(faulted.hits, healthy.hits);
        assert_eq!(faulted.worker_stats[0].tasks, 0);
        assert_eq!(faulted.worker_stats[1].tasks, 4);
    }

    #[test]
    fn silent_crash_is_detected_by_deadline() {
        let database = db(16, 80);
        let queries = queries_from(&database, &[0, 4, 8, 12]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::cpu_default()];
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let obs = Obs::enabled();
        let faulted = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                obs: obs.clone(),
                ..fault_config(FaultPlan::none().with(
                    1,
                    WorkerFault::Crash {
                        after_jobs: 0,
                        notify: false,
                    },
                ))
            },
        );
        assert_eq!(faulted.hits, healthy.hits);
        assert_eq!(faulted.worker_stats[1].tasks, 0);
        // The death was found by deadline, not notification.
        assert!(obs.events().iter().any(|e| {
            e.track == Track::Faults
                && e.name == "worker_death"
                && e.args
                    .iter()
                    .any(|(k, v)| k == "reason" && *v == DEATH_TIMEOUT)
        }));
    }

    #[test]
    fn straggler_is_timed_out_and_work_rerouted() {
        let database = db(12, 60);
        let queries = queries_from(&database, &[0, 3, 6]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::cpu_default()];
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let faulted = run_search(
            database,
            queries,
            &workers,
            fault_config(FaultPlan::none().with(
                0,
                WorkerFault::Straggler {
                    delay_ms: 250,
                    factor: 2.0,
                },
            )),
        );
        // Whether the straggler's own late results or the re-dispatched
        // copies land first, the hits are identical.
        assert_eq!(faulted.hits, healthy.hits);
    }

    #[test]
    fn crash_before_registration_degrades_gracefully() {
        let database = db(12, 60);
        let queries = queries_from(&database, &[2, 7]);
        let workers = vec![WorkerSpec::gpu_default(), WorkerSpec::cpu_default()];
        let obs = Obs::enabled();
        let outcome = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                obs: obs.clone(),
                ..fault_config(FaultPlan::none().with(0, WorkerFault::CrashBeforeRegistration))
            },
        );
        assert_eq!(outcome.hits[0].hits[0].db_index, 2);
        assert_eq!(outcome.hits[1].hits[0].db_index, 7);
        assert_eq!(outcome.worker_stats[0].tasks, 0);
        assert!(obs
            .events()
            .iter()
            .any(|e| e.track == Track::Faults && e.name == "worker_lost_registration"));
    }

    #[test]
    fn all_gpus_dead_degrades_to_cpu_only() {
        // Both GPUs die; the re-plan runs on a zero-GPU platform.
        let database = db(16, 80);
        let queries = queries_from(&database, &[0, 4, 8, 12]);
        let workers = vec![
            WorkerSpec::cpu_default(),
            WorkerSpec::gpu_default(),
            WorkerSpec::gpu_default(),
        ];
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let faulted = run_search(
            database,
            queries,
            &workers,
            fault_config(
                FaultPlan::none()
                    .with(1, WorkerFault::DeviceFault { after_kernels: 0 })
                    .with(2, WorkerFault::DeviceFault { after_kernels: 0 }),
            ),
        );
        assert_eq!(faulted.hits, healthy.hits);
        assert_eq!(faulted.worker_stats[0].tasks, 4, "CPU carried everything");
    }

    #[test]
    fn all_workers_dead_is_a_typed_error() {
        let database = db(8, 40);
        let queries = queries_from(&database, &[0, 2]);
        let err = try_run_search(
            database,
            queries,
            &[WorkerSpec::cpu_default()],
            fault_config(FaultPlan::none().with(
                0,
                WorkerFault::Crash {
                    after_jobs: 0,
                    notify: true,
                },
            )),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SearchError::AllWorkersDead {
                completed: 0,
                total: 2
            }
        ));
    }

    #[test]
    fn nobody_registers_is_a_typed_error() {
        let database = db(8, 40);
        let queries = queries_from(&database, &[0]);
        let err = try_run_search(
            database,
            queries,
            &[WorkerSpec::cpu_default()],
            fault_config(FaultPlan::none().with(0, WorkerFault::CrashBeforeRegistration)),
        )
        .unwrap_err();
        assert_eq!(err, SearchError::NoWorkersRegistered);
    }

    #[test]
    fn retry_budget_converts_livelock_into_error() {
        // Self-scheduling with one extreme straggler: the stall
        // detector re-queues the task faster than the worker finishes
        // it; the retry bound turns that into a typed error instead of
        // an unbounded loop.
        let database = db(8, 40);
        let queries = queries_from(&database, &[1]);
        let err = try_run_search(
            database,
            queries,
            &[WorkerSpec::cpu_default()],
            RuntimeConfig {
                policy: AllocationPolicy::SelfScheduling,
                faults: FaultPlan::none().with(
                    0,
                    WorkerFault::Straggler {
                        delay_ms: 400,
                        factor: 1.0,
                    },
                ),
                min_job_timeout: Duration::from_millis(25),
                max_task_retries: 1,
                ..RuntimeConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SearchError::RetriesExhausted { task_id: 0, .. }
        ));
    }

    #[test]
    fn self_scheduling_survives_a_silent_crash() {
        let database = db(16, 80);
        let queries = queries_from(&database, &[0, 4, 8, 12]);
        let workers = vec![WorkerSpec::cpu_default(), WorkerSpec::cpu_default()];
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let faulted = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                policy: AllocationPolicy::SelfScheduling,
                ..fault_config(FaultPlan::none().with(
                    0,
                    WorkerFault::Crash {
                        after_jobs: 1,
                        notify: false,
                    },
                ))
            },
        );
        assert_eq!(faulted.hits, healthy.hits);
    }

    #[test]
    fn seeded_fault_plans_preserve_hits() {
        // A few seeds through the full stack: whatever the plan does,
        // hits must match the fault-free run.
        let database = db(14, 70);
        let queries = queries_from(&database, &[0, 3, 6, 9]);
        let workers = vec![
            WorkerSpec::cpu_default(),
            WorkerSpec::cpu_default(),
            WorkerSpec::gpu_default(),
        ];
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        for seed in [1u64, 7, 23] {
            let plan = FaultPlan::seeded(seed, workers.len());
            let faulted = run_search(
                database.clone(),
                queries.clone(),
                &workers,
                fault_config(plan.clone()),
            );
            assert_eq!(faulted.hits, healthy.hits, "seed {seed} plan {plan}");
        }
    }

    // ---- online re-optimization tests ----

    /// The acceptance scenario: one GPU + two CPUs, where CPU worker 1
    /// both straggles (modelled clock ×3, no wall delay) and declared a
    /// 2× optimistic rate model. Returns (workers, miscalibrated
    /// config-with-reopt-choice closure inputs).
    fn miscalibrated_zoo() -> Vec<WorkerSpec> {
        vec![
            WorkerSpec::gpu_default(),
            WorkerSpec::cpu_default().with_prior_scale(2.0),
            WorkerSpec::cpu_default(),
        ]
    }

    fn miscalibrated_config(reopt_enabled: bool, obs: Obs) -> RuntimeConfig {
        RuntimeConfig {
            obs,
            reopt: ReoptConfig {
                enabled: reopt_enabled,
                ..ReoptConfig::default()
            },
            ..fault_config(FaultPlan::none().with(
                1,
                WorkerFault::Straggler {
                    delay_ms: 0,
                    factor: 3.0,
                },
            ))
        }
    }

    #[test]
    fn reopt_on_calibrated_run_changes_nothing() {
        // Honest priors, no faults: observed ratios are uniform, skew
        // stays below threshold, and no re-plan ever fires.
        let database = db(20, 100);
        let queries = queries_from(&database, &[1, 4, 7, 10, 13, 16]);
        let workers = vec![
            WorkerSpec::gpu_default(),
            WorkerSpec::cpu_default(),
            WorkerSpec::cpu_default(),
        ];
        let off = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let obs = Obs::enabled();
        let on = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                obs: obs.clone(),
                reopt: ReoptConfig::enabled(),
                ..RuntimeConfig::default()
            },
        );
        assert_eq!(on.hits, off.hits);
        assert!(
            !obs.events().iter().any(|e| e.name == "reopt_replan"),
            "a calibrated run must not trigger re-planning"
        );
        // Same static plan executed either way.
        for (a, b) in off.worker_stats.iter().zip(on.worker_stats.iter()) {
            assert_eq!(a.tasks, b.tasks);
        }
    }

    #[test]
    fn reopt_replans_miscalibrated_straggler_and_keeps_hits() {
        let database = db(24, 110);
        let queries = queries_from(&database, &[0, 2, 5, 8, 11, 14, 17, 20]);
        let workers = miscalibrated_zoo();
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let obs = Obs::enabled();
        let reopt = run_search(
            database,
            queries,
            &workers,
            miscalibrated_config(true, obs.clone()),
        );
        assert_eq!(reopt.hits, healthy.hits, "re-planning must not change hits");
        let events = obs.events();
        assert!(
            events
                .iter()
                .any(|e| e.track == Track::Faults && e.name == "reopt_replan"),
            "the 3x-slow 2x-overrated worker must trigger a re-plan"
        );
        // Every re-plan is journaled with its round/remaining/skew args.
        for e in events.iter().filter(|e| e.name == "reopt_replan") {
            assert!(e.args.iter().any(|(k, _)| k == "round"));
            assert!(e.args.iter().any(|(k, v)| k == "skew" && *v >= 1.5));
        }
        // All tasks ran exactly once in total accounting terms: no task
        // is double-counted by the re-plan (duplicates would inflate
        // the per-worker task counts beyond the query count unless a
        // fault forced a retry, and this plan has no deaths).
        let total: usize = reopt.worker_stats.iter().map(|s| s.tasks).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn reopt_improves_modelled_makespan_on_miscalibrated_straggler() {
        // The issue's acceptance bar: on the deliberately miscalibrated
        // scenario, re-optimization improves modelled makespan by at
        // least 15% over the static plan.
        let database = db(24, 110);
        let queries = queries_from(&database, &[0, 2, 5, 8, 11, 14, 17, 20]);
        let workers = miscalibrated_zoo();
        let static_run = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            miscalibrated_config(false, Obs::disabled()),
        );
        let reopt_run = run_search(
            database,
            queries,
            &workers,
            miscalibrated_config(true, Obs::disabled()),
        );
        assert_eq!(reopt_run.hits, static_run.hits);
        let improvement = 1.0 - reopt_run.modelled_makespan / static_run.modelled_makespan;
        assert!(
            improvement >= 0.15,
            "re-opt must improve modelled makespan by >= 15%: static {:.4}s, reopt {:.4}s ({:.1}%)",
            static_run.modelled_makespan,
            reopt_run.modelled_makespan,
            improvement * 100.0
        );
    }

    #[test]
    fn reopt_survives_worker_death_after_replan() {
        // Re-planning and fault recovery compose: the straggler is
        // re-planned around, then a CPU dies; hits still match.
        let database = db(18, 90);
        let queries = queries_from(&database, &[0, 3, 6, 9, 12, 15]);
        let workers = miscalibrated_zoo();
        let healthy = run_search(
            database.clone(),
            queries.clone(),
            &workers,
            RuntimeConfig::default(),
        );
        let faulted = run_search(
            database,
            queries,
            &workers,
            RuntimeConfig {
                reopt: ReoptConfig::enabled(),
                ..fault_config(
                    FaultPlan::none()
                        .with(
                            1,
                            WorkerFault::Straggler {
                                delay_ms: 0,
                                factor: 3.0,
                            },
                        )
                        .with(
                            2,
                            WorkerFault::Crash {
                                after_jobs: 1,
                                notify: true,
                            },
                        ),
                )
            },
        );
        assert_eq!(faulted.hits, healthy.hits);
    }

    #[test]
    fn reopt_recalibration_never_lowers_the_cold_host_deadline_floor() {
        // Regression guard for the PR 2 invariant: the silent-death
        // deadline is floored by the 10-MCUPS cold-host prior, and
        // re-calibration touches planning estimates only. Whatever the
        // re-opt machinery does to the rate models, the deadline for a
        // given amount of pending cells can never drop below the time a
        // 10-MCUPS host would need (divided by nothing — slack only
        // stretches it).
        let cells = 5.0e8; // half a giga-cell
        let slack = RuntimeConfig::default().job_timeout_slack;
        let floor_seconds = slack * cells / COLD_HOST_CELLS_PER_SEC;
        // A wildly optimistic re-calibrated estimate (estimates say the
        // task takes microseconds) with an equally optimistic observed
        // wall ratio still cannot undercut the cells-based floor the
        // master applies alongside job_deadline_seconds.
        let optimistic = job_deadline_seconds(1e-6, 1e-3, slack, 0.05);
        let deadline = optimistic.max(slack * cells * (1.0 / COLD_HOST_CELLS_PER_SEC));
        assert!(
            deadline >= floor_seconds,
            "deadline {deadline} fell below the 10-MCUPS floor {floor_seconds}"
        );
        // And the constant itself is the documented 10 MCUPS.
        assert_eq!(COLD_HOST_CELLS_PER_SEC, 1.0e7);
    }
}
