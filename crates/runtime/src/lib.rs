//! # swdual-runtime — the master-slave execution engine
//!
//! Implements the paper's Figure 6 with real OS threads: a **master**
//! that loads the sequences, builds the task list (one task = one query
//! against the whole database), allocates tasks to workers through a
//! pluggable policy, and merges results; and **workers** (slaves) that
//! register, receive tasks, execute them with their engine and stream
//! results back.
//!
//! Two worker species exist, matching the paper's platform:
//! * CPU workers run a `swdual-align` kernel (SWIPE-style by default)
//!   directly on their thread;
//! * GPU workers drive a `swdual-gpusim` device: results are computed
//!   exactly, and the device's *virtual clock* records what the kernel
//!   would have cost on the real board.
//!
//! Allocation policies: the SWDUAL **one-round dual-approximation**
//! (static schedule computed upfront from modelled task times, then
//! dispatched per worker) and dynamic **self-scheduling** (a shared
//! task queue workers drain — the baseline the paper contrasts with).
//!
//! Timing is reported on two clocks: the real wall clock of this
//! process, and the *modelled* clock in which GPU workers run at Tesla
//! speed. The modelled clock is what corresponds to the paper's tables;
//! the wall clock is what proves the machinery actually works.

//!
//! Faults are first-class: a [`FaultPlan`] injects deterministic worker
//! crashes, GPU device failures and straggler slowdowns; the master
//! detects deaths (explicitly or by deadline), re-plans orphaned tasks
//! on the survivors and — because alignment scores are a pure function
//! of the inputs — returns hits bit-identical to a fault-free run, or a
//! typed [`SearchError`]. See [`faults`] and [`master::try_run_search`].
//!
//! Online re-optimization ([`ReoptConfig`]) closes the loop the other
//! way: observed per-task modelled/estimate ratios feed back into the
//! estimator, and when a worker's species-relative slowdown outgrows
//! the plan it is executing, the still-queued remainder is re-planned
//! on the re-calibrated platform (`swdual-sched`'s weighted remainder
//! scheduler). Off by default; disabled runs reproduce the static
//! one-round planner bit for bit.

pub mod estimator;
pub mod faults;
pub mod master;
pub mod messages;
pub mod worker;

pub use estimator::{WorkerRateModel, COLD_HOST_CELLS_PER_SEC};
pub use faults::{FaultPlan, WorkerFault};
pub use master::{
    run_search, try_run_search, AllocationPolicy, ReoptConfig, RuntimeConfig, SearchError,
    SearchOutcome,
};
pub use messages::{FailureReason, Hit, QueryHits, WorkerFailure, WorkerMsg, WorkerStats};
pub use worker::{WorkerKind, WorkerSpec};
