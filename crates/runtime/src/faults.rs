//! Deterministic fault injection for the master–slave runtime.
//!
//! A [`FaultPlan`] maps worker ids to the single fault that worker will
//! exhibit. Plans are plain data: they can be built explicitly, derived
//! deterministically from a seed ([`FaultPlan::seeded`]) or parsed from
//! a compact CLI spec ([`FaultPlan::parse`]). The same plan always
//! produces the same fault *behaviour*; combined with the runtime's
//! dedup-and-redispatch recovery, the same plan therefore always
//! produces bit-identical top-k hits (alignment scores are a pure
//! function of the sequences and scoring scheme — faults can only
//! change *who* computes a score and *when*, never its value).
//!
//! Faults model the failure classes of the paper's hybrid platform:
//! worker processes dying before or during execution (with or without a
//! goodbye message), GPU boards failing mid-run, and stragglers — the
//! workers that keep answering but far slower than their declared rate
//! model.

use std::collections::BTreeMap;
use std::fmt;

/// The failure behaviour of one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerFault {
    /// The worker dies before sending its registration message. The
    /// master proceeds with whoever did register.
    CrashBeforeRegistration,
    /// The worker dies when it picks up its `after_jobs`-th job
    /// (0-based: `after_jobs = 0` dies on its first job). With
    /// `notify`, a failure message reaches the master (a clean process
    /// exit); without, the worker simply vanishes and the master must
    /// detect the loss by deadline.
    Crash {
        /// Jobs completed before the crash.
        after_jobs: usize,
        /// Whether the master is told, or has to time the worker out.
        notify: bool,
    },
    /// The worker's simulated GPU device fails after `after_kernels`
    /// successful kernel launches; the worker reports the device error
    /// and exits. Ignored by CPU workers (they have no device).
    DeviceFault {
        /// Kernel launches that succeed before the device dies.
        after_kernels: u64,
    },
    /// The worker stays alive but stalls `delay_ms` of wall time before
    /// every job and reports modelled times inflated by `factor` — the
    /// mis-calibrated or contended worker of robustness §V.
    Straggler {
        /// Wall-clock sleep before each job, in milliseconds.
        delay_ms: u64,
        /// Multiplier applied to the worker's modelled task times.
        factor: f64,
    },
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFault::CrashBeforeRegistration => write!(f, "noreg"),
            WorkerFault::Crash {
                after_jobs,
                notify: true,
            } => write!(f, "crash@{after_jobs}"),
            WorkerFault::Crash {
                after_jobs,
                notify: false,
            } => write!(f, "vanish@{after_jobs}"),
            WorkerFault::DeviceFault { after_kernels } => write!(f, "device@{after_kernels}"),
            WorkerFault::Straggler { delay_ms, factor } => {
                write!(f, "straggle@{delay_ms}x{factor}")
            }
        }
    }
}

/// Which workers fail, and how. At most one fault per worker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, WorkerFault>,
}

impl FaultPlan {
    /// The empty plan: every worker is healthy.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no worker has a fault.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faulted workers.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Assign `fault` to `worker_id` (builder style).
    pub fn with(mut self, worker_id: usize, fault: WorkerFault) -> FaultPlan {
        self.faults.insert(worker_id, fault);
        self
    }

    /// Assign `fault` to `worker_id`, replacing any previous one.
    pub fn insert(&mut self, worker_id: usize, fault: WorkerFault) {
        self.faults.insert(worker_id, fault);
    }

    /// The fault planned for `worker_id`, if any.
    pub fn get(&self, worker_id: usize) -> Option<WorkerFault> {
        self.faults.get(&worker_id).copied()
    }

    /// Iterate `(worker_id, fault)` pairs in worker-id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, WorkerFault)> + '_ {
        self.faults.iter().map(|(&w, &f)| (w, f))
    }

    /// Derive a plan from a seed, deterministically: the same
    /// `(seed, n_workers)` always yields the same plan. At least one
    /// worker (chosen by the seed) is guaranteed completely healthy, so
    /// a seeded plan can never kill the whole platform. With a single
    /// worker, the plan is empty.
    pub fn seeded(seed: u64, n_workers: usize) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if n_workers <= 1 {
            return plan;
        }
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let spared = next() as usize % n_workers;
        for worker_id in 0..n_workers {
            if worker_id == spared {
                continue;
            }
            let fault = match next() % 100 {
                0..=24 => Some(WorkerFault::Crash {
                    after_jobs: (next() % 3) as usize,
                    notify: true,
                }),
                25..=39 => Some(WorkerFault::Crash {
                    after_jobs: (next() % 3) as usize,
                    notify: false,
                }),
                40..=54 => Some(WorkerFault::DeviceFault {
                    after_kernels: next() % 4,
                }),
                55..=69 => Some(WorkerFault::Straggler {
                    delay_ms: 5 + next() % 30,
                    factor: 1.5 + (next() % 4) as f64,
                }),
                70..=79 => Some(WorkerFault::CrashBeforeRegistration),
                _ => None,
            };
            if let Some(fault) = fault {
                plan.insert(worker_id, fault);
            }
        }
        plan
    }

    /// Parse a compact plan spec: comma-separated `worker:fault`
    /// entries, where `fault` is one of
    ///
    /// * `noreg` — die before registering;
    /// * `crash@N` — die (with notification) when picking up the job
    ///   after completing `N`;
    /// * `vanish@N` — like `crash@N` but silent (timeout detection);
    /// * `device@K` — GPU device fails after `K` kernels;
    /// * `straggle@MSxF` — sleep `MS` ms per job, inflate modelled
    ///   times by factor `F`.
    ///
    /// Example: `"1:crash@2,2:device@0,0:straggle@50x3"`. The empty
    /// string parses to the empty plan. [`FaultPlan`]'s `Display`
    /// renders this same syntax, so plans round-trip.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (wid, fault) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` is not worker:fault"))?;
            let worker_id: usize = wid
                .parse()
                .map_err(|_| format!("bad worker id `{wid}` in `{entry}`"))?;
            let fault =
                Self::parse_fault(fault).map_err(|e| format!("bad fault in `{entry}`: {e}"))?;
            if plan.get(worker_id).is_some() {
                return Err(format!("worker {worker_id} has two faults"));
            }
            plan.insert(worker_id, fault);
        }
        Ok(plan)
    }

    fn parse_fault(text: &str) -> Result<WorkerFault, String> {
        if text == "noreg" {
            return Ok(WorkerFault::CrashBeforeRegistration);
        }
        let (kind, arg) = text
            .split_once('@')
            .ok_or_else(|| format!("`{text}` has no @argument"))?;
        match kind {
            "crash" | "vanish" => {
                let after_jobs = arg.parse().map_err(|_| format!("bad job count `{arg}`"))?;
                Ok(WorkerFault::Crash {
                    after_jobs,
                    notify: kind == "crash",
                })
            }
            "device" => {
                let after_kernels = arg
                    .parse()
                    .map_err(|_| format!("bad kernel count `{arg}`"))?;
                Ok(WorkerFault::DeviceFault { after_kernels })
            }
            "straggle" => {
                let (ms, factor) = arg
                    .split_once('x')
                    .ok_or_else(|| format!("straggle arg `{arg}` is not MSxF"))?;
                let delay_ms = ms.parse().map_err(|_| format!("bad delay `{ms}`"))?;
                let factor: f64 = factor
                    .parse()
                    .map_err(|_| format!("bad factor `{factor}`"))?;
                if factor.is_nan() || factor < 1.0 {
                    return Err(format!("straggle factor {factor} must be >= 1"));
                }
                Ok(WorkerFault::Straggler { delay_ms, factor })
            }
            other => Err(format!("unknown fault kind `{other}`")),
        }
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        FaultPlan::parse(s)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (worker_id, fault) in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{worker_id}:{fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_roundtrip() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "");
    }

    #[test]
    fn parse_every_fault_kind() {
        let plan =
            FaultPlan::parse("0:noreg,1:crash@2,2:vanish@0,3:device@4,4:straggle@50x2.5").unwrap();
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.get(0), Some(WorkerFault::CrashBeforeRegistration));
        assert_eq!(
            plan.get(1),
            Some(WorkerFault::Crash {
                after_jobs: 2,
                notify: true
            })
        );
        assert_eq!(
            plan.get(2),
            Some(WorkerFault::Crash {
                after_jobs: 0,
                notify: false
            })
        );
        assert_eq!(
            plan.get(3),
            Some(WorkerFault::DeviceFault { after_kernels: 4 })
        );
        assert_eq!(
            plan.get(4),
            Some(WorkerFault::Straggler {
                delay_ms: 50,
                factor: 2.5
            })
        );
        assert_eq!(plan.get(5), None);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let plan = FaultPlan::none()
            .with(
                1,
                WorkerFault::Crash {
                    after_jobs: 1,
                    notify: false,
                },
            )
            .with(
                3,
                WorkerFault::Straggler {
                    delay_ms: 20,
                    factor: 3.0,
                },
            )
            .with(0, WorkerFault::CrashBeforeRegistration);
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("x:crash@1").is_err());
        assert!(FaultPlan::parse("0:crash").is_err());
        assert!(FaultPlan::parse("0:warp@3").is_err());
        assert!(FaultPlan::parse("0:straggle@10").is_err());
        assert!(FaultPlan::parse("0:straggle@10x0.5").is_err());
        assert!(FaultPlan::parse("0:crash@1,0:vanish@2").is_err());
    }

    #[test]
    fn seeded_is_deterministic_and_spares_a_worker() {
        for seed in 0..50u64 {
            let n = 2 + (seed as usize % 4);
            let a = FaultPlan::seeded(seed, n);
            let b = FaultPlan::seeded(seed, n);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(a.len() < n, "seed {seed} faulted every worker");
        }
    }

    #[test]
    fn seeded_single_worker_is_healthy() {
        assert!(FaultPlan::seeded(42, 1).is_empty());
        assert!(FaultPlan::seeded(42, 0).is_empty());
    }

    #[test]
    fn seeds_vary_the_plan() {
        // Not all seeds may differ, but across a handful at least two
        // distinct plans must appear.
        let plans: Vec<String> = (0..10)
            .map(|s| FaultPlan::seeded(s, 4).to_string())
            .collect();
        assert!(plans.iter().any(|p| p != &plans[0]));
    }
}
