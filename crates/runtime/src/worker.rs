//! Worker (slave) threads.
//!
//! A worker registers with the master, acquires the shared sequences
//! (paper Fig. 6: "Acquire sequences"), then loops: receive a task,
//! execute it with its engine, send the result. CPU workers run an
//! alignment kernel in-thread; GPU workers drive a simulated device
//! whose virtual clock supplies the modelled task time.
//!
//! Workers honour an optional [`WorkerFault`] from the run's
//! [`FaultPlan`](crate::faults::FaultPlan): crashing before
//! registration, crashing on a given job (silently or with a
//! [`WorkerMsg::Failed`] goodbye), failing their simulated GPU device,
//! or straggling. Fault checks sit outside the per-job compute path and
//! cost one `Option` match when no fault is planned.

use crate::estimator::WorkerRateModel;
use crate::faults::WorkerFault;
use crate::messages::{FailureReason, Job, JobResult, WorkerFailure, WorkerMsg};
use crossbeam::channel::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;
use swdual_align::engine::{EngineKind, PhaseTimings};
use swdual_align::{ProfileCache, TierStats};
use swdual_bio::seq::SequenceSet;
use swdual_bio::ScoringScheme;
use swdual_gpusim::{DeviceClass, DeviceSpec, GpuDevice};
use swdual_obs::{Obs, Track};

/// Worker species: which engine a worker actually runs.
#[derive(Debug, Clone)]
pub enum WorkerKind {
    /// A CPU worker running the given kernel on one thread.
    Cpu {
        /// Which alignment kernel this worker runs.
        engine: EngineKind,
    },
    /// A GPU worker driving a simulated device.
    Gpu {
        /// Device description (calibrated Tesla C2050 by default).
        device: DeviceSpec,
    },
}

/// Worker species plus its estimator calibration.
///
/// `prior_scale` skews the rate model the worker *declares* at
/// registration (the master's planning prior) without touching what the
/// worker actually computes or how its true modelled time is derived —
/// `2.0` means "registers as twice as fast as it really is". It exists
/// to inject deliberate miscalibration for testing online
/// re-optimization; the default `1.0` is the honest calibration.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Species and engine configuration.
    pub kind: WorkerKind,
    /// Declared-speed multiplier on the registered rate model (1.0 =
    /// honest).
    pub prior_scale: f64,
}

impl WorkerSpec {
    /// A CPU worker with the given kernel.
    pub fn cpu(engine: EngineKind) -> WorkerSpec {
        WorkerSpec {
            kind: WorkerKind::Cpu { engine },
            prior_scale: 1.0,
        }
    }

    /// A GPU worker driving the given simulated device.
    pub fn gpu(device: DeviceSpec) -> WorkerSpec {
        WorkerSpec {
            kind: WorkerKind::Gpu { device },
            prior_scale: 1.0,
        }
    }

    /// The paper's CPU worker: a SWIPE-class vector kernel. Since the
    /// kernel-dispatch sprint this is the striped engine's tiered
    /// pipeline (byte lanes → 16-bit lanes → scalar) on the fastest
    /// SIMD backend the host supports.
    pub fn cpu_default() -> WorkerSpec {
        WorkerSpec::cpu(EngineKind::Striped)
    }

    /// The paper's GPU worker: a CUDASW++-class device.
    pub fn gpu_default() -> WorkerSpec {
        WorkerSpec::device_class(DeviceClass::C2050)
    }

    /// An accelerator worker from the device zoo.
    pub fn device_class(class: DeviceClass) -> WorkerSpec {
        WorkerSpec::gpu(class.spec())
    }

    /// Builder: declare this worker `scale`× faster than its honest
    /// calibration (deliberate estimator miscalibration).
    pub fn with_prior_scale(mut self, scale: f64) -> WorkerSpec {
        self.prior_scale = if scale.is_finite() && scale > 0.0 {
            scale
        } else {
            1.0
        };
        self
    }

    /// Human-readable description for stats.
    pub fn description(&self) -> String {
        match &self.kind {
            WorkerKind::Cpu { engine } => format!("CPU({engine})"),
            WorkerKind::Gpu { device } => format!("GPU({})", device.name),
        }
    }

    /// Is this a GPU worker?
    pub fn is_gpu(&self) -> bool {
        matches!(self.kind, WorkerKind::Gpu { .. })
    }

    /// The zoo class of this worker's device, when it has one.
    pub fn device_class_of(&self) -> Option<DeviceClass> {
        match &self.kind {
            WorkerKind::Cpu { .. } => None,
            WorkerKind::Gpu { device } => DeviceClass::of_spec(device),
        }
    }

    /// The rate model the master uses to estimate this worker's task
    /// times: the species' honest end-to-end calibration (per device
    /// class for GPUs), skewed by `prior_scale` — peak up, per-task
    /// overhead down, so a scaled worker looks uniformly faster.
    pub fn rate_model(&self) -> WorkerRateModel {
        let honest = match &self.kind {
            WorkerKind::Cpu { .. } => WorkerRateModel::cpu_swipe(),
            WorkerKind::Gpu { device } => WorkerRateModel::for_device(device),
        };
        WorkerRateModel {
            peak_gcups: honest.peak_gcups * self.prior_scale,
            half_length: honest.half_length,
            per_task_overhead: honest.per_task_overhead / self.prior_scale,
        }
    }
}

/// Everything a worker needs to execute tasks.
pub struct WorkerContext {
    /// Worker id assigned at registration.
    pub worker_id: usize,
    /// The database (shared, already encoded).
    pub database: Arc<SequenceSet>,
    /// The query set (shared).
    pub queries: Arc<SequenceSet>,
    /// Scoring parameters.
    pub scheme: ScoringScheme,
    /// Event recorder; disabled by default. When disabled, the per-job
    /// hot path below records nothing, takes no locks and allocates
    /// nothing for tracing.
    pub obs: Obs,
    /// Injected fault behaviour, if this worker is in the fault plan.
    pub fault: Option<WorkerFault>,
}

/// Record one finished job as a dual-clock span on the worker's track.
///
/// `virt_start` is the worker's cumulative modelled busy time before
/// this job — the modelled clock all planned placements are stated in.
///
/// The span echoes the job's lineage (dispatch sequence, plan decision)
/// and the dispatch→exec-start queue-wait gap on both clocks, so the
/// journal's causal chain closes without consumers re-deriving it. The
/// wall gap is real master→worker hand-off latency; the modelled gap is
/// ~0 by construction (a worker's virtual clock only advances while it
/// computes) except when a re-plan hands a task to a worker whose
/// modelled clock already ran past the dispatch stamp.
#[allow(clippy::too_many_arguments)]
fn record_job_span(
    obs: &Obs,
    worker_id: usize,
    job: &Job,
    wall_start: f64,
    wall_dur: f64,
    virt_start: f64,
    modelled: f64,
    cells: u64,
) {
    // Guarded so the disabled path never reaches the format! below.
    if !obs.is_enabled() {
        return;
    }
    let task_id = job.task_id;
    let queue_wait_wall = (wall_start - job.dispatch_wall).max(0.0);
    let queue_wait_modelled = (virt_start - job.dispatch_virt).max(0.0);
    obs.span(
        Track::Worker(worker_id),
        &format!("task-{task_id}"),
        wall_start,
        wall_dur,
        Some((virt_start, modelled)),
        &[
            ("task", task_id as f64),
            ("cells", cells as f64),
            ("seq", job.dispatch_seq as f64),
            ("decision", job.decision as f64),
            ("queue_wait_wall", queue_wait_wall),
            ("queue_wait_modelled", queue_wait_modelled),
        ],
    );
    obs.counter("jobs_completed", 1.0);
    obs.counter("cells_computed", cells as f64);
    // Live registry: job-latency histograms on both clocks plus a
    // running MCUPS gauge, per worker, on the worker's own shard.
    let metrics = obs.metrics().for_shard(worker_id);
    let worker = worker_id.to_string();
    let labels = [("worker", worker.as_str())];
    metrics.observe("job_wall_seconds", &labels, wall_dur);
    metrics.observe("job_modelled_seconds", &labels, modelled);
    metrics.observe("queue_wait_wall_seconds", &labels, queue_wait_wall);
    metrics.observe("queue_wait_modelled_seconds", &labels, queue_wait_modelled);
    metrics.counter("worker_jobs", &labels, 1.0);
    metrics.counter("worker_cells", &labels, cells as f64);
    if wall_dur > 0.0 {
        metrics.gauge("worker_mcups", &labels, cells as f64 / wall_dur / 1e6);
    }
}

/// Record the host phase spans of one CPU job (profile build, DP inner
/// loop, traceback) under its task span.
///
/// Attribution rules: phase spans tile the job sequentially on both
/// clocks. Wall durations are the measured [`PhaseTimings`]; modelled
/// durations split the job's modelled time in the same proportions as
/// the measured wall phases (the rate model prices whole tasks, not
/// phases). When the job ran too fast to measure (wall total ≈ 0),
/// everything modelled is attributed to the DP inner loop.
#[allow(clippy::too_many_arguments)]
fn record_phase_spans(
    obs: &Obs,
    worker_id: usize,
    task_id: usize,
    wall_start: f64,
    virt_start: f64,
    modelled: f64,
    timings: &PhaseTimings,
) {
    let wall_total = timings.total();
    let phases = [
        ("phase_profile_build", timings.profile_build),
        ("phase_dp_inner", timings.dp_inner),
        ("phase_traceback", timings.traceback),
    ];
    let mut wall_at = wall_start;
    let mut virt_at = virt_start;
    for (name, wall_dur) in phases {
        let virt_dur = if wall_total > 0.0 {
            modelled * wall_dur / wall_total
        } else if name == "phase_dp_inner" {
            modelled
        } else {
            0.0
        };
        if wall_dur <= 0.0 && virt_dur <= 0.0 {
            continue;
        }
        obs.span(
            Track::Worker(worker_id),
            name,
            wall_at,
            wall_dur,
            Some((virt_at, virt_dur)),
            &[("task", task_id as f64)],
        );
        wall_at += wall_dur;
        virt_at += virt_dur;
    }
}

/// Export one job's tier-resolution counts and the profile-cache state
/// to the live metrics registry (no-op when tracing is disabled).
fn record_kernel_metrics(obs: &Obs, worker_id: usize, stats: &TierStats, cache: &ProfileCache) {
    if !obs.is_enabled() {
        return;
    }
    let metrics = obs.metrics().for_shard(worker_id);
    let worker = worker_id.to_string();
    let labels = [("worker", worker.as_str())];
    metrics.counter("kernel_subjects", &labels, stats.subjects as f64);
    metrics.counter("kernel_byte_resolved", &labels, stats.byte_resolved as f64);
    metrics.counter("kernel_escalated_16", &labels, stats.escalated_16 as f64);
    metrics.counter(
        "kernel_escalated_scalar",
        &labels,
        stats.escalated_scalar as f64,
    );
    // Cumulative gauges: the cache counts since worker start.
    metrics.gauge("profile_cache_hits", &labels, cache.hits() as f64);
    metrics.gauge("profile_cache_misses", &labels, cache.misses() as f64);
}

/// The crash/straggler knobs a worker consults per job, pre-split from
/// the fault enum so the healthy path pays a single `None` check.
struct FaultKnobs {
    crash_after: Option<usize>,
    crash_notify: bool,
    straggle_ms: u64,
    straggle_factor: f64,
}

impl FaultKnobs {
    fn from(fault: Option<WorkerFault>) -> FaultKnobs {
        let mut knobs = FaultKnobs {
            crash_after: None,
            crash_notify: false,
            straggle_ms: 0,
            straggle_factor: 1.0,
        };
        match fault {
            Some(WorkerFault::Crash { after_jobs, notify }) => {
                knobs.crash_after = Some(after_jobs);
                knobs.crash_notify = notify;
            }
            Some(WorkerFault::Straggler { delay_ms, factor }) => {
                knobs.straggle_ms = delay_ms;
                knobs.straggle_factor = factor;
            }
            _ => {}
        }
        knobs
    }

    /// Apply the pre-job fault behaviour. Returns `false` when the
    /// worker must die instead of executing `job`.
    fn pre_job(
        &self,
        jobs_done: usize,
        job: Job,
        worker_id: usize,
        obs: &Obs,
        results: &Sender<WorkerMsg>,
    ) -> bool {
        if self.crash_after == Some(jobs_done) {
            obs.instant(
                Track::Faults,
                "worker_crash",
                &[
                    ("worker", worker_id as f64),
                    ("task", job.task_id as f64),
                    ("notified", if self.crash_notify { 1.0 } else { 0.0 }),
                ],
            );
            obs.counter("faults_injected", 1.0);
            if self.crash_notify {
                let _ = results.send(WorkerMsg::Failed(WorkerFailure {
                    worker_id,
                    reason: FailureReason::Crash,
                    in_flight: Some(job.task_id),
                }));
            }
            return false;
        }
        if self.straggle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.straggle_ms));
        }
        true
    }
}

/// Run a worker loop until the job channel closes, registering with the
/// master first when a registration channel is supplied (the paper's
/// Figure 6 "Register with master" step). This is the body of each
/// worker thread; it is public so tests can drive workers synchronously.
pub fn worker_loop_registered(
    spec: WorkerSpec,
    ctx: WorkerContext,
    registration: Option<Sender<crate::messages::Registration>>,
    jobs: Receiver<Job>,
    results: Sender<WorkerMsg>,
) {
    if matches!(ctx.fault, Some(WorkerFault::CrashBeforeRegistration)) {
        ctx.obs.instant(
            Track::Faults,
            "worker_crash_before_registration",
            &[("worker", ctx.worker_id as f64)],
        );
        ctx.obs.counter("faults_injected", 1.0);
        return; // dies without saying hello
    }
    if let Some(reg) = registration {
        let hello = crate::messages::Registration {
            worker_id: ctx.worker_id,
            description: spec.description(),
            is_gpu: spec.is_gpu(),
            rate_model: spec.rate_model(),
        };
        if reg.send(hello).is_err() {
            return; // master went away before registration
        }
    }
    worker_loop(spec, ctx, jobs, results)
}

/// Run a worker loop until the job channel closes (no registration
/// step; used by tests that drive workers directly).
pub fn worker_loop(
    spec: WorkerSpec,
    ctx: WorkerContext,
    jobs: Receiver<Job>,
    results: Sender<WorkerMsg>,
) {
    if matches!(ctx.fault, Some(WorkerFault::CrashBeforeRegistration)) {
        return;
    }
    let knobs = FaultKnobs::from(ctx.fault);
    let mut jobs_done = 0usize;
    match spec.kind {
        WorkerKind::Cpu { engine } => {
            let engine = engine.build();
            let db_refs: Vec<&[u8]> = ctx.database.iter().map(|s| s.codes()).collect();
            let model = WorkerRateModel::cpu_swipe();
            // Per-worker profile cache: jobs that share a query (chunked
            // databases, repeated searches) reuse the built profiles, so
            // profile_build collapses to a lookup after the first job.
            let profile_cache = ProfileCache::default();
            let mut virt_clock = 0.0;
            for job in jobs.iter() {
                if !knobs.pre_job(jobs_done, job, ctx.worker_id, &ctx.obs, &results) {
                    return;
                }
                let query = ctx
                    .queries
                    .get(job.query_index)
                    .expect("query index in range");
                let wall_start = ctx.obs.now();
                let start = Instant::now();
                // The cached path is the default: it serves profiles
                // from the per-worker cache and reports phase timings
                // plus tier-resolution counts at the cost of two clock
                // reads per job. Scores are identical to `score_many`.
                let (scores, timings, tier_stats) = engine.score_many_cached(
                    query.codes(),
                    &db_refs,
                    &ctx.scheme,
                    Some(&profile_cache),
                );
                let timings = ctx.obs.is_profiling().then_some(timings);
                let wall = start.elapsed().as_secs_f64();
                let cells = query.len() as u64 * ctx.database.total_residues();
                let modelled = model.task_seconds(query.len(), ctx.database.total_residues())
                    * knobs.straggle_factor;
                record_job_span(
                    &ctx.obs,
                    ctx.worker_id,
                    &job,
                    wall_start,
                    wall,
                    virt_clock,
                    modelled,
                    cells,
                );
                if let Some(timings) = &timings {
                    record_phase_spans(
                        &ctx.obs,
                        ctx.worker_id,
                        job.task_id,
                        wall_start,
                        virt_clock,
                        modelled,
                        timings,
                    );
                }
                record_kernel_metrics(&ctx.obs, ctx.worker_id, &tier_stats, &profile_cache);
                virt_clock += modelled;
                jobs_done += 1;
                let send = results.send(WorkerMsg::Completed(JobResult {
                    task_id: job.task_id,
                    worker_id: ctx.worker_id,
                    scores,
                    wall_seconds: wall,
                    modelled_seconds: modelled,
                    cells,
                }));
                if send.is_err() {
                    break; // master went away
                }
            }
        }
        WorkerKind::Gpu { device } => {
            let mut device = GpuDevice::new(device);
            device.attach_obs(ctx.obs.clone(), ctx.worker_id);
            if let Some(WorkerFault::DeviceFault { after_kernels }) = ctx.fault {
                device.inject_fault_after_kernels(after_kernels);
            }
            let mut virt_clock = 0.0;
            // Databases that fit stay resident across tasks (the
            // CUDASW++ pattern); oversized ones fall back to the
            // chunked streaming path per kernel. The fallback re-streams
            // (and re-splits) the database for every task — the same
            // cost the real tools pay when a database exceeds device
            // memory, since chunks must be re-uploaded per kernel pass
            // anyway; only the host-side split could be cached.
            let resident = device.upload(&ctx.database, true).ok();
            for job in jobs.iter() {
                if !knobs.pre_job(jobs_done, job, ctx.worker_id, &ctx.obs, &results) {
                    return;
                }
                let query = ctx
                    .queries
                    .get(job.query_index)
                    .expect("query index in range");
                let wall_start = ctx.obs.now();
                let start = Instant::now();
                // Tag the device's stage spans (H2D/kernel/D2H) with the
                // task they serve: the causal link from dispatch into
                // device activity.
                device.set_lineage(Some(job.task_id));
                let computed = match &resident {
                    Some(db) => device
                        .try_search(query.codes(), db, &ctx.scheme)
                        .map(|r| (r.scores, r.kernel_seconds)),
                    None => device.check_fault().map(|()| {
                        let r = swdual_gpusim::chunked::overlapped_search(
                            &mut device,
                            &ctx.database,
                            query.codes(),
                            &ctx.scheme,
                            true,
                        )
                        .expect("chunked search handles oversized databases");
                        (r.scores, r.seconds)
                    }),
                };
                let (scores, modelled) = match computed {
                    Ok((scores, modelled)) => (scores, modelled * knobs.straggle_factor),
                    Err(fault) => {
                        // The board died under us: report and exit. The
                        // device itself already logged the fault event.
                        let _ = results.send(WorkerMsg::Failed(WorkerFailure {
                            worker_id: ctx.worker_id,
                            reason: FailureReason::DeviceFault {
                                after_kernels: fault.after_kernels,
                            },
                            in_flight: Some(job.task_id),
                        }));
                        return;
                    }
                };
                device.set_lineage(None);
                let wall = start.elapsed().as_secs_f64();
                let cells = query.len() as u64 * ctx.database.total_residues();
                record_job_span(
                    &ctx.obs,
                    ctx.worker_id,
                    &job,
                    wall_start,
                    wall,
                    virt_clock,
                    modelled,
                    cells,
                );
                virt_clock += modelled;
                jobs_done += 1;
                let send = results.send(WorkerMsg::Completed(JobResult {
                    task_id: job.task_id,
                    worker_id: ctx.worker_id,
                    scores,
                    wall_seconds: wall,
                    modelled_seconds: modelled,
                    cells,
                }));
                if send.is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use swdual_align::scalar::gotoh_score;
    use swdual_bio::seq::Sequence;
    use swdual_bio::Alphabet;

    fn tiny_db() -> SequenceSet {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, t) in ["MKVLATGGAR", "GGARMKVLAT", "WWWWWWW", "MKV"]
            .iter()
            .enumerate()
        {
            set.push(
                Sequence::from_text(format!("d{i}"), Alphabet::Protein, t.as_bytes()).unwrap(),
            )
            .unwrap();
        }
        set
    }

    fn tiny_queries() -> SequenceSet {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, t) in ["MKVLAT", "WWWW"].iter().enumerate() {
            set.push(
                Sequence::from_text(format!("q{i}"), Alphabet::Protein, t.as_bytes()).unwrap(),
            )
            .unwrap();
        }
        set
    }

    fn run_msgs(spec: WorkerSpec, fault: Option<WorkerFault>) -> Vec<WorkerMsg> {
        let (job_tx, job_rx) = channel::unbounded();
        let (res_tx, res_rx) = channel::unbounded();
        let ctx = WorkerContext {
            worker_id: 3,
            database: Arc::new(tiny_db()),
            queries: Arc::new(tiny_queries()),
            scheme: ScoringScheme::protein_default(),
            obs: Obs::disabled(),
            fault,
        };
        job_tx.send(Job::new(0, 0)).unwrap();
        job_tx.send(Job::new(1, 1)).unwrap();
        drop(job_tx);
        worker_loop(spec, ctx, job_rx, res_tx);
        res_rx.iter().collect()
    }

    fn run_one(spec: WorkerSpec) -> Vec<JobResult> {
        run_msgs(spec, None)
            .into_iter()
            .map(|m| match m {
                WorkerMsg::Completed(r) => r,
                WorkerMsg::Failed(f) => panic!("unexpected failure: {f:?}"),
            })
            .collect()
    }

    fn expected_scores(query_index: usize) -> Vec<i32> {
        let db = tiny_db();
        let q = tiny_queries();
        let scheme = ScoringScheme::protein_default();
        db.iter()
            .map(|d| gotoh_score(q.get(query_index).unwrap().codes(), d.codes(), &scheme))
            .collect()
    }

    #[test]
    fn cpu_worker_computes_exact_scores() {
        let results = run_one(WorkerSpec::cpu_default());
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.worker_id, 3);
            assert_eq!(r.scores, expected_scores(r.task_id));
            assert!(r.cells > 0);
            assert!(r.modelled_seconds > 0.0);
        }
    }

    #[test]
    fn gpu_worker_computes_exact_scores() {
        let results = run_one(WorkerSpec::gpu_default());
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.scores, expected_scores(r.task_id));
            // Virtual kernel time is tiny but positive.
            assert!(r.modelled_seconds > 0.0);
        }
    }

    #[test]
    fn gpu_is_modelled_faster_than_cpu_for_long_queries() {
        let spec_descr = WorkerSpec::gpu_default().description();
        assert!(spec_descr.contains("GPU"));
        let cpu = WorkerSpec::cpu_default().rate_model();
        let gpu = WorkerSpec::gpu_default().rate_model();
        assert!(gpu.task_seconds(5000, 1_000_000) < cpu.task_seconds(5000, 1_000_000));
    }

    #[test]
    fn every_zoo_class_worker_computes_exact_scores() {
        for class in DeviceClass::ALL {
            let spec = WorkerSpec::device_class(class);
            assert!(spec.is_gpu());
            assert_eq!(spec.device_class_of(), Some(class));
            let results = run_one(spec);
            assert_eq!(results.len(), 2, "class {class}");
            for r in &results {
                assert_eq!(r.scores, expected_scores(r.task_id), "class {class}");
                assert!(r.modelled_seconds > 0.0);
            }
        }
        assert_eq!(WorkerSpec::cpu_default().device_class_of(), None);
    }

    #[test]
    fn prior_scale_skews_declared_model_not_results() {
        let honest = WorkerSpec::cpu_default();
        let bragger = WorkerSpec::cpu_default().with_prior_scale(2.0);
        let t_honest = honest.rate_model().task_seconds(500, 10_000_000);
        let t_bragger = bragger.rate_model().task_seconds(500, 10_000_000);
        assert!(
            (t_bragger - t_honest / 2.0).abs() < 1e-12 * t_honest,
            "2x prior scale must halve every estimate: {t_bragger} vs {t_honest}"
        );
        // Results and true modelled times are untouched.
        let h = run_one(honest);
        let b = run_one(bragger);
        assert_eq!(h.len(), b.len());
        for (x, y) in h.iter().zip(&b) {
            assert_eq!(x.scores, y.scores);
            assert_eq!(x.modelled_seconds, y.modelled_seconds);
        }
        // Degenerate scales fall back to honest.
        assert_eq!(
            WorkerSpec::cpu_default().with_prior_scale(0.0).prior_scale,
            1.0
        );
        assert_eq!(
            WorkerSpec::cpu_default()
                .with_prior_scale(f64::NAN)
                .prior_scale,
            1.0
        );
    }

    #[test]
    fn gpu_worker_falls_back_to_chunked_search_when_db_oversized() {
        // A device with 25 bytes of memory cannot hold the 30-residue
        // tiny_db; the worker must stream it in chunks and still return
        // exact scores.
        let spec = WorkerSpec::gpu(DeviceSpec::toy(25));
        let results = run_one(spec);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.scores, expected_scores(r.task_id));
            assert!(r.modelled_seconds > 0.0);
        }
    }

    #[test]
    fn all_cpu_engines_work_as_workers() {
        for engine in EngineKind::ALL {
            let results = run_one(WorkerSpec::cpu(engine));
            assert_eq!(results.len(), 2, "engine {engine}");
            for r in &results {
                assert_eq!(r.scores, expected_scores(r.task_id), "engine {engine}");
            }
        }
    }

    #[test]
    fn notified_crash_reports_its_in_flight_task() {
        let msgs = run_msgs(
            WorkerSpec::cpu_default(),
            Some(WorkerFault::Crash {
                after_jobs: 1,
                notify: true,
            }),
        );
        assert_eq!(msgs.len(), 2);
        assert!(matches!(&msgs[0], WorkerMsg::Completed(r) if r.task_id == 0));
        match &msgs[1] {
            WorkerMsg::Failed(f) => {
                assert_eq!(f.worker_id, 3);
                assert_eq!(f.reason, FailureReason::Crash);
                assert_eq!(f.in_flight, Some(1));
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn silent_crash_just_stops() {
        let msgs = run_msgs(
            WorkerSpec::cpu_default(),
            Some(WorkerFault::Crash {
                after_jobs: 0,
                notify: false,
            }),
        );
        assert!(msgs.is_empty());
    }

    #[test]
    fn device_fault_reports_and_stops() {
        let msgs = run_msgs(
            WorkerSpec::gpu_default(),
            Some(WorkerFault::DeviceFault { after_kernels: 1 }),
        );
        assert_eq!(msgs.len(), 2);
        assert!(matches!(&msgs[0], WorkerMsg::Completed(r) if r.task_id == 0));
        match &msgs[1] {
            WorkerMsg::Failed(f) => {
                assert_eq!(f.reason, FailureReason::DeviceFault { after_kernels: 1 });
                assert_eq!(f.in_flight, Some(1));
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn device_fault_is_ignored_by_cpu_workers() {
        let msgs = run_msgs(
            WorkerSpec::cpu_default(),
            Some(WorkerFault::DeviceFault { after_kernels: 0 }),
        );
        assert_eq!(msgs.len(), 2, "CPU worker has no device to fail");
    }

    #[test]
    fn straggler_computes_correct_scores_with_inflated_model_times() {
        let healthy = run_one(WorkerSpec::cpu_default());
        let msgs = run_msgs(
            WorkerSpec::cpu_default(),
            Some(WorkerFault::Straggler {
                delay_ms: 1,
                factor: 3.0,
            }),
        );
        assert_eq!(msgs.len(), 2);
        for (m, h) in msgs.iter().zip(&healthy) {
            match m {
                WorkerMsg::Completed(r) => {
                    assert_eq!(r.scores, h.scores, "straggling must not change scores");
                    assert!(
                        (r.modelled_seconds - 3.0 * h.modelled_seconds).abs()
                            <= 1e-9 * h.modelled_seconds
                    );
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
    }

    #[test]
    fn profiled_cpu_worker_emits_phase_spans_that_tile_the_task() {
        let (job_tx, job_rx) = channel::unbounded();
        let (res_tx, res_rx) = channel::unbounded();
        let obs = Obs::enabled();
        obs.set_profiling(true);
        let ctx = WorkerContext {
            worker_id: 0,
            database: Arc::new(tiny_db()),
            queries: Arc::new(tiny_queries()),
            scheme: ScoringScheme::protein_default(),
            obs: obs.clone(),
            fault: None,
        };
        job_tx.send(Job::new(0, 0)).unwrap();
        drop(job_tx);
        worker_loop(WorkerSpec::cpu(EngineKind::Striped), ctx, job_rx, res_tx);
        let results: Vec<WorkerMsg> = res_rx.iter().collect();
        assert_eq!(results.len(), 1);

        let events = obs.events();
        let task = events.iter().find(|e| e.name == "task-0").expect("task");
        let phases: Vec<_> = events.iter().filter(|e| e.is_profile_detail()).collect();
        assert!(!phases.is_empty(), "profiling on must emit phase spans");
        assert!(phases.iter().any(|e| e.name == "phase_dp_inner"));
        // Phase modelled durations tile the task's modelled time.
        let phase_virt: f64 = phases.iter().filter_map(|e| e.virt_dur).sum();
        assert!(
            (phase_virt - task.virt_dur.unwrap()).abs() <= 1e-9 * task.virt_dur.unwrap(),
            "phases {phase_virt} vs task {:?}",
            task.virt_dur
        );
        // And each phase names its task.
        for p in &phases {
            assert!(p.args.iter().any(|(k, v)| k == "task" && *v == 0.0));
        }
    }

    #[test]
    fn unprofiled_worker_emits_no_phase_spans() {
        let (job_tx, job_rx) = channel::unbounded();
        let (res_tx, res_rx) = channel::unbounded();
        let obs = Obs::enabled(); // tracing on, profiling off
        let ctx = WorkerContext {
            worker_id: 0,
            database: Arc::new(tiny_db()),
            queries: Arc::new(tiny_queries()),
            scheme: ScoringScheme::protein_default(),
            obs: obs.clone(),
            fault: None,
        };
        job_tx.send(Job::new(0, 0)).unwrap();
        drop(job_tx);
        worker_loop(WorkerSpec::cpu_default(), ctx, job_rx, res_tx);
        let _ = res_rx.iter().count();
        assert!(obs.events().iter().all(|e| !e.is_profile_detail()));
    }

    #[test]
    fn repeated_queries_hit_the_profile_cache_and_export_tier_metrics() {
        let (job_tx, job_rx) = channel::unbounded();
        let (res_tx, res_rx) = channel::unbounded();
        let obs = Obs::enabled();
        let ctx = WorkerContext {
            worker_id: 7,
            database: Arc::new(tiny_db()),
            queries: Arc::new(tiny_queries()),
            scheme: ScoringScheme::protein_default(),
            obs: obs.clone(),
            fault: None,
        };
        // Three jobs, two of them for the same query: the second and
        // third lookups of query 0's profiles must be cache hits.
        for (task_id, query_index) in [(0, 0), (1, 0), (2, 0)] {
            job_tx.send(Job::new(task_id, query_index)).unwrap();
        }
        drop(job_tx);
        worker_loop(WorkerSpec::cpu_default(), ctx, job_rx, res_tx);
        let results: Vec<WorkerMsg> = res_rx.iter().collect();
        assert_eq!(results.len(), 3);
        for m in &results {
            match m {
                WorkerMsg::Completed(r) => assert_eq!(r.scores, expected_scores(0)),
                other => panic!("expected completion, got {other:?}"),
            }
        }
        let snap = obs.metrics().snapshot();
        let labels = [("worker", "7")];
        let subjects = snap.counter_value("kernel_subjects", &labels).unwrap();
        assert_eq!(subjects, (3 * tiny_db().len()) as f64);
        let byte = snap
            .counter_value("kernel_byte_resolved", &labels)
            .unwrap_or(0.0);
        let esc16 = snap
            .counter_value("kernel_escalated_16", &labels)
            .unwrap_or(0.0);
        let scalar = snap
            .counter_value("kernel_escalated_scalar", &labels)
            .unwrap_or(0.0);
        assert_eq!(byte + esc16 + scalar, subjects, "tiers partition subjects");
        assert!(
            snap.gauge_value("profile_cache_hits", &labels).unwrap() >= 2.0,
            "jobs 2 and 3 reuse job 1's profiles"
        );
        assert_eq!(
            snap.gauge_value("profile_cache_misses", &labels).unwrap(),
            1.0
        );
    }

    #[test]
    fn crash_before_registration_sends_nothing() {
        let msgs = run_msgs(
            WorkerSpec::cpu_default(),
            Some(WorkerFault::CrashBeforeRegistration),
        );
        assert!(msgs.is_empty());
    }
}
