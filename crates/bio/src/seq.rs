//! Owned sequence records and sets of records.

use crate::alphabet::Alphabet;
use crate::error::BioError;
use serde::{Deserialize, Serialize};

/// One biological sequence record: identifier, free-text description and
/// the residues *encoded* with [`Alphabet::encode`].
///
/// Encoded storage is deliberate: every downstream consumer (the DP
/// kernels, the GPU simulator, query profiles) wants small-integer
/// residues, and encoding once at load time keeps the inner loops free of
/// byte translation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequence {
    /// Record identifier (the first token of the FASTA header).
    pub id: String,
    /// Remainder of the FASTA header, may be empty.
    pub description: String,
    /// The alphabet `residues` is encoded in.
    pub alphabet: Alphabet,
    /// Encoded residues (values `< alphabet.size()`).
    pub residues: Vec<u8>,
}

impl Sequence {
    /// Build a sequence from ASCII residue text, strictly rejecting
    /// residues outside `alphabet`.
    pub fn from_text(
        id: impl Into<String>,
        alphabet: Alphabet,
        text: &[u8],
    ) -> Result<Self, BioError> {
        Ok(Sequence {
            id: id.into(),
            description: String::new(),
            alphabet,
            residues: alphabet.encode(text)?,
        })
    }

    /// Build a sequence from ASCII residue text, mapping unknown residues
    /// to the alphabet wildcard.
    pub fn from_text_lossy(id: impl Into<String>, alphabet: Alphabet, text: &[u8]) -> Self {
        Sequence {
            id: id.into(),
            description: String::new(),
            alphabet,
            residues: alphabet.encode_lossy(text),
        }
    }

    /// Build a sequence directly from already-encoded residues.
    ///
    /// # Panics
    /// Panics (in debug builds) if any code is out of range for `alphabet`.
    pub fn from_codes(id: impl Into<String>, alphabet: Alphabet, residues: Vec<u8>) -> Self {
        debug_assert!(
            residues.iter().all(|&c| (c as usize) < alphabet.size()),
            "residue code out of range for {alphabet:?}"
        );
        Sequence {
            id: id.into(),
            description: String::new(),
            alphabet,
            residues,
        }
    }

    /// Attach a description (builder style).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Number of residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when the sequence holds no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Decode back to ASCII residue text.
    pub fn text(&self) -> String {
        self.alphabet.decode(&self.residues)
    }

    /// The encoded residues as a slice (what the kernels consume).
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.residues
    }
}

/// An ordered collection of sequences sharing one alphabet — a query set
/// or a database in the paper's terminology (§II-C: queries `q1..qm`,
/// database `d1..dn`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceSet {
    /// Common alphabet of all member sequences.
    pub alphabet: Alphabet,
    sequences: Vec<Sequence>,
    /// Total residue count, maintained incrementally (databases are large;
    /// the master needs this to size tasks without rescanning).
    total_residues: u64,
}

impl SequenceSet {
    /// Create an empty set over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        SequenceSet {
            alphabet,
            sequences: Vec::new(),
            total_residues: 0,
        }
    }

    /// Create a set from sequences; all must share `alphabet`.
    pub fn from_sequences(alphabet: Alphabet, sequences: Vec<Sequence>) -> Result<Self, BioError> {
        let mut set = SequenceSet::new(alphabet);
        for s in sequences {
            set.push(s)?;
        }
        Ok(set)
    }

    /// Append a sequence. Fails if its alphabet differs from the set's.
    pub fn push(&mut self, sequence: Sequence) -> Result<(), BioError> {
        if sequence.alphabet != self.alphabet {
            return Err(BioError::MalformedFasta(format!(
                "sequence {:?} has alphabet {:?}, set expects {:?}",
                sequence.id, sequence.alphabet, self.alphabet
            )));
        }
        self.total_residues += sequence.len() as u64;
        self.sequences.push(sequence);
        Ok(())
    }

    /// Number of sequences in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True when the set holds no sequences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total number of residues over all member sequences.
    #[inline]
    pub fn total_residues(&self) -> u64 {
        self.total_residues
    }

    /// Access a member by index.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&Sequence> {
        self.sequences.get(index)
    }

    /// Iterate over members in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Sequence> {
        self.sequences.iter()
    }

    /// Borrow all members as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Consume the set and return the member vector.
    pub fn into_sequences(self) -> Vec<Sequence> {
        self.sequences
    }

    /// Length of the shortest member, `None` when empty.
    pub fn min_len(&self) -> Option<usize> {
        self.sequences.iter().map(Sequence::len).min()
    }

    /// Length of the longest member, `None` when empty.
    pub fn max_len(&self) -> Option<usize> {
        self.sequences.iter().map(Sequence::len).max()
    }

    /// Mean member length (0.0 when empty).
    pub fn mean_len(&self) -> f64 {
        if self.sequences.is_empty() {
            0.0
        } else {
            self.total_residues as f64 / self.sequences.len() as f64
        }
    }

    /// Sort members by descending length. CUDASW++-style GPU batch kernels
    /// want equal-length work grouped together; the SQB writer offers the
    /// same option.
    pub fn sort_by_length_desc(&mut self) {
        self.sequences.sort_by_key(|s| std::cmp::Reverse(s.len()));
    }
}

impl<'a> IntoIterator for &'a SequenceSet {
    type Item = &'a Sequence;
    type IntoIter = std::slice::Iter<'a, Sequence>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prot(id: &str, text: &[u8]) -> Sequence {
        Sequence::from_text(id, Alphabet::Protein, text).unwrap()
    }

    #[test]
    fn sequence_roundtrips_text() {
        let s = prot("q1", b"MKVLATGGAR");
        assert_eq!(s.len(), 10);
        assert_eq!(s.text(), "MKVLATGGAR");
        assert!(!s.is_empty());
    }

    #[test]
    fn from_codes_accepts_valid_codes() {
        let s = Sequence::from_codes("x", Alphabet::Dna, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.text(), "ACGTN");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn from_codes_panics_on_out_of_range_in_debug() {
        let _ = Sequence::from_codes("x", Alphabet::Dna, vec![0, 99]);
    }

    #[test]
    fn set_tracks_total_residues() {
        let mut set = SequenceSet::new(Alphabet::Protein);
        set.push(prot("a", b"MKV")).unwrap();
        set.push(prot("b", b"MKVLA")).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_residues(), 8);
        assert_eq!(set.min_len(), Some(3));
        assert_eq!(set.max_len(), Some(5));
        assert!((set.mean_len() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn set_rejects_mixed_alphabets() {
        let mut set = SequenceSet::new(Alphabet::Protein);
        let dna = Sequence::from_text("d", Alphabet::Dna, b"ACGT").unwrap();
        assert!(set.push(dna).is_err());
    }

    #[test]
    fn sort_by_length_desc_orders_members() {
        let mut set = SequenceSet::from_sequences(
            Alphabet::Protein,
            vec![
                prot("short", b"MK"),
                prot("long", b"MKVLATGG"),
                prot("mid", b"MKVL"),
            ],
        )
        .unwrap();
        set.sort_by_length_desc();
        let lens: Vec<usize> = set.iter().map(Sequence::len).collect();
        assert_eq!(lens, vec![8, 4, 2]);
        // Total residues unaffected by sorting.
        assert_eq!(set.total_residues(), 14);
    }

    #[test]
    fn empty_set_statistics() {
        let set = SequenceSet::new(Alphabet::Dna);
        assert!(set.is_empty());
        assert_eq!(set.min_len(), None);
        assert_eq!(set.max_len(), None);
        assert_eq!(set.mean_len(), 0.0);
    }

    #[test]
    fn builder_description() {
        let s = prot("id", b"MK").with_description("test protein");
        assert_eq!(s.description, "test protein");
    }
}
