//! Genetic-code translation: DNA/RNA → protein, six-frame translation.
//!
//! Database search tools in the SWIPE/BLAST family accept nucleotide
//! inputs and search them in translated form (blastx/tblastn modes);
//! this module supplies that substrate: the standard genetic code,
//! reverse complements, and six-frame translation of encoded
//! nucleotide sequences into encoded protein sequences.

use crate::alphabet::Alphabet;
use crate::error::BioError;
use crate::seq::Sequence;

/// The standard genetic code, indexed by `base1*16 + base2*4 + base3`
/// with bases in the canonical `ACGT`/`ACGU` encoding (codes 0–3).
/// Values are ASCII amino-acid letters; `*` is the stop codon.
const STANDARD_CODE: [u8; 64] = [
    // AA? : AAA AAC AAG AAU
    b'K', b'N', b'K', b'N', // AA*
    b'T', b'T', b'T', b'T', // AC*
    b'R', b'S', b'R', b'S', // AG*
    b'I', b'I', b'M', b'I', // AU*
    b'Q', b'H', b'Q', b'H', // CA*
    b'P', b'P', b'P', b'P', // CC*
    b'R', b'R', b'R', b'R', // CG*
    b'L', b'L', b'L', b'L', // CU*
    b'E', b'D', b'E', b'D', // GA*
    b'A', b'A', b'A', b'A', // GC*
    b'G', b'G', b'G', b'G', // GG*
    b'V', b'V', b'V', b'V', // GU*
    b'*', b'Y', b'*', b'Y', // UA*
    b'S', b'S', b'S', b'S', // UC*
    b'*', b'C', b'W', b'C', // UG*
    b'L', b'F', b'L', b'F', // UU*
];

/// Translate one codon (three nucleotide codes 0–4) to an ASCII amino
/// acid. Codons containing the ambiguity code `N` translate to `X`.
#[inline]
pub fn translate_codon(b1: u8, b2: u8, b3: u8) -> u8 {
    if b1 > 3 || b2 > 3 || b3 > 3 {
        return b'X';
    }
    STANDARD_CODE[(b1 as usize) * 16 + (b2 as usize) * 4 + b3 as usize]
}

/// Complement of one nucleotide code (A↔T/U, C↔G, N↔N).
#[inline]
pub fn complement_code(code: u8) -> u8 {
    match code {
        0 => 3, // A -> T/U
        1 => 2, // C -> G
        2 => 1, // G -> C
        3 => 0, // T/U -> A
        other => other,
    }
}

/// Reverse complement of an encoded nucleotide sequence.
pub fn reverse_complement(codes: &[u8]) -> Vec<u8> {
    codes.iter().rev().map(|&c| complement_code(c)).collect()
}

/// Translate an encoded nucleotide sequence in one reading frame
/// (`frame` 0–2 = forward offsets, 3–5 = reverse-complement offsets)
/// into an *encoded protein* sequence. Stop codons become the protein
/// `*` residue (code 23), so downstream alignment sees them (BLOSUM62
/// scores `*` very negatively, which is the desired behaviour).
pub fn translate_frame(codes: &[u8], frame: usize) -> Result<Vec<u8>, BioError> {
    if frame > 5 {
        return Err(BioError::MalformedFasta(format!(
            "reading frame {frame} out of range 0..=5"
        )));
    }
    let strand: Vec<u8> = if frame < 3 {
        codes.to_vec()
    } else {
        reverse_complement(codes)
    };
    let offset = frame % 3;
    let mut out = Vec::with_capacity(strand.len().saturating_sub(offset) / 3);
    let mut i = offset;
    while i + 3 <= strand.len() {
        let aa = translate_codon(strand[i], strand[i + 1], strand[i + 2]);
        let code = Alphabet::Protein
            .encode_byte(aa)
            .expect("genetic code yields protein letters");
        out.push(code);
        i += 3;
    }
    Ok(out)
}

/// Six-frame translation of a nucleotide [`Sequence`]: returns six
/// protein sequences labelled `<id>/frame{0..5}` (frames 3–5 on the
/// reverse strand).
pub fn six_frame(seq: &Sequence) -> Result<Vec<Sequence>, BioError> {
    if seq.alphabet == Alphabet::Protein {
        return Err(BioError::MalformedFasta(
            "cannot translate a protein sequence".into(),
        ));
    }
    (0..6)
        .map(|frame| {
            let codes = translate_frame(seq.codes(), frame)?;
            Ok(
                Sequence::from_codes(format!("{}/frame{frame}", seq.id), Alphabet::Protein, codes)
                    .with_description(seq.description.clone()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(t: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(t).unwrap()
    }

    #[test]
    fn start_and_stop_codons() {
        // ATG -> M, TAA/TAG/TGA -> *.
        let atg = dna(b"ATG");
        assert_eq!(translate_codon(atg[0], atg[1], atg[2]), b'M');
        for stop in [&b"TAA"[..], b"TAG", b"TGA"] {
            let c = dna(stop);
            assert_eq!(translate_codon(c[0], c[1], c[2]), b'*', "{stop:?}");
        }
    }

    #[test]
    fn known_peptide_translates() {
        // ATG AAA TGG GTT TTT TAA -> M K W V F *
        let seq = dna(b"ATGAAATGGGTTTTTTAA");
        let prot = translate_frame(&seq, 0).unwrap();
        assert_eq!(Alphabet::Protein.decode(&prot), "MKWVF*");
    }

    #[test]
    fn frames_shift_the_grid() {
        let seq = dna(b"AATGAAATGG"); // frame 1 starts at the ATG
        let f0 = translate_frame(&seq, 0).unwrap();
        let f1 = translate_frame(&seq, 1).unwrap();
        let f2 = translate_frame(&seq, 2).unwrap();
        assert_eq!(f0.len(), 3);
        assert_eq!(f1.len(), 3);
        assert_eq!(f2.len(), 2);
        assert_eq!(Alphabet::Protein.decode(&f1)[..2], *"MK");
    }

    #[test]
    fn reverse_frames_use_the_complement() {
        // Reverse complement of CAT is ATG -> frame 3 reads M.
        let seq = dna(b"CAT");
        let f3 = translate_frame(&seq, 3).unwrap();
        assert_eq!(Alphabet::Protein.decode(&f3), "M");
    }

    #[test]
    fn reverse_complement_involution() {
        let seq = dna(b"ACGTTGCAN");
        assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
    }

    #[test]
    fn ambiguous_bases_translate_to_x() {
        let seq = dna(b"ANG");
        let p = translate_frame(&seq, 0).unwrap();
        assert_eq!(Alphabet::Protein.decode(&p), "X");
    }

    #[test]
    fn rna_uses_the_same_code() {
        let seq = Alphabet::Rna.encode(b"AUGUUUUAA").unwrap();
        let p = translate_frame(&seq, 0).unwrap();
        assert_eq!(Alphabet::Protein.decode(&p), "MF*");
    }

    #[test]
    fn six_frame_yields_six_labelled_proteins() {
        let seq = Sequence::from_text("gene1", Alphabet::Dna, b"ATGAAATGGGTTTTTTAA").unwrap();
        let frames = six_frame(&seq).unwrap();
        assert_eq!(frames.len(), 6);
        assert_eq!(frames[0].id, "gene1/frame0");
        assert_eq!(frames[0].text(), "MKWVF*");
        assert!(frames.iter().all(|f| f.alphabet == Alphabet::Protein));
    }

    #[test]
    fn translating_protein_fails() {
        let seq = Sequence::from_text("p", Alphabet::Protein, b"MKV").unwrap();
        assert!(six_frame(&seq).is_err());
        assert!(translate_frame(&[0, 1, 2], 9).is_err());
    }

    #[test]
    fn code_covers_all_20_amino_acids() {
        let mut seen = std::collections::HashSet::new();
        for &aa in STANDARD_CODE.iter() {
            seen.insert(aa);
        }
        // 20 amino acids + stop.
        assert_eq!(seen.len(), 21);
        assert!(seen.contains(&b'*'));
    }

    #[test]
    fn too_short_input_translates_to_empty() {
        assert!(translate_frame(&dna(b"AC"), 0).unwrap().is_empty());
        assert!(translate_frame(&[], 4).unwrap().is_empty());
    }
}
