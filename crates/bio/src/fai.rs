//! FASTA random access via an external index (`.fai`-style).
//!
//! The paper motivates its SQB binary format by noting that FASTA
//! cannot be read "in any position inside the file, directly" (§IV).
//! The ecosystem's standard answer is an *index sidecar* (samtools'
//! `.fai`): one scan records, per record, the header offset, the
//! residue-data offset, the sequence length and the line layout; random
//! access then seeks into the text file. This module implements that
//! scheme so the repository contains *both* designs — SQB and indexed
//! FASTA — and the trade-off the paper argues (binary records need no
//! line-layout bookkeeping and parse straight into encoded residues)
//! can be measured rather than asserted.

use crate::alphabet::Alphabet;
use crate::error::BioError;
use crate::fasta::ResiduePolicy;
use crate::seq::Sequence;
use std::io::{BufRead, Read, Seek, SeekFrom};

/// One record's entry in the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaiEntry {
    /// Record id (first header token).
    pub id: String,
    /// Sequence length in residues.
    pub length: u64,
    /// Byte offset of the first residue byte (after the header line).
    pub data_offset: u64,
    /// Residues per full line.
    pub line_bases: u64,
    /// Bytes per full line including the terminator.
    pub line_bytes: u64,
}

/// An index over a FASTA file: what `samtools faidx` writes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FastaIndex {
    entries: Vec<FaiEntry>,
}

impl FastaIndex {
    /// Build the index by scanning a FASTA stream once.
    ///
    /// Requires the conventional uniform line layout (all full lines of
    /// a record equally wide); returns an error on ragged records, as
    /// `samtools faidx` does.
    pub fn build(reader: &mut impl BufRead) -> Result<FastaIndex, BioError> {
        let mut entries: Vec<FaiEntry> = Vec::new();
        let mut offset: u64 = 0;
        let mut line = String::new();

        struct Current {
            id: String,
            data_offset: u64,
            length: u64,
            line_bases: u64,
            line_bytes: u64,
            last_line_short: bool,
        }
        let mut current: Option<Current> = None;

        loop {
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 {
                break;
            }
            let bytes = n as u64;
            let trimmed = line.trim_end();
            if let Some(header) = trimmed.strip_prefix('>') {
                if let Some(c) = current.take() {
                    entries.push(FaiEntry {
                        id: c.id,
                        length: c.length,
                        data_offset: c.data_offset,
                        line_bases: c.line_bases,
                        line_bytes: c.line_bytes,
                    });
                }
                let id = header.split_whitespace().next().unwrap_or("").to_string();
                if id.is_empty() {
                    return Err(BioError::MalformedFasta(
                        "record with empty identifier".into(),
                    ));
                }
                current = Some(Current {
                    id,
                    data_offset: offset + bytes,
                    length: 0,
                    line_bases: 0,
                    line_bytes: 0,
                    last_line_short: false,
                });
            } else if !trimmed.is_empty() {
                let c = current.as_mut().ok_or_else(|| {
                    BioError::MalformedFasta("residue data before first '>' header".into())
                })?;
                let bases = trimmed.len() as u64;
                if c.line_bases == 0 {
                    c.line_bases = bases;
                    c.line_bytes = bytes;
                } else {
                    if c.last_line_short {
                        return Err(BioError::MalformedFasta(format!(
                            "record {:?} has ragged line lengths; cannot be indexed",
                            c.id
                        )));
                    }
                    if bases > c.line_bases {
                        return Err(BioError::MalformedFasta(format!(
                            "record {:?} has a line longer than its first line",
                            c.id
                        )));
                    }
                }
                if bases < c.line_bases {
                    c.last_line_short = true;
                }
                c.length += bases;
            }
            offset += bytes;
        }
        if let Some(c) = current.take() {
            entries.push(FaiEntry {
                id: c.id,
                length: c.length,
                data_offset: c.data_offset,
                line_bases: c.line_bases,
                line_bytes: c.line_bytes,
            });
        }
        Ok(FastaIndex { entries })
    }

    /// Build the index of a FASTA file on disk.
    pub fn build_from_file(path: impl AsRef<std::path::Path>) -> Result<FastaIndex, BioError> {
        let file = std::fs::File::open(path)?;
        FastaIndex::build(&mut std::io::BufReader::new(file))
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in file order.
    pub fn entries(&self) -> &[FaiEntry] {
        &self.entries
    }

    /// Look up a record by id.
    pub fn find(&self, id: &str) -> Option<&FaiEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Serialise in the 5-column `.fai` text format
    /// (`name  length  offset  linebases  linewidth`).
    pub fn to_fai_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                e.id, e.length, e.data_offset, e.line_bases, e.line_bytes
            ));
        }
        out
    }

    /// Parse the 5-column `.fai` text format.
    pub fn from_fai_text(text: &str) -> Result<FastaIndex, BioError> {
        let mut entries = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let cols: Vec<&str> = line.split('\t').collect();
            if cols.len() != 5 {
                return Err(BioError::MalformedFasta(format!(
                    "fai line {} has {} columns, expected 5",
                    ln + 1,
                    cols.len()
                )));
            }
            let parse = |s: &str| -> Result<u64, BioError> {
                s.parse()
                    .map_err(|_| BioError::MalformedFasta(format!("bad fai number {s:?}")))
            };
            entries.push(FaiEntry {
                id: cols[0].to_string(),
                length: parse(cols[1])?,
                data_offset: parse(cols[2])?,
                line_bases: parse(cols[3])?,
                line_bytes: parse(cols[4])?,
            });
        }
        Ok(FastaIndex { entries })
    }

    /// Randomly access one record (by index position) from the FASTA
    /// source: seeks to the residue data and reads exactly the indexed
    /// extent.
    pub fn read_record<F: Read + Seek>(
        &self,
        source: &mut F,
        index: usize,
        alphabet: Alphabet,
        policy: ResiduePolicy,
    ) -> Result<Sequence, BioError> {
        let entry = self
            .entries
            .get(index)
            .ok_or_else(|| BioError::MalformedFasta(format!("record {index} out of range")))?;
        source.seek(SeekFrom::Start(entry.data_offset))?;

        // Bytes spanned by `length` residues in the indexed layout.
        let text_bytes = match entry.length.checked_div(entry.line_bases) {
            None => 0,
            Some(full_lines) => {
                let rem = entry.length % entry.line_bases;
                let newline_overhead = entry.line_bytes - entry.line_bases;
                full_lines * entry.line_bytes + if rem > 0 { rem + newline_overhead } else { 0 }
            }
        };
        let mut buf = vec![0u8; text_bytes as usize];
        source
            .read_exact(&mut buf)
            .map_err(|_| BioError::MalformedFasta("indexed extent past end of file".into()))?;
        let residues: Vec<u8> = buf
            .into_iter()
            .filter(|b| !b.is_ascii_whitespace())
            .collect();
        if residues.len() as u64 != entry.length {
            return Err(BioError::MalformedFasta(format!(
                "record {:?}: index says {} residues, file has {}",
                entry.id,
                entry.length,
                residues.len()
            )));
        }
        match policy {
            ResiduePolicy::Strict => Sequence::from_text(entry.id.clone(), alphabet, &residues),
            ResiduePolicy::Lossy => Ok(Sequence::from_text_lossy(
                entry.id.clone(),
                alphabet,
                &residues,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta;
    use crate::seq::SequenceSet;
    use std::io::Cursor;

    fn sample_fasta() -> String {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, len) in [150usize, 60, 61, 1, 120].iter().enumerate() {
            let text: String = (0..*len)
                .map(|k| "ARNDCQEGHILKMFPSTWYV".as_bytes()[(i + k) % 20] as char)
                .collect();
            set.push(
                Sequence::from_text(format!("s{i}"), Alphabet::Protein, text.as_bytes()).unwrap(),
            )
            .unwrap();
        }
        fasta::to_string(&set)
    }

    #[test]
    fn index_counts_lengths_and_offsets() {
        let text = sample_fasta();
        let idx = FastaIndex::build(&mut text.as_bytes()).unwrap();
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.entries()[0].length, 150);
        assert_eq!(idx.entries()[1].length, 60);
        assert_eq!(idx.entries()[3].length, 1);
        // Layout: the writer wraps at 60.
        assert_eq!(idx.entries()[0].line_bases, 60);
        assert_eq!(idx.entries()[0].line_bytes, 61);
        assert_eq!(idx.find("s2").unwrap().length, 61);
        assert!(idx.find("nope").is_none());
    }

    #[test]
    fn random_access_matches_sequential_parse() {
        let text = sample_fasta();
        let idx = FastaIndex::build(&mut text.as_bytes()).unwrap();
        let parsed = fasta::parse(text.as_bytes(), Alphabet::Protein).unwrap();
        let mut cursor = Cursor::new(text.as_bytes());
        // Out-of-order access.
        for &i in &[4usize, 0, 2, 3, 1] {
            let rec = idx
                .read_record(&mut cursor, i, Alphabet::Protein, ResiduePolicy::Strict)
                .unwrap();
            assert_eq!(rec.id, parsed.get(i).unwrap().id);
            assert_eq!(rec.residues, parsed.get(i).unwrap().residues);
        }
    }

    #[test]
    fn fai_text_roundtrip() {
        let text = sample_fasta();
        let idx = FastaIndex::build(&mut text.as_bytes()).unwrap();
        let fai = idx.to_fai_text();
        assert_eq!(FastaIndex::from_fai_text(&fai).unwrap(), idx);
        assert!(FastaIndex::from_fai_text("a\tb\n").is_err());
        assert!(FastaIndex::from_fai_text("a\tx\t0\t60\t61\n").is_err());
    }

    #[test]
    fn ragged_records_are_rejected() {
        // Second data line longer than the first.
        let bad = ">a\nAAA\nAAAAA\n";
        assert!(FastaIndex::build(&mut bad.as_bytes()).is_err());
        // Short line followed by more data.
        let bad = ">a\nAAAAA\nAA\nAAAAA\n";
        assert!(FastaIndex::build(&mut bad.as_bytes()).is_err());
    }

    #[test]
    fn data_before_header_is_rejected() {
        assert!(FastaIndex::build(&mut "AAA\n>x\nAA\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_and_out_of_range() {
        let idx = FastaIndex::build(&mut "".as_bytes()).unwrap();
        assert!(idx.is_empty());
        let mut cursor = Cursor::new(Vec::<u8>::new());
        assert!(idx
            .read_record(&mut cursor, 0, Alphabet::Protein, ResiduePolicy::Strict)
            .is_err());
    }

    #[test]
    fn index_agrees_with_sqb_on_record_count() {
        // Both random-access designs must expose the same records.
        let text = sample_fasta();
        let idx = FastaIndex::build(&mut text.as_bytes()).unwrap();
        let set = fasta::parse(text.as_bytes(), Alphabet::Protein).unwrap();
        let sqb_bytes = crate::sqb::encode(&set);
        let slice = crate::sqb::SqbSlice::new(&sqb_bytes).unwrap();
        assert_eq!(idx.len(), slice.len());
        for i in 0..idx.len() {
            assert_eq!(
                idx.entries()[i].length,
                slice.residue_len(i).unwrap() as u64
            );
        }
    }
}
