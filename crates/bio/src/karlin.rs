//! Karlin–Altschul statistics: λ, H, bit scores and E-values.
//!
//! Production Smith-Waterman search tools (SWIPE, SSEARCH, BLAST) rank
//! hits by statistical significance, not raw score. For an ungapped
//! scoring system with residue background frequencies `pᵢ`, the scale
//! parameter λ is the unique positive solution of
//!
//! ```text
//! Σᵢ Σⱼ pᵢ pⱼ exp(λ·s(i,j)) = 1
//! ```
//!
//! and the relative entropy `H = λ · Σ pᵢ pⱼ s(i,j) exp(λ·s(i,j))`.
//! The expected number of alignments scoring ≥ S in a search of a
//! query of length `m` against a database of `n` residues is
//! `E = K·m·n·exp(−λS)` (the Karlin–Altschul equation).
//!
//! λ and H are computed exactly (Newton iteration); `K` uses the
//! standard high-score regime approximation `K ≈ H/λ · exp(−λ·δ)`-free
//! simplified estimate documented at [`karlin_k_estimate`] — exact `K`
//! requires the full Karlin–Altschul renewal computation, which matters
//! only as a constant factor on E-values. For *gapped* searches the
//! canonical practice (followed by BLAST itself) is lookup tables of
//! empirically fitted (λ, K); [`gapped_params`] embeds the BLOSUM62
//! table used by NCBI BLAST.

use crate::matrix::Matrix;

/// Statistical parameters of a scoring system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// Scale parameter λ (nats per score unit).
    pub lambda: f64,
    /// Relative entropy H (nats per aligned pair).
    pub entropy: f64,
    /// The K constant of the E-value formula.
    pub k: f64,
}

impl KarlinParams {
    /// Bit score: `S' = (λ·S − ln K) / ln 2`.
    pub fn bit_score(&self, raw_score: i32) -> f64 {
        (self.lambda * raw_score as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// E-value of a raw score in a search space of `m·n` cells.
    pub fn evalue(&self, raw_score: i32, query_len: usize, db_residues: u64) -> f64 {
        self.k * query_len as f64 * db_residues as f64 * (-self.lambda * raw_score as f64).exp()
    }

    /// The raw score needed to reach E-value `e` in a given search
    /// space (inverse of [`KarlinParams::evalue`]).
    pub fn score_for_evalue(&self, e: f64, query_len: usize, db_residues: u64) -> i32 {
        let mn = query_len as f64 * db_residues as f64;
        ((self.k * mn / e).ln() / self.lambda).ceil() as i32
    }
}

/// Expected score per pair under backgrounds `p` and `q`:
/// `Σ pᵢ qⱼ s(i,j)`. Must be negative for local alignment statistics to
/// exist.
pub fn expected_score(matrix: &Matrix, p: &[f64], q: &[f64]) -> f64 {
    let mut e = 0.0;
    for (i, &pi) in p.iter().enumerate() {
        for (j, &qj) in q.iter().enumerate() {
            e += pi * qj * matrix.score(i as u8, j as u8) as f64;
        }
    }
    e
}

/// Solve for the ungapped λ of `matrix` under background frequencies
/// `p` (query side) and `q` (subject side) by Newton iteration on
/// `f(λ) = Σ pᵢqⱼ exp(λ sᵢⱼ) − 1`.
///
/// Returns `None` when no positive λ exists (expected score ≥ 0 or no
/// positive score in the table) — such systems have no local-alignment
/// statistics.
pub fn solve_lambda(matrix: &Matrix, p: &[f64], q: &[f64]) -> Option<f64> {
    if expected_score(matrix, p, q) >= 0.0 {
        return None;
    }
    let has_positive = p.iter().enumerate().any(|(i, &pi)| {
        pi > 0.0
            && q.iter()
                .enumerate()
                .any(|(j, &qj)| qj > 0.0 && matrix.score(i as u8, j as u8) > 0)
    });
    if !has_positive {
        return None;
    }

    // f is convex with f(0) = 0, f'(0) < 0 and f(∞) = ∞: bracket the
    // positive root then Newton from the right.
    let f_and_df = |lambda: f64| -> (f64, f64) {
        let mut f = -1.0;
        let mut df = 0.0;
        for (i, &pi) in p.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            for (j, &qj) in q.iter().enumerate() {
                if qj == 0.0 {
                    continue;
                }
                let s = matrix.score(i as u8, j as u8) as f64;
                let w = pi * qj * (lambda * s).exp();
                f += w;
                df += w * s;
            }
        }
        (f, df)
    };

    let mut hi = 0.5;
    while f_and_df(hi).0 < 0.0 {
        hi *= 2.0;
        if hi > 100.0 {
            return None;
        }
    }
    let mut lambda = hi;
    for _ in 0..100 {
        let (f, df) = f_and_df(lambda);
        if df <= 0.0 {
            break;
        }
        let next = lambda - f / df;
        if next.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            break;
        }
        if (next - lambda).abs() < 1e-12 * lambda {
            return Some(next);
        }
        lambda = next;
    }
    Some(lambda)
}

/// Relative entropy `H` of the scoring system at scale `lambda`.
pub fn entropy(matrix: &Matrix, p: &[f64], q: &[f64], lambda: f64) -> f64 {
    let mut h = 0.0;
    for (i, &pi) in p.iter().enumerate() {
        for (j, &qj) in q.iter().enumerate() {
            let s = matrix.score(i as u8, j as u8) as f64;
            h += pi * qj * s * (lambda * s).exp();
        }
    }
    lambda * h
}

/// Simplified estimate of the Karlin–Altschul `K` constant:
/// `K ≈ H / (λ · s̄₊²)`-style estimates vary; we use the common
/// practitioners' approximation `K ≈ 0.1` scaled by entropy relative to
/// BLOSUM62's (whose exact ungapped K is 0.1337). The constant enters
/// E-values only as a scale factor; order-of-magnitude correctness is
/// what hit filtering needs. For exact gapped statistics use
/// [`gapped_params`].
pub fn karlin_k_estimate(matrix: &Matrix, p: &[f64], q: &[f64], lambda: f64) -> f64 {
    const BLOSUM62_H: f64 = 0.4012; // nats, NCBI value
    const BLOSUM62_K: f64 = 0.1337; // NCBI ungapped K
    let h = entropy(matrix, p, q, lambda);
    (BLOSUM62_K * h / BLOSUM62_H).clamp(0.001, 1.0)
}

/// Full ungapped parameter computation.
pub fn ungapped_params(matrix: &Matrix, p: &[f64], q: &[f64]) -> Option<KarlinParams> {
    let lambda = solve_lambda(matrix, p, q)?;
    let h = entropy(matrix, p, q, lambda);
    Some(KarlinParams {
        lambda,
        entropy: h,
        k: karlin_k_estimate(matrix, p, q, lambda),
    })
}

/// Empirically fitted gapped (λ, K) for BLOSUM62 at common gap
/// penalties — the table NCBI BLAST ships (`blast_stat.c`). Keys are
/// `(gap_open, gap_extend)` in our penalty convention.
pub fn gapped_params(gap_open: i32, gap_extend: i32) -> Option<KarlinParams> {
    // (open, extend, lambda, K, H)
    const TABLE: &[(i32, i32, f64, f64, f64)] = &[
        (10, 2, 0.255, 0.035, 0.31),
        (11, 2, 0.253, 0.035, 0.25),
        (12, 2, 0.243, 0.034, 0.22),
        (9, 2, 0.266, 0.041, 0.31),
        (8, 2, 0.270, 0.047, 0.35),
        (11, 1, 0.267, 0.041, 0.14),
        (12, 1, 0.258, 0.035, 0.12),
        (10, 1, 0.243, 0.024, 0.10),
        (13, 1, 0.267, 0.041, 0.14),
    ];
    TABLE
        .iter()
        .find(|&&(o, e, ..)| o == gap_open && e == gap_extend)
        .map(|&(_, _, lambda, k, entropy)| KarlinParams { lambda, k, entropy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::matrix::Matrix;

    /// Robinson background over the 24-letter alphabet (zeros for
    /// ambiguity codes).
    fn background() -> Vec<f64> {
        let mut p = vec![0.0; 24];
        let freqs = [
            0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377, 0.02199,
            0.05142, 0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120, 0.05841, 0.01330,
            0.03216, 0.06441,
        ];
        let total: f64 = freqs.iter().sum();
        for (i, f) in freqs.iter().enumerate() {
            p[i] = f / total;
        }
        p
    }

    #[test]
    fn blosum62_lambda_matches_ncbi() {
        // NCBI's ungapped λ for BLOSUM62 with Robinson frequencies is
        // 0.3176.
        let p = background();
        let lambda = solve_lambda(Matrix::blosum62(), &p, &p).unwrap();
        assert!(
            (lambda - 0.3176).abs() < 0.004,
            "λ = {lambda}, expected ≈ 0.3176"
        );
    }

    #[test]
    fn blosum62_entropy_matches_ncbi() {
        let p = background();
        let lambda = solve_lambda(Matrix::blosum62(), &p, &p).unwrap();
        let h = entropy(Matrix::blosum62(), &p, &p, lambda);
        // NCBI reports H ≈ 0.40 nats.
        assert!((h - 0.40).abs() < 0.02, "H = {h}");
    }

    #[test]
    fn expected_score_is_negative_for_blosum62() {
        let p = background();
        assert!(expected_score(Matrix::blosum62(), &p, &p) < 0.0);
    }

    #[test]
    fn positive_expected_score_has_no_lambda() {
        // An all-positive matrix cannot have local statistics.
        let m = Matrix::match_mismatch(Alphabet::Dna, 2, 1);
        let p = vec![0.25, 0.25, 0.25, 0.25, 0.0];
        assert!(solve_lambda(&m, &p, &p).is_none());
    }

    #[test]
    fn match_mismatch_lambda_closed_form() {
        // For +1/-1 uniform DNA: Σ p² e^λ over matches + mismatches:
        // 0.25 e^λ + 0.75 e^{-λ} = 1 ⇒ e^λ = 3 ⇒ λ = ln 3.
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let p = vec![0.25, 0.25, 0.25, 0.25, 0.0];
        let lambda = solve_lambda(&m, &p, &p).unwrap();
        assert!((lambda - 3.0f64.ln()).abs() < 1e-9, "λ = {lambda}");
    }

    #[test]
    fn evalue_decreases_with_score_and_increases_with_space() {
        let p = background();
        let params = ungapped_params(Matrix::blosum62(), &p, &p).unwrap();
        let e50 = params.evalue(50, 300, 1_000_000);
        let e100 = params.evalue(100, 300, 1_000_000);
        assert!(e100 < e50);
        let e_big_db = params.evalue(50, 300, 100_000_000);
        assert!(e_big_db > e50);
    }

    #[test]
    fn score_for_evalue_inverts_evalue() {
        let p = background();
        let params = ungapped_params(Matrix::blosum62(), &p, &p).unwrap();
        let s = params.score_for_evalue(1e-3, 500, 10_000_000);
        assert!(params.evalue(s, 500, 10_000_000) <= 1e-3);
        assert!(params.evalue(s - 1, 500, 10_000_000) > 1e-3);
    }

    #[test]
    fn bit_scores_are_monotone() {
        let p = background();
        let params = ungapped_params(Matrix::blosum62(), &p, &p).unwrap();
        assert!(params.bit_score(100) > params.bit_score(50));
        // ~0.46 bits per raw score unit for BLOSUM62.
        let per_unit = params.bit_score(101) - params.bit_score(100);
        assert!((per_unit - params.lambda / std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn gapped_table_has_the_default_scheme() {
        let params = gapped_params(10, 2).expect("default scheme present");
        assert!((params.lambda - 0.255).abs() < 1e-9);
        assert!(gapped_params(99, 9).is_none());
    }
}
