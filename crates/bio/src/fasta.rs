//! Streaming FASTA reader and writer.
//!
//! FASTA ([17] in the paper) is a plain-text format: a `>` header line
//! followed by residue lines, records placed one after another. As the
//! paper notes (§IV), this makes it impossible to read a *specific*
//! sequence without scanning the whole file — the motivation for the SQB
//! binary format in [`crate::sqb`]. This module supplies the text side:
//! loading whole files, streaming record-by-record, and writing.

use crate::alphabet::Alphabet;
use crate::error::BioError;
use crate::seq::{Sequence, SequenceSet};
use std::io::{BufRead, Write};

/// How to treat residues outside the target alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResiduePolicy {
    /// Fail with [`BioError::InvalidResidue`].
    #[default]
    Strict,
    /// Replace with the alphabet wildcard (`N`/`X`), like production
    /// search tools do.
    Lossy,
}

/// Streaming FASTA reader over any [`BufRead`], yielding one
/// [`Sequence`] per record without materialising the whole file.
pub struct FastaReader<R: BufRead> {
    input: R,
    alphabet: Alphabet,
    policy: ResiduePolicy,
    /// Header of the record we are about to read (already consumed from
    /// the input), if any.
    pending_header: Option<String>,
    line: String,
    records_read: usize,
    started: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Create a reader producing sequences over `alphabet`.
    pub fn new(input: R, alphabet: Alphabet) -> Self {
        FastaReader {
            input,
            alphabet,
            policy: ResiduePolicy::Strict,
            pending_header: None,
            line: String::new(),
            records_read: 0,
            started: false,
        }
    }

    /// Switch the residue policy (builder style).
    pub fn with_policy(mut self, policy: ResiduePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of complete records returned so far.
    pub fn records_read(&self) -> usize {
        self.records_read
    }

    fn parse_header(line: &str) -> (String, String) {
        let body = line.trim_start_matches('>').trim_end();
        match body.split_once(char::is_whitespace) {
            Some((id, desc)) => (id.to_string(), desc.trim().to_string()),
            None => (body.to_string(), String::new()),
        }
    }

    /// Read the next record, or `Ok(None)` at end of input.
    pub fn next_record(&mut self) -> Result<Option<Sequence>, BioError> {
        let header = match self.pending_header.take() {
            Some(h) => h,
            None => {
                // Scan forward to the next header line.
                loop {
                    self.line.clear();
                    if self.input.read_line(&mut self.line)? == 0 {
                        return Ok(None);
                    }
                    let trimmed = self.line.trim_end();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if trimmed.starts_with('>') {
                        self.started = true;
                        break trimmed.to_string();
                    }
                    if trimmed.starts_with(';') {
                        // Old-style FASTA comment line.
                        continue;
                    }
                    if !self.started {
                        return Err(BioError::MalformedFasta(
                            "residue data before first '>' header".into(),
                        ));
                    }
                    unreachable!("residue lines are consumed by the record loop");
                }
            }
        };

        let (id, description) = Self::parse_header(&header);
        let mut text: Vec<u8> = Vec::new();
        loop {
            self.line.clear();
            if self.input.read_line(&mut self.line)? == 0 {
                break;
            }
            let trimmed = self.line.trim_end();
            if trimmed.starts_with('>') {
                self.pending_header = Some(trimmed.to_string());
                break;
            }
            if trimmed.starts_with(';') {
                continue;
            }
            // Residue line; tolerate embedded whitespace.
            text.extend(trimmed.bytes().filter(|b| !b.is_ascii_whitespace()));
        }

        let sequence = match self.policy {
            ResiduePolicy::Strict => {
                let mut s = Sequence::from_text(id, self.alphabet, &text)?;
                s.description = description;
                s
            }
            ResiduePolicy::Lossy => {
                let mut s = Sequence::from_text_lossy(id, self.alphabet, &text);
                s.description = description;
                s
            }
        };
        self.records_read += 1;
        Ok(Some(sequence))
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<Sequence, BioError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Parse a whole FASTA document from memory into a [`SequenceSet`].
pub fn parse(bytes: &[u8], alphabet: Alphabet) -> Result<SequenceSet, BioError> {
    parse_with_policy(bytes, alphabet, ResiduePolicy::Strict)
}

/// Parse a whole FASTA document with an explicit residue policy.
pub fn parse_with_policy(
    bytes: &[u8],
    alphabet: Alphabet,
    policy: ResiduePolicy,
) -> Result<SequenceSet, BioError> {
    let reader = FastaReader::new(bytes, alphabet).with_policy(policy);
    let mut set = SequenceSet::new(alphabet);
    for record in reader {
        set.push(record?)?;
    }
    Ok(set)
}

/// Load a FASTA file from disk.
pub fn read_file(
    path: impl AsRef<std::path::Path>,
    alphabet: Alphabet,
    policy: ResiduePolicy,
) -> Result<SequenceSet, BioError> {
    let file = std::fs::File::open(path)?;
    let reader = FastaReader::new(std::io::BufReader::new(file), alphabet).with_policy(policy);
    let mut set = SequenceSet::new(alphabet);
    for record in reader {
        set.push(record?)?;
    }
    Ok(set)
}

/// Width at which [`write`] wraps residue lines (the conventional 60).
pub const LINE_WIDTH: usize = 60;

/// Serialise a sequence set as FASTA text.
pub fn write(set: &SequenceSet, out: &mut impl Write) -> Result<(), BioError> {
    for seq in set {
        if seq.description.is_empty() {
            writeln!(out, ">{}", seq.id)?;
        } else {
            writeln!(out, ">{} {}", seq.id, seq.description)?;
        }
        let text = seq.text();
        for chunk in text.as_bytes().chunks(LINE_WIDTH) {
            out.write_all(chunk)?;
            out.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Serialise a sequence set to an in-memory FASTA string.
pub fn to_string(set: &SequenceSet) -> String {
    let mut buf = Vec::new();
    write(set, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

/// Write a FASTA file to disk.
pub fn write_file(set: &SequenceSet, path: impl AsRef<std::path::Path>) -> Result<(), BioError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write(set, &mut writer)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
>q1 first query
MKVLAT
GGAR
>q2
MK

>q3 trailing
M
";

    #[test]
    fn parses_multiple_records() {
        let set = parse(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.get(0).unwrap().id, "q1");
        assert_eq!(set.get(0).unwrap().description, "first query");
        assert_eq!(set.get(0).unwrap().text(), "MKVLATGGAR");
        assert_eq!(set.get(1).unwrap().text(), "MK");
        assert!(set.get(1).unwrap().description.is_empty());
        assert_eq!(set.get(2).unwrap().text(), "M");
    }

    #[test]
    fn multiline_residues_are_joined() {
        let set = parse(b">a\nMKV\nLAT\nGG\n", Alphabet::Protein).unwrap();
        assert_eq!(set.get(0).unwrap().text(), "MKVLATGG");
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = parse(b"MKVLAT\n>a\nMK\n", Alphabet::Protein).unwrap_err();
        assert!(matches!(err, BioError::MalformedFasta(_)));
    }

    #[test]
    fn comment_lines_are_skipped() {
        let set = parse(b";comment\n>a\n;mid comment\nMKV\n", Alphabet::Protein).unwrap();
        assert_eq!(set.get(0).unwrap().text(), "MKV");
    }

    #[test]
    fn strict_policy_rejects_bad_residue() {
        assert!(parse(b">a\nMK1V\n", Alphabet::Protein).is_err());
    }

    #[test]
    fn lossy_policy_substitutes_wildcard() {
        let set =
            parse_with_policy(b">a\nMK1V\n", Alphabet::Protein, ResiduePolicy::Lossy).unwrap();
        assert_eq!(set.get(0).unwrap().text(), "MKXV");
    }

    #[test]
    fn empty_input_yields_empty_set() {
        let set = parse(b"", Alphabet::Protein).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn empty_record_is_allowed() {
        let set = parse(b">a\n>b\nMK\n", Alphabet::Protein).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.get(0).unwrap().is_empty());
    }

    #[test]
    fn write_wraps_lines_and_roundtrips() {
        let long = "M".repeat(150);
        let mut set = SequenceSet::new(Alphabet::Protein);
        set.push(
            Sequence::from_text("long", Alphabet::Protein, long.as_bytes())
                .unwrap()
                .with_description("a long one"),
        )
        .unwrap();
        let text = to_string(&set);
        // 150 residues at width 60 -> 3 residue lines.
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with(">long a long one\n"));
        let back = parse(text.as_bytes(), Alphabet::Protein).unwrap();
        assert_eq!(back.get(0).unwrap().text(), long);
        assert_eq!(back.get(0).unwrap().description, "a long one");
    }

    #[test]
    fn streaming_reader_counts_records() {
        let mut reader = FastaReader::new(SAMPLE.as_bytes(), Alphabet::Protein);
        let mut n = 0;
        while let Some(r) = reader.next_record().unwrap() {
            assert!(!r.id.is_empty());
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(reader.records_read(), 3);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("swdual_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fasta");
        let set = parse(SAMPLE.as_bytes(), Alphabet::Protein).unwrap();
        write_file(&set, &path).unwrap();
        let back = read_file(&path, Alphabet::Protein, ResiduePolicy::Strict).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(&path).ok();
    }
}
