//! SQB — the paper's binary sequence-database format.
//!
//! Paper §IV: *"Sequence database files created using the Fasta format are
//! in fact text files, with sequences placed one after the other. For that
//! reason, it is not feasible to read specific sequences contained in the
//! file [...] a simple binary format was created with a few additional
//! fields. Using this format, both the master and workers are able to read
//! sequences in any position inside the file, directly. Additionally, the
//! memory allocation process is simplified due to the fact that all the
//! sequences sizes are known beforehand."*
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +---------------------------------------------------------------+
//! | magic "SQB1" | version u16 | alphabet u8 | flags u8            |
//! | n_sequences u64 | total_residues u64 | index_offset u64        |
//! +---------------------------------------------------------------+
//! | record 0 | record 1 | ...                                      |   records
//! +---------------------------------------------------------------+
//! | (offset u64, residue_len u32) * n_sequences                    |   index
//! +---------------------------------------------------------------+
//! ```
//!
//! Each record is `id_len u16 | id | desc_len u16 | desc | residues`
//! (residue length lives in the index, so a reader can pre-allocate
//! before touching the record — the "sizes known beforehand" property).

use crate::alphabet::Alphabet;
use crate::error::BioError;
use crate::seq::{Sequence, SequenceSet};
use bytes::{Buf, BufMut};
use std::io::{Read, Seek, SeekFrom, Write};

/// File magic, first four bytes of every SQB file.
pub const MAGIC: &[u8; 4] = b"SQB1";
/// Format version written by this build.
pub const VERSION: u16 = 1;
/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 1 + 8 + 8 + 8;
/// Size of one index entry in bytes.
pub const INDEX_ENTRY_LEN: usize = 8 + 4;

/// Parsed SQB header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version of the file.
    pub version: u16,
    /// Alphabet the residues are encoded in.
    pub alphabet: Alphabet,
    /// Number of sequence records.
    pub n_sequences: u64,
    /// Sum of residue counts over all records.
    pub total_residues: u64,
    /// Byte offset of the index section.
    pub index_offset: u64,
}

/// One index entry: where a record starts and how many residues it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the record within the file.
    pub offset: u64,
    /// Residue count of the record (enables pre-allocation).
    pub residue_len: u32,
}

fn encode_record(seq: &Sequence, out: &mut Vec<u8>) {
    assert!(
        seq.id.len() <= u16::MAX as usize && seq.description.len() <= u16::MAX as usize,
        "SQB id/description fields are limited to {} bytes (sequence {:?})",
        u16::MAX,
        seq.id
    );
    out.put_u16_le(seq.id.len() as u16);
    out.put_slice(seq.id.as_bytes());
    out.put_u16_le(seq.description.len() as u16);
    out.put_slice(seq.description.as_bytes());
    out.put_slice(&seq.residues);
}

/// Serialise a [`SequenceSet`] into SQB bytes.
pub fn encode(set: &SequenceSet) -> Vec<u8> {
    let mut records = Vec::new();
    let mut index: Vec<IndexEntry> = Vec::with_capacity(set.len());
    for seq in set {
        index.push(IndexEntry {
            offset: (HEADER_LEN + records.len()) as u64,
            residue_len: seq.len() as u32,
        });
        encode_record(seq, &mut records);
    }

    let index_offset = (HEADER_LEN + records.len()) as u64;
    let mut out = Vec::with_capacity(HEADER_LEN + records.len() + index.len() * INDEX_ENTRY_LEN);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u8(set.alphabet.tag());
    out.put_u8(0); // flags, reserved
    out.put_u64_le(set.len() as u64);
    out.put_u64_le(set.total_residues());
    out.put_u64_le(index_offset);
    out.put_slice(&records);
    for entry in &index {
        out.put_u64_le(entry.offset);
        out.put_u32_le(entry.residue_len);
    }
    out
}

fn parse_header(mut buf: &[u8]) -> Result<Header, BioError> {
    if buf.len() < HEADER_LEN {
        return Err(BioError::MalformedSqb("file shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(BioError::MalformedSqb(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(BioError::UnsupportedSqbVersion(version));
    }
    let alphabet_tag = buf.get_u8();
    let _flags = buf.get_u8();
    let alphabet = Alphabet::from_tag(alphabet_tag)
        .ok_or_else(|| BioError::MalformedSqb(format!("unknown alphabet tag {alphabet_tag}")))?;
    Ok(Header {
        version,
        alphabet,
        n_sequences: buf.get_u64_le(),
        total_residues: buf.get_u64_le(),
        index_offset: buf.get_u64_le(),
    })
}

fn parse_record(bytes: &[u8], entry: IndexEntry, alphabet: Alphabet) -> Result<Sequence, BioError> {
    let start = entry.offset as usize;
    let mut buf = bytes
        .get(start..)
        .ok_or_else(|| BioError::MalformedSqb("record offset out of range".into()))?;
    let need = |buf: &[u8], n: usize| -> Result<(), BioError> {
        if buf.len() < n {
            Err(BioError::MalformedSqb("truncated record".into()))
        } else {
            Ok(())
        }
    };
    need(buf, 2)?;
    let id_len = buf.get_u16_le() as usize;
    need(buf, id_len)?;
    let id = String::from_utf8(buf[..id_len].to_vec())
        .map_err(|_| BioError::MalformedSqb("record id is not UTF-8".into()))?;
    buf.advance(id_len);
    need(buf, 2)?;
    let desc_len = buf.get_u16_le() as usize;
    need(buf, desc_len)?;
    let description = String::from_utf8(buf[..desc_len].to_vec())
        .map_err(|_| BioError::MalformedSqb("record description is not UTF-8".into()))?;
    buf.advance(desc_len);
    let res_len = entry.residue_len as usize;
    need(buf, res_len)?;
    let residues = buf[..res_len].to_vec();
    if residues.iter().any(|&c| (c as usize) >= alphabet.size()) {
        return Err(BioError::MalformedSqb(
            "residue code out of range for alphabet".into(),
        ));
    }
    let mut seq = Sequence::from_codes(id, alphabet, residues);
    seq.description = description;
    Ok(seq)
}

fn parse_index(bytes: &[u8], header: &Header) -> Result<Vec<IndexEntry>, BioError> {
    let start = usize::try_from(header.index_offset)
        .map_err(|_| BioError::MalformedSqb("index offset exceeds address space".into()))?;
    let len = usize::try_from(header.n_sequences)
        .ok()
        .and_then(|n| n.checked_mul(INDEX_ENTRY_LEN))
        .ok_or_else(|| BioError::MalformedSqb("sequence count overflows index size".into()))?;
    let end = start
        .checked_add(len)
        .ok_or_else(|| BioError::MalformedSqb("index extent overflows".into()))?;
    let mut buf = bytes
        .get(start..end)
        .ok_or_else(|| BioError::MalformedSqb("index out of range".into()))?;
    let mut index = Vec::with_capacity(header.n_sequences as usize);
    for _ in 0..header.n_sequences {
        index.push(IndexEntry {
            offset: buf.get_u64_le(),
            residue_len: buf.get_u32_le(),
        });
    }
    Ok(index)
}

/// Decode a full SQB byte buffer back into a [`SequenceSet`].
pub fn decode(bytes: &[u8]) -> Result<SequenceSet, BioError> {
    let reader = SqbSlice::new(bytes)?;
    reader.read_all()
}

/// Random-access view over SQB bytes held in memory.
///
/// This is the in-process analogue of the paper's "read sequences in any
/// position inside the file, directly": [`SqbSlice::read_sequence`] touches
/// only the bytes of the requested record.
pub struct SqbSlice<'a> {
    bytes: &'a [u8],
    header: Header,
    index: Vec<IndexEntry>,
}

impl<'a> SqbSlice<'a> {
    /// Parse the header and index; record bytes are left untouched.
    pub fn new(bytes: &'a [u8]) -> Result<Self, BioError> {
        let header = parse_header(bytes)?;
        let index = parse_index(bytes, &header)?;
        Ok(SqbSlice {
            bytes,
            header,
            index,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of sequences in the file.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the file holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Residue length of record `i` without reading the record
    /// (the paper's "sizes known beforehand" property).
    pub fn residue_len(&self, i: usize) -> Option<u32> {
        self.index.get(i).map(|e| e.residue_len)
    }

    /// Randomly access record `i`.
    pub fn read_sequence(&self, i: usize) -> Result<Sequence, BioError> {
        let entry = *self
            .index
            .get(i)
            .ok_or_else(|| BioError::MalformedSqb(format!("record {i} out of range")))?;
        parse_record(self.bytes, entry, self.header.alphabet)
    }

    /// Materialise every record, in order.
    pub fn read_all(&self) -> Result<SequenceSet, BioError> {
        let mut set = SequenceSet::new(self.header.alphabet);
        for i in 0..self.len() {
            set.push(self.read_sequence(i)?)?;
        }
        Ok(set)
    }
}

/// Random-access reader over an SQB *file* on disk: loads header + index
/// eagerly, seeks per record on demand. This is the exact behaviour the
/// paper built the format for — master and workers each open the database
/// and fetch only the sequences their tasks need.
pub struct SqbFile<F: Read + Seek> {
    file: F,
    header: Header,
    index: Vec<IndexEntry>,
}

impl SqbFile<std::io::BufReader<std::fs::File>> {
    /// Open an SQB file from a filesystem path.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, BioError> {
        let file = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::from_seekable(file)
    }
}

impl<F: Read + Seek> SqbFile<F> {
    /// Wrap any seekable byte source.
    pub fn from_seekable(mut file: F) -> Result<Self, BioError> {
        let mut header_bytes = [0u8; HEADER_LEN];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header_bytes)
            .map_err(|_| BioError::MalformedSqb("file shorter than header".into()))?;
        let header = parse_header(&header_bytes)?;

        file.seek(SeekFrom::Start(header.index_offset))?;
        let index_len = usize::try_from(header.n_sequences)
            .ok()
            .and_then(|n| n.checked_mul(INDEX_ENTRY_LEN))
            .ok_or_else(|| BioError::MalformedSqb("sequence count overflows index size".into()))?;
        let mut index_bytes = vec![0u8; index_len];
        file.read_exact(&mut index_bytes)
            .map_err(|_| BioError::MalformedSqb("truncated index".into()))?;
        let mut buf: &[u8] = &index_bytes;
        let mut index = Vec::with_capacity(header.n_sequences as usize);
        for _ in 0..header.n_sequences {
            index.push(IndexEntry {
                offset: buf.get_u64_le(),
                residue_len: buf.get_u32_le(),
            });
        }
        Ok(SqbFile {
            file,
            header,
            index,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Number of sequences in the file.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the file holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Residue length of record `i` without any file I/O.
    pub fn residue_len(&self, i: usize) -> Option<u32> {
        self.index.get(i).map(|e| e.residue_len)
    }

    /// Seek to and read record `i`.
    pub fn read_sequence(&mut self, i: usize) -> Result<Sequence, BioError> {
        let entry = *self
            .index
            .get(i)
            .ok_or_else(|| BioError::MalformedSqb(format!("record {i} out of range")))?;
        self.file.seek(SeekFrom::Start(entry.offset))?;
        // Upper bound for the record: lengths + id/desc (u16 max each) +
        // residues. Read generously then parse from a zero-based entry.
        let mut head = [0u8; 2];
        self.file.read_exact(&mut head)?;
        let id_len = u16::from_le_bytes(head) as usize;
        let mut id = vec![0u8; id_len];
        self.file.read_exact(&mut id)?;
        self.file.read_exact(&mut head)?;
        let desc_len = u16::from_le_bytes(head) as usize;
        let mut desc = vec![0u8; desc_len];
        self.file.read_exact(&mut desc)?;
        let mut residues = vec![0u8; entry.residue_len as usize];
        self.file.read_exact(&mut residues)?;
        if residues
            .iter()
            .any(|&c| (c as usize) >= self.header.alphabet.size())
        {
            return Err(BioError::MalformedSqb(
                "residue code out of range for alphabet".into(),
            ));
        }
        let mut seq = Sequence::from_codes(
            String::from_utf8(id)
                .map_err(|_| BioError::MalformedSqb("record id is not UTF-8".into()))?,
            self.header.alphabet,
            residues,
        );
        seq.description = String::from_utf8(desc)
            .map_err(|_| BioError::MalformedSqb("record description is not UTF-8".into()))?;
        Ok(seq)
    }

    /// Materialise every record, in order.
    pub fn read_all(&mut self) -> Result<SequenceSet, BioError> {
        let mut set = SequenceSet::new(self.header.alphabet);
        for i in 0..self.len() {
            set.push(self.read_sequence(i)?)?;
        }
        Ok(set)
    }
}

/// Write a sequence set to an SQB file on disk.
pub fn write_file(set: &SequenceSet, path: impl AsRef<std::path::Path>) -> Result<(), BioError> {
    let bytes = encode(set);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(())
}

/// Streaming SQB writer: records are appended one at a time and the
/// header + index are fixed up on [`SqbWriter::finish`], so a database
/// conversion never needs the whole set in memory — the property that
/// makes the format practical for the paper's 537k-sequence UniProt.
pub struct SqbWriter<W: Write + Seek> {
    out: W,
    alphabet: Alphabet,
    index: Vec<IndexEntry>,
    total_residues: u64,
    offset: u64,
    finished: bool,
}

impl SqbWriter<std::io::BufWriter<std::fs::File>> {
    /// Create a streaming writer at a filesystem path.
    pub fn create(path: impl AsRef<std::path::Path>, alphabet: Alphabet) -> Result<Self, BioError> {
        let file = std::io::BufWriter::new(std::fs::File::create(path)?);
        Self::new(file, alphabet)
    }
}

impl<W: Write + Seek> SqbWriter<W> {
    /// Wrap any seekable sink. A placeholder header is written
    /// immediately and patched by [`SqbWriter::finish`].
    pub fn new(mut out: W, alphabet: Alphabet) -> Result<Self, BioError> {
        let placeholder = [0u8; HEADER_LEN];
        out.write_all(&placeholder)?;
        Ok(SqbWriter {
            out,
            alphabet,
            index: Vec::new(),
            total_residues: 0,
            offset: HEADER_LEN as u64,
            finished: false,
        })
    }

    /// Append one record.
    pub fn append(&mut self, seq: &Sequence) -> Result<(), BioError> {
        assert!(!self.finished, "writer already finished");
        if seq.alphabet != self.alphabet {
            return Err(BioError::MalformedSqb(format!(
                "sequence {:?} has alphabet {:?}, writer expects {:?}",
                seq.id, seq.alphabet, self.alphabet
            )));
        }
        if seq.id.len() > u16::MAX as usize || seq.description.len() > u16::MAX as usize {
            return Err(BioError::MalformedSqb(format!(
                "sequence {:?}: id/description exceed the format's {}-byte field limit",
                seq.id,
                u16::MAX
            )));
        }
        let mut record = Vec::with_capacity(4 + seq.id.len() + seq.description.len() + seq.len());
        encode_record(seq, &mut record);
        self.out.write_all(&record)?;
        self.index.push(IndexEntry {
            offset: self.offset,
            residue_len: seq.len() as u32,
        });
        self.offset += record.len() as u64;
        self.total_residues += seq.len() as u64;
        Ok(())
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Write the index, patch the header, flush, and return the sink.
    pub fn finish(mut self) -> Result<W, BioError> {
        self.finished = true;
        let index_offset = self.offset;
        for entry in &self.index {
            let mut buf = Vec::with_capacity(INDEX_ENTRY_LEN);
            buf.put_u64_le(entry.offset);
            buf.put_u32_le(entry.residue_len);
            self.out.write_all(&buf)?;
        }
        // Patch the header in place.
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.put_slice(MAGIC);
        header.put_u16_le(VERSION);
        header.put_u8(self.alphabet.tag());
        header.put_u8(0);
        header.put_u64_le(self.index.len() as u64);
        header.put_u64_le(self.total_residues);
        header.put_u64_le(index_offset);
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&header)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Convert a FASTA document (bytes) to SQB bytes — the "convert format"
/// step both master and workers perform in the paper's Figure 6.
pub fn convert_fasta(
    fasta_bytes: &[u8],
    alphabet: Alphabet,
    policy: crate::fasta::ResiduePolicy,
) -> Result<Vec<u8>, BioError> {
    let set = crate::fasta::parse_with_policy(fasta_bytes, alphabet, policy)?;
    Ok(encode(&set))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> SequenceSet {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (id, desc, text) in [
            ("q1", "first", "MKVLATGGAR"),
            ("q2", "", "MK"),
            ("q3", "third one", "ARNDCQEGHILKMFPSTWYV"),
        ] {
            let mut s = Sequence::from_text(id, Alphabet::Protein, text.as_bytes()).unwrap();
            s.description = desc.into();
            set.push(s).unwrap();
        }
        set
    }

    #[test]
    fn encode_decode_roundtrip() {
        let set = sample_set();
        let bytes = encode(&set);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn header_fields_are_consistent() {
        let set = sample_set();
        let bytes = encode(&set);
        let slice = SqbSlice::new(&bytes).unwrap();
        assert_eq!(slice.header().n_sequences, 3);
        assert_eq!(slice.header().total_residues, set.total_residues());
        assert_eq!(slice.header().alphabet, Alphabet::Protein);
        assert_eq!(slice.header().version, VERSION);
    }

    #[test]
    fn random_access_reads_single_record() {
        let set = sample_set();
        let bytes = encode(&set);
        let slice = SqbSlice::new(&bytes).unwrap();
        let s = slice.read_sequence(1).unwrap();
        assert_eq!(s.id, "q2");
        assert_eq!(s.text(), "MK");
        // Lengths known without reading records.
        assert_eq!(slice.residue_len(0), Some(10));
        assert_eq!(slice.residue_len(2), Some(20));
        assert_eq!(slice.residue_len(3), None);
    }

    #[test]
    fn out_of_range_record_errors() {
        let bytes = encode(&sample_set());
        let slice = SqbSlice::new(&bytes).unwrap();
        assert!(slice.read_sequence(99).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_set());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(BioError::MalformedSqb(_))));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode(&sample_set());
        bytes[4] = 99;
        assert!(matches!(
            decode(&bytes),
            Err(BioError::UnsupportedSqbVersion(99))
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let bytes = encode(&sample_set());
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 2] {
            assert!(decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn corrupt_residue_code_is_rejected() {
        let set = sample_set();
        let bytes_ok = encode(&set);
        let slice = SqbSlice::new(&bytes_ok).unwrap();
        let offset = slice.index[0].offset as usize;
        // Skip id_len(2)+id+desc_len(2)+desc to hit the first residue byte.
        let s0 = set.get(0).unwrap();
        let residue_at = offset + 2 + s0.id.len() + 2 + s0.description.len();
        let mut bytes = bytes_ok.clone();
        bytes[residue_at] = 250;
        let slice = SqbSlice::new(&bytes).unwrap();
        assert!(slice.read_sequence(0).is_err());
    }

    #[test]
    fn empty_set_roundtrips() {
        let set = SequenceSet::new(Alphabet::Dna);
        let bytes = encode(&set);
        assert_eq!(bytes.len(), HEADER_LEN);
        let back = decode(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.alphabet, Alphabet::Dna);
    }

    #[test]
    fn file_reader_seeks_records() {
        let set = sample_set();
        let bytes = encode(&set);
        let cursor = std::io::Cursor::new(bytes);
        let mut file = SqbFile::from_seekable(cursor).unwrap();
        assert_eq!(file.len(), 3);
        // Read out of order to exercise seeking.
        assert_eq!(file.read_sequence(2).unwrap().id, "q3");
        assert_eq!(file.read_sequence(0).unwrap().text(), "MKVLATGGAR");
        let all = file.read_all().unwrap();
        assert_eq!(all, set);
    }

    #[test]
    fn disk_roundtrip_and_open() {
        let dir = std::env::temp_dir().join("swdual_sqb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sqb");
        let set = sample_set();
        write_file(&set, &path).unwrap();
        let mut file = SqbFile::open(&path).unwrap();
        assert_eq!(file.read_all().unwrap(), set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_writer_matches_batch_encoder() {
        let set = sample_set();
        let cursor = std::io::Cursor::new(Vec::new());
        let mut writer = SqbWriter::new(cursor, Alphabet::Protein).unwrap();
        for seq in &set {
            writer.append(seq).unwrap();
        }
        assert_eq!(writer.len(), 3);
        let cursor = writer.finish().unwrap();
        let streamed = cursor.into_inner();
        // Byte-identical to the in-memory encoder.
        assert_eq!(streamed, encode(&set));
        assert_eq!(decode(&streamed).unwrap(), set);
    }

    #[test]
    fn streaming_writer_rejects_wrong_alphabet() {
        let cursor = std::io::Cursor::new(Vec::new());
        let mut writer = SqbWriter::new(cursor, Alphabet::Dna).unwrap();
        let prot = Sequence::from_text("p", Alphabet::Protein, b"MKV").unwrap();
        assert!(writer.append(&prot).is_err());
        assert!(writer.is_empty());
    }

    #[test]
    fn streaming_writer_empty_file_is_valid() {
        let cursor = std::io::Cursor::new(Vec::new());
        let writer = SqbWriter::new(cursor, Alphabet::Rna).unwrap();
        let bytes = writer.finish().unwrap().into_inner();
        let set = decode(&bytes).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.alphabet, Alphabet::Rna);
    }

    #[test]
    fn streaming_writer_to_disk() {
        let dir = std::env::temp_dir().join("swdual_sqb_stream");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.sqb");
        let set = sample_set();
        let mut writer = SqbWriter::create(&path, Alphabet::Protein).unwrap();
        for seq in &set {
            writer.append(seq).unwrap();
        }
        writer.finish().unwrap();
        let mut file = SqbFile::open(&path).unwrap();
        assert_eq!(file.read_all().unwrap(), set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_id_is_rejected_not_corrupted() {
        let long_id = "x".repeat(u16::MAX as usize + 1);
        let seq = Sequence::from_text(long_id, Alphabet::Protein, b"MKV").unwrap();
        // Streaming writer returns a clean error.
        let cursor = std::io::Cursor::new(Vec::new());
        let mut writer = SqbWriter::new(cursor, Alphabet::Protein).unwrap();
        assert!(matches!(
            writer.append(&seq),
            Err(BioError::MalformedSqb(_))
        ));
        // Batch encoder panics with a clear message rather than writing a
        // corrupt file.
        let set = SequenceSet::from_sequences(Alphabet::Protein, vec![seq]).unwrap();
        let panicked = std::panic::catch_unwind(|| encode(&set));
        assert!(panicked.is_err());
    }

    #[test]
    fn convert_fasta_to_sqb() {
        let fasta = b">a desc here\nMKVL\nAT\n>b\nGG\n";
        let bytes = convert_fasta(
            fasta,
            Alphabet::Protein,
            crate::fasta::ResiduePolicy::Strict,
        )
        .unwrap();
        let set = decode(&bytes).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(0).unwrap().text(), "MKVLAT");
        assert_eq!(set.get(0).unwrap().description, "desc here");
        assert_eq!(set.get(1).unwrap().text(), "GG");
    }
}
