//! Residue alphabets and encoding.
//!
//! The paper (§II-A) treats DNA sequences as strings over `{A,T,G,C}`, RNA
//! over `{A,U,G,C}` and proteins over the 20 standard amino acids. Real
//! databases additionally contain ambiguity codes (`N` for nucleotides,
//! `B/Z/X` for proteins and the rare residues `U`/`O`), so the protein
//! alphabet used here is the 24-letter set conventional for BLOSUM
//! matrices: `ARNDCQEGHILKMFPSTWYVBZX*`.
//!
//! Sequences are *encoded* once at load time: each residue becomes a small
//! integer index so that substitution-matrix lookups inside the dynamic
//! programming recurrences (paper Eqs. 1–4) are plain array indexing.

use crate::error::BioError;
use serde::{Deserialize, Serialize};

/// Sentinel code for a byte that is not part of the alphabet.
pub const INVALID_CODE: u8 = 0xFF;

/// The residue alphabet of a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Alphabet {
    /// DNA: `A C G T` plus ambiguity `N`.
    Dna,
    /// RNA: `A C G U` plus ambiguity `N`.
    Rna,
    /// Protein: the 23 letters of the BLOSUM alphabet plus the terminator
    /// `*` (`ARNDCQEGHILKMFPSTWYVBZX*`).
    Protein,
}

/// Canonical residue order of the protein alphabet; matches the row/column
/// order of the embedded BLOSUM/PAM matrices in [`crate::matrix`].
pub const PROTEIN_RESIDUES: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// Canonical residue order of the DNA alphabet.
pub const DNA_RESIDUES: &[u8; 5] = b"ACGTN";

/// Canonical residue order of the RNA alphabet.
pub const RNA_RESIDUES: &[u8; 5] = b"ACGUN";

impl Alphabet {
    /// Number of distinct residue codes in this alphabet.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Alphabet::Dna | Alphabet::Rna => DNA_RESIDUES.len(),
            Alphabet::Protein => PROTEIN_RESIDUES.len(),
        }
    }

    /// The residues of this alphabet in canonical (encoding) order.
    #[inline]
    pub const fn residues(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => DNA_RESIDUES,
            Alphabet::Rna => RNA_RESIDUES,
            Alphabet::Protein => PROTEIN_RESIDUES,
        }
    }

    /// Stable numeric tag used by the SQB on-disk format.
    #[inline]
    pub const fn tag(self) -> u8 {
        match self {
            Alphabet::Dna => 0,
            Alphabet::Rna => 1,
            Alphabet::Protein => 2,
        }
    }

    /// Inverse of [`Alphabet::tag`].
    pub fn from_tag(tag: u8) -> Option<Alphabet> {
        match tag {
            0 => Some(Alphabet::Dna),
            1 => Some(Alphabet::Rna),
            2 => Some(Alphabet::Protein),
            _ => None,
        }
    }

    /// 256-entry lookup table mapping ASCII bytes (case-insensitive) to
    /// residue codes; unknown bytes map to [`INVALID_CODE`].
    pub fn encode_table(self) -> &'static [u8; 256] {
        match self {
            Alphabet::Dna => &DNA_ENCODE,
            Alphabet::Rna => &RNA_ENCODE,
            Alphabet::Protein => &PROTEIN_ENCODE,
        }
    }

    /// Encode one ASCII residue byte. Returns `None` for bytes outside the
    /// alphabet.
    #[inline]
    pub fn encode_byte(self, byte: u8) -> Option<u8> {
        let code = self.encode_table()[byte as usize];
        (code != INVALID_CODE).then_some(code)
    }

    /// Decode a residue code back to its canonical (upper-case) ASCII byte.
    ///
    /// # Panics
    /// Panics if `code` is out of range for the alphabet; codes produced by
    /// [`Alphabet::encode`] are always in range.
    #[inline]
    pub fn decode_byte(self, code: u8) -> u8 {
        self.residues()[code as usize]
    }

    /// Encode a whole ASCII residue string.
    ///
    /// Unknown residues are reported with their byte offset; this is what
    /// the FASTA loader surfaces to the user when a database contains a
    /// stray character.
    pub fn encode(self, text: &[u8]) -> Result<Vec<u8>, BioError> {
        let table = self.encode_table();
        let mut out = Vec::with_capacity(text.len());
        for (position, &byte) in text.iter().enumerate() {
            let code = table[byte as usize];
            if code == INVALID_CODE {
                return Err(BioError::InvalidResidue { byte, position });
            }
            out.push(code);
        }
        Ok(out)
    }

    /// Encode, mapping any unknown residue to the alphabet's wildcard
    /// (`N` for nucleotides, `X` for proteins) instead of failing.
    ///
    /// Real-world databases (the paper searched UniProt/Ensembl/RefSeq)
    /// occasionally contain non-standard letters; lossy encoding is how
    /// production search tools such as SWIPE handle them.
    pub fn encode_lossy(self, text: &[u8]) -> Vec<u8> {
        let table = self.encode_table();
        let wildcard = self.wildcard_code();
        text.iter()
            .map(|&b| {
                let code = table[b as usize];
                if code == INVALID_CODE {
                    wildcard
                } else {
                    code
                }
            })
            .collect()
    }

    /// Decode a slice of residue codes back to an ASCII string.
    pub fn decode(self, codes: &[u8]) -> String {
        codes.iter().map(|&c| self.decode_byte(c) as char).collect()
    }

    /// The code of the ambiguity wildcard residue (`N` or `X`).
    #[inline]
    pub fn wildcard_code(self) -> u8 {
        match self {
            Alphabet::Dna | Alphabet::Rna => 4, // N
            Alphabet::Protein => 22,            // X
        }
    }

    /// Heuristically detect the alphabet of raw residue text: sequences
    /// made purely of `ACGTN` are DNA, of `ACGUN` are RNA, anything else
    /// is protein. (Same heuristic common FASTA tools apply.)
    pub fn detect(text: &[u8]) -> Alphabet {
        let mut has_u = false;
        let mut has_t = false;
        for &b in text {
            match b.to_ascii_uppercase() {
                b'A' | b'C' | b'G' | b'N' => {}
                b'T' => has_t = true,
                b'U' => has_u = true,
                _ => return Alphabet::Protein,
            }
        }
        if has_u && !has_t {
            Alphabet::Rna
        } else {
            Alphabet::Dna
        }
    }
}

/// Build a 256-entry encode table at compile time.
const fn build_table(residues: &[u8]) -> [u8; 256] {
    let mut table = [INVALID_CODE; 256];
    let mut i = 0;
    while i < residues.len() {
        let upper = residues[i];
        table[upper as usize] = i as u8;
        // Accept lower-case input as well.
        let lower = upper.to_ascii_lowercase();
        table[lower as usize] = i as u8;
        i += 1;
    }
    table
}

static DNA_ENCODE: [u8; 256] = build_table(DNA_RESIDUES);
static RNA_ENCODE: [u8; 256] = build_table(RNA_RESIDUES);
static PROTEIN_ENCODE: [u8; 256] = build_table(PROTEIN_RESIDUES);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_alphabet_has_24_residues() {
        assert_eq!(Alphabet::Protein.size(), 24);
        assert_eq!(Alphabet::Protein.residues().len(), 24);
    }

    #[test]
    fn encode_decode_roundtrip_protein() {
        let text = b"ARNDCQEGHILKMFPSTWYVBZX*";
        let codes = Alphabet::Protein.encode(text).unwrap();
        assert_eq!(codes, (0u8..24).collect::<Vec<_>>());
        assert_eq!(Alphabet::Protein.decode(&codes).as_bytes(), text);
    }

    #[test]
    fn encode_is_case_insensitive() {
        let upper = Alphabet::Protein.encode(b"ACDEFGHIKLMNPQRSTVWY").unwrap();
        let lower = Alphabet::Protein.encode(b"acdefghiklmnpqrstvwy").unwrap();
        assert_eq!(upper, lower);
    }

    #[test]
    fn encode_rejects_invalid_residue_with_position() {
        let err = Alphabet::Dna.encode(b"ACGT!ACGT").unwrap_err();
        match err {
            BioError::InvalidResidue { byte, position } => {
                assert_eq!(byte, b'!');
                assert_eq!(position, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lossy_encoding_maps_unknown_to_wildcard() {
        let codes = Alphabet::Protein.encode_lossy(b"AC?J");
        assert_eq!(codes[0], 0);
        // '?' and 'J' are not in the protein alphabet -> X (code 22).
        assert_eq!(codes[2], Alphabet::Protein.wildcard_code());
        assert_eq!(codes[3], Alphabet::Protein.wildcard_code());
    }

    #[test]
    fn dna_rna_differ_only_in_t_vs_u() {
        assert_eq!(Alphabet::Dna.encode(b"ACGT").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(Alphabet::Rna.encode(b"ACGU").unwrap(), vec![0, 1, 2, 3]);
        assert!(Alphabet::Dna.encode(b"ACGU").is_err());
        assert!(Alphabet::Rna.encode(b"ACGT").is_err());
    }

    #[test]
    fn detection_heuristic() {
        assert_eq!(Alphabet::detect(b"ACGTACGTN"), Alphabet::Dna);
        assert_eq!(Alphabet::detect(b"ACGUACGUN"), Alphabet::Rna);
        assert_eq!(Alphabet::detect(b"MKVLAT"), Alphabet::Protein);
        // Empty input defaults to DNA (arbitrary but stable).
        assert_eq!(Alphabet::detect(b""), Alphabet::Dna);
    }

    #[test]
    fn tags_roundtrip() {
        for a in [Alphabet::Dna, Alphabet::Rna, Alphabet::Protein] {
            assert_eq!(Alphabet::from_tag(a.tag()), Some(a));
        }
        assert_eq!(Alphabet::from_tag(200), None);
    }

    #[test]
    fn wildcard_codes_decode_to_n_and_x() {
        assert_eq!(
            Alphabet::Dna.decode_byte(Alphabet::Dna.wildcard_code()),
            b'N'
        );
        assert_eq!(
            Alphabet::Protein.decode_byte(Alphabet::Protein.wildcard_code()),
            b'X'
        );
    }
}
