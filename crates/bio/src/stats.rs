//! Residue-composition statistics and cell-update (CUPS) accounting.
//!
//! The paper reports throughput in **GCUPS** — billions of dynamic
//! programming *cell updates per second*. One pairwise comparison of a
//! query of length `m` with a database sequence of length `n` updates
//! `m · n` cells; a database search of `q` queries against database `d`
//! updates `Σ|qᵢ| · Σ|dⱼ|` cells. These helpers centralise that
//! arithmetic so every engine and every experiment reports comparable
//! numbers.

use crate::seq::{Sequence, SequenceSet};

/// Number of DP cells of one pairwise comparison.
#[inline]
pub fn pair_cells(query_len: usize, subject_len: usize) -> u64 {
    query_len as u64 * subject_len as u64
}

/// Number of DP cells of one query against a whole database — the size of
/// one SWDUAL *task* (paper §II-C: "Each task is equivalent to the
/// comparison of one [sequence] of the query set to the whole database").
#[inline]
pub fn task_cells(query_len: usize, database_residues: u64) -> u64 {
    query_len as u64 * database_residues
}

/// Total DP cells of a full search: every query against every database
/// sequence.
pub fn search_cells(queries: &SequenceSet, database: &SequenceSet) -> u64 {
    queries.total_residues() * database.total_residues()
}

/// Convert a cell count and a duration (seconds) to GCUPS.
#[inline]
pub fn gcups(cells: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        cells as f64 / seconds / 1e9
    }
}

/// Residue composition (counts per residue code) of sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Composition {
    /// `counts[code]` = occurrences of that residue code.
    pub counts: Vec<u64>,
    /// Total residues counted.
    pub total: u64,
}

impl Composition {
    /// Count composition of a single sequence.
    pub fn of_sequence(seq: &Sequence) -> Composition {
        let mut counts = vec![0u64; seq.alphabet.size()];
        for &c in seq.codes() {
            counts[c as usize] += 1;
        }
        Composition {
            total: seq.len() as u64,
            counts,
        }
    }

    /// Count composition of a whole set.
    pub fn of_set(set: &SequenceSet) -> Composition {
        let mut counts = vec![0u64; set.alphabet.size()];
        for seq in set {
            for &c in seq.codes() {
                counts[c as usize] += 1;
            }
        }
        Composition {
            total: set.total_residues(),
            counts,
        }
    }

    /// Relative frequency of residue code `code` (0.0 when empty).
    pub fn frequency(&self, code: u8) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[code as usize] as f64 / self.total as f64
        }
    }

    /// Shannon entropy of the composition in bits. Random protein is
    /// ≈ 4.19 bits; low-complexity regions are much lower.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        -self
            .counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                p * p.log2()
            })
            .sum::<f64>()
    }
}

/// Summary of the sequence-length distribution of a set; drives task-size
/// estimation in the scheduler and the Table III inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthStats {
    /// Number of sequences summarised.
    pub count: usize,
    /// Shortest sequence length.
    pub min: usize,
    /// Longest sequence length.
    pub max: usize,
    /// Arithmetic mean length.
    pub mean: f64,
    /// Standard deviation of lengths.
    pub std_dev: f64,
    /// Median length.
    pub median: usize,
    /// Sum of all lengths.
    pub total: u64,
}

impl LengthStats {
    /// Compute length statistics of a set. Returns `None` for an empty
    /// set.
    pub fn of_set(set: &SequenceSet) -> Option<LengthStats> {
        if set.is_empty() {
            return None;
        }
        let mut lengths: Vec<usize> = set.iter().map(Sequence::len).collect();
        lengths.sort_unstable();
        let count = lengths.len();
        let total: u64 = lengths.iter().map(|&l| l as u64).sum();
        let mean = total as f64 / count as f64;
        let variance = lengths
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        Some(LengthStats {
            count,
            min: lengths[0],
            max: lengths[count - 1],
            mean,
            std_dev: variance.sqrt(),
            median: lengths[count / 2],
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn set_of(texts: &[&str]) -> SequenceSet {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, t) in texts.iter().enumerate() {
            set.push(
                Sequence::from_text(format!("s{i}"), Alphabet::Protein, t.as_bytes()).unwrap(),
            )
            .unwrap();
        }
        set
    }

    #[test]
    fn pair_and_task_cells() {
        assert_eq!(pair_cells(100, 350), 35_000);
        assert_eq!(task_cells(2500, 193_000_000), 482_500_000_000);
        // Overflow-safe: lengths near u32 max still fit in u64.
        assert_eq!(pair_cells(4_000_000, 4_000_000), 16_000_000_000_000);
    }

    #[test]
    fn search_cells_is_product_of_totals() {
        let q = set_of(&["MKVL", "MK"]); // 6 residues
        let d = set_of(&["MKVLATGGAR", "ARNDC"]); // 15 residues
        assert_eq!(search_cells(&q, &d), 6 * 15);
    }

    #[test]
    fn gcups_arithmetic() {
        assert!((gcups(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        assert!((gcups(1_000_000_000, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(gcups(123, 0.0), 0.0);
        assert_eq!(gcups(123, -1.0), 0.0);
    }

    #[test]
    fn paper_scale_gcups_sanity() {
        // Table IV Uniprot/8 workers: 142.98 s at 136.06 GCUPS implies
        // ~1.95e13 cells. Check our arithmetic reproduces the GCUPS figure.
        let cells = (136.06e9_f64 * 142.98) as u64;
        let g = gcups(cells, 142.98);
        assert!((g - 136.06).abs() < 0.01, "got {g}");
    }

    #[test]
    fn composition_counts_and_frequency() {
        let s = Sequence::from_text("x", Alphabet::Protein, b"AARA").unwrap();
        let comp = Composition::of_sequence(&s);
        let a = Alphabet::Protein.encode_byte(b'A').unwrap();
        let r = Alphabet::Protein.encode_byte(b'R').unwrap();
        assert_eq!(comp.counts[a as usize], 3);
        assert_eq!(comp.counts[r as usize], 1);
        assert!((comp.frequency(a) - 0.75).abs() < 1e-12);
        assert_eq!(comp.total, 4);
    }

    #[test]
    fn composition_of_set_sums_members() {
        let set = set_of(&["AA", "AR"]);
        let comp = Composition::of_set(&set);
        let a = Alphabet::Protein.encode_byte(b'A').unwrap();
        assert_eq!(comp.counts[a as usize], 3);
        assert_eq!(comp.total, 4);
    }

    #[test]
    fn entropy_extremes() {
        let uniform = Sequence::from_text("u", Alphabet::Dna, b"ACGT").unwrap();
        let comp = Composition::of_sequence(&uniform);
        assert!((comp.entropy_bits() - 2.0).abs() < 1e-12);

        let constant = Sequence::from_text("c", Alphabet::Dna, b"AAAA").unwrap();
        assert_eq!(Composition::of_sequence(&constant).entropy_bits(), 0.0);

        let empty = Sequence::from_text("e", Alphabet::Dna, b"").unwrap();
        assert_eq!(Composition::of_sequence(&empty).entropy_bits(), 0.0);
    }

    #[test]
    fn length_stats() {
        let set = set_of(&["M", "MKV", "MKVLA"]); // lengths 1, 3, 5
        let st = LengthStats::of_set(&set).unwrap();
        assert_eq!(st.count, 3);
        assert_eq!(st.min, 1);
        assert_eq!(st.max, 5);
        assert_eq!(st.median, 3);
        assert_eq!(st.total, 9);
        assert!((st.mean - 3.0).abs() < 1e-12);
        let expected_sd = ((4.0 + 0.0 + 4.0) / 3.0_f64).sqrt();
        assert!((st.std_dev - expected_sd).abs() < 1e-12);
    }

    #[test]
    fn length_stats_empty_set() {
        let set = SequenceSet::new(Alphabet::Protein);
        assert!(LengthStats::of_set(&set).is_none());
    }
}
