//! Substitution matrices and scoring schemes.
//!
//! The paper's Figure 1 example scores alignments with simple
//! match/mismatch/gap values (`ma`, `mi`, `g`); protein database search in
//! practice uses a substitution matrix (BLOSUM62 is the default of both
//! SWIPE and CUDASW++, the engines SWDUAL integrates) and the affine-gap
//! model of Gotoh [14] with gap-open (`Gs`) and gap-extend (`Ge`)
//! penalties (paper Eqs. 2–4).
//!
//! A [`Matrix`] is a dense `size × size` table indexed by the *encoded*
//! residue codes of an [`Alphabet`], so a lookup in the DP inner loop is
//! one array access. BLOSUM62 is embedded verbatim (NCBI distribution);
//! any other NCBI-format matrix can be loaded with
//! [`Matrix::parse_ncbi`].

use crate::alphabet::Alphabet;
use crate::error::BioError;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A dense substitution matrix over one alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matrix {
    /// Human-readable name ("BLOSUM62", "match/mismatch(+1/-1)", ...).
    pub name: String,
    /// Alphabet whose residue codes index the table.
    pub alphabet: Alphabet,
    size: usize,
    /// Row-major `size × size` scores.
    scores: Vec<i32>,
}

impl Matrix {
    /// Build a matrix from a row-major score table.
    ///
    /// # Panics
    /// Panics if `scores.len() != alphabet.size()²`.
    pub fn from_scores(name: impl Into<String>, alphabet: Alphabet, scores: Vec<i32>) -> Self {
        let size = alphabet.size();
        assert_eq!(
            scores.len(),
            size * size,
            "score table must be {size}x{size}"
        );
        Matrix {
            name: name.into(),
            alphabet,
            size,
            scores,
        }
    }

    /// Simple match/mismatch matrix over any alphabet, as in the paper's
    /// Figure 1 (`ma = +1`, `mi = -1` there). Comparisons involving the
    /// wildcard residue score `mismatch` (an ambiguous base never counts
    /// as a match).
    pub fn match_mismatch(alphabet: Alphabet, ma: i32, mi: i32) -> Self {
        let size = alphabet.size();
        let wildcard = alphabet.wildcard_code() as usize;
        let mut scores = vec![mi; size * size];
        for i in 0..size {
            if i != wildcard {
                scores[i * size + i] = ma;
            }
        }
        Matrix::from_scores(format!("match/mismatch({ma:+}/{mi:+})"), alphabet, scores)
    }

    /// The NCBI BLASTN default nucleotide scheme (+5/-4).
    pub fn blastn(alphabet: Alphabet) -> Self {
        assert!(
            matches!(alphabet, Alphabet::Dna | Alphabet::Rna),
            "blastn scheme is for nucleotide alphabets"
        );
        let mut m = Matrix::match_mismatch(alphabet, 5, -4);
        m.name = "blastn(+5/-4)".into();
        m
    }

    /// The embedded BLOSUM62 matrix (protein alphabet).
    ///
    /// ```
    /// use swdual_bio::{Alphabet, Matrix};
    /// let m = Matrix::blosum62();
    /// let w = Alphabet::Protein.encode_byte(b'W').unwrap();
    /// assert_eq!(m.score(w, w), 11);
    /// assert!(m.is_symmetric());
    /// ```
    pub fn blosum62() -> &'static Matrix {
        static M: OnceLock<Matrix> = OnceLock::new();
        M.get_or_init(|| {
            Matrix::parse_ncbi("BLOSUM62", BLOSUM62_TEXT).expect("embedded BLOSUM62 must parse")
        })
    }

    /// Alphabet size / table dimension.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Score of substituting residue code `a` with residue code `b`.
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize * self.size + b as usize]
    }

    /// One full row of the table (all scores against residue code `a`).
    /// The striped and inter-sequence kernels build query profiles from
    /// rows.
    #[inline]
    pub fn row(&self, a: u8) -> &[i32] {
        &self.scores[a as usize * self.size..(a as usize + 1) * self.size]
    }

    /// Largest score in the table (used for score-bound computations).
    pub fn max_score(&self) -> i32 {
        self.scores.iter().copied().max().unwrap_or(0)
    }

    /// Smallest score in the table.
    pub fn min_score(&self) -> i32 {
        self.scores.iter().copied().min().unwrap_or(0)
    }

    /// True when the table is symmetric (every biological substitution
    /// matrix is).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.size {
            for j in (i + 1)..self.size {
                if self.scores[i * self.size + j] != self.scores[j * self.size + i] {
                    return false;
                }
            }
        }
        true
    }

    /// Parse an NCBI-format matrix text: `#` comments, a header line of
    /// residue letters, then one labelled row per residue. Rows and
    /// columns may appear in any order; they are mapped onto the protein
    /// alphabet's canonical encoding. Missing residue pairs default to the
    /// minimum score of the table.
    pub fn parse_ncbi(name: impl Into<String>, text: &str) -> Result<Matrix, BioError> {
        let alphabet = Alphabet::Protein;
        let size = alphabet.size();
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));

        let header = lines
            .next()
            .ok_or_else(|| BioError::MalformedFasta("matrix text has no header line".into()))?;
        let columns: Vec<u8> = header
            .split_whitespace()
            .map(|tok| {
                let byte = tok.as_bytes()[0];
                alphabet
                    .encode_byte(byte)
                    .ok_or(BioError::InvalidResidue { byte, position: 0 })
            })
            .collect::<Result<_, _>>()?;

        let min_placeholder = i32::MIN;
        let mut scores = vec![min_placeholder; size * size];
        for line in lines {
            let mut toks = line.split_whitespace();
            let row_letter = toks.next().unwrap();
            let row_code =
                alphabet
                    .encode_byte(row_letter.as_bytes()[0])
                    .ok_or(BioError::InvalidResidue {
                        byte: row_letter.as_bytes()[0],
                        position: 0,
                    })? as usize;
            for (col_idx, tok) in toks.enumerate() {
                let col_code = *columns.get(col_idx).ok_or_else(|| {
                    BioError::MalformedFasta(format!(
                        "row {row_letter} has more scores than header columns"
                    ))
                })? as usize;
                let value: i32 = tok
                    .parse()
                    .map_err(|_| BioError::MalformedFasta(format!("bad score token {tok:?}")))?;
                scores[row_code * size + col_code] = value;
            }
        }

        let filled_min = scores
            .iter()
            .copied()
            .filter(|&s| s != min_placeholder)
            .min()
            .unwrap_or(0);
        for s in &mut scores {
            if *s == min_placeholder {
                *s = filled_min;
            }
        }
        Ok(Matrix::from_scores(name, alphabet, scores))
    }

    /// Format the matrix back into NCBI text (inverse of
    /// [`Matrix::parse_ncbi`] up to whitespace).
    pub fn to_ncbi_text(&self) -> String {
        let residues = self.alphabet.residues();
        let mut out = String::new();
        out.push_str("  ");
        for &r in residues {
            out.push(' ');
            out.push(r as char);
        }
        out.push('\n');
        for (i, &r) in residues.iter().enumerate() {
            out.push(r as char);
            for j in 0..self.size {
                out.push_str(&format!(" {}", self.scores[i * self.size + j]));
            }
            if i + 1 < residues.len() {
                out.push('\n');
            }
        }
        out
    }
}

/// Complete scoring parameters for one search: substitution matrix plus
/// affine gap penalties (paper Eqs. 2–4: `Gs` opens a gap, `Ge` extends
/// it; the first gap character costs `Gs + Ge`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoringScheme {
    /// Substitution matrix.
    pub matrix: Matrix,
    /// Gap-open penalty `Gs` (≥ 0; subtracted).
    pub gap_open: i32,
    /// Gap-extend penalty `Ge` (≥ 0; subtracted).
    pub gap_extend: i32,
}

impl ScoringScheme {
    /// Construct a scheme, validating the penalties.
    ///
    /// # Panics
    /// Panics if either penalty is negative (they are *penalties*,
    /// subtracted by the recurrences).
    pub fn new(matrix: Matrix, gap_open: i32, gap_extend: i32) -> Self {
        assert!(gap_open >= 0, "gap_open is a penalty, must be >= 0");
        assert!(gap_extend >= 0, "gap_extend is a penalty, must be >= 0");
        ScoringScheme {
            matrix,
            gap_open,
            gap_extend,
        }
    }

    /// The default protein search scheme: BLOSUM62, `Gs = 10`, `Ge = 2`
    /// (the defaults of CUDASW++ 2.0, the GPU engine the paper embeds).
    pub fn protein_default() -> Self {
        ScoringScheme::new(Matrix::blosum62().clone(), 10, 2)
    }

    /// The paper's Figure 1 DNA scheme: `ma = +1`, `mi = -1`, `g = -2`
    /// expressed as a linear-gap scheme (`Gs = 0`, `Ge = 2`).
    pub fn figure1_dna() -> Self {
        ScoringScheme::new(Matrix::match_mismatch(Alphabet::Dna, 1, -1), 0, 2)
    }

    /// Cost of the first character of a gap (`Gs + Ge`).
    #[inline]
    pub fn gap_first(&self) -> i32 {
        self.gap_open + self.gap_extend
    }

    /// Substitution score lookup, forwarded to the matrix.
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.matrix.score(a, b)
    }
}

/// BLOSUM62 as distributed by NCBI (24-letter alphabet
/// `ARNDCQEGHILKMFPSTWYVBZX*`).
const BLOSUM62_TEXT: &str = "\
#  Matrix made by matblas from blosum62.iij
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
";

#[cfg(test)]
mod tests {
    use super::*;

    fn code(c: u8) -> u8 {
        Alphabet::Protein.encode_byte(c).unwrap()
    }

    #[test]
    fn blosum62_spot_values() {
        let m = Matrix::blosum62();
        // Diagonal values from the NCBI table.
        assert_eq!(m.score(code(b'A'), code(b'A')), 4);
        assert_eq!(m.score(code(b'W'), code(b'W')), 11);
        assert_eq!(m.score(code(b'C'), code(b'C')), 9);
        // Off-diagonal.
        assert_eq!(m.score(code(b'A'), code(b'R')), -1);
        assert_eq!(m.score(code(b'W'), code(b'G')), -2);
        assert_eq!(m.score(code(b'E'), code(b'D')), 2);
        assert_eq!(m.score(code(b'*'), code(b'*')), 1);
        assert_eq!(m.score(code(b'A'), code(b'*')), -4);
    }

    #[test]
    fn blosum62_is_symmetric() {
        assert!(Matrix::blosum62().is_symmetric());
    }

    #[test]
    fn blosum62_extremes() {
        let m = Matrix::blosum62();
        assert_eq!(m.max_score(), 11); // W/W
        assert_eq!(m.min_score(), -4);
    }

    #[test]
    fn match_mismatch_matrix() {
        let m = Matrix::match_mismatch(Alphabet::Dna, 1, -1);
        let a = Alphabet::Dna.encode_byte(b'A').unwrap();
        let c = Alphabet::Dna.encode_byte(b'C').unwrap();
        let n = Alphabet::Dna.wildcard_code();
        assert_eq!(m.score(a, a), 1);
        assert_eq!(m.score(a, c), -1);
        // Wildcard never matches, not even itself.
        assert_eq!(m.score(n, n), -1);
        assert!(m.is_symmetric());
    }

    #[test]
    fn blastn_scheme() {
        let m = Matrix::blastn(Alphabet::Dna);
        let a = Alphabet::Dna.encode_byte(b'A').unwrap();
        let t = Alphabet::Dna.encode_byte(b'T').unwrap();
        assert_eq!(m.score(a, a), 5);
        assert_eq!(m.score(a, t), -4);
    }

    #[test]
    #[should_panic]
    fn blastn_rejects_protein() {
        let _ = Matrix::blastn(Alphabet::Protein);
    }

    #[test]
    fn row_lookup_matches_score() {
        let m = Matrix::blosum62();
        let a = code(b'A');
        let row = m.row(a);
        for b in 0..m.size() as u8 {
            assert_eq!(row[b as usize], m.score(a, b));
        }
    }

    #[test]
    fn ncbi_text_roundtrip() {
        let m = Matrix::blosum62();
        let text = m.to_ncbi_text();
        let back = Matrix::parse_ncbi("roundtrip", &text).unwrap();
        assert_eq!(back.scores, m.scores);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Matrix::parse_ncbi("bad", "").is_err());
        assert!(Matrix::parse_ncbi("bad", "A R\nA x y").is_err());
        assert!(Matrix::parse_ncbi("bad", "A ?\nA 1 1").is_err());
    }

    #[test]
    fn parse_fills_missing_pairs_with_min() {
        // A 2-residue partial matrix: pairs not given default to the min.
        let m = Matrix::parse_ncbi("partial", "  A R\nA 4 -1\nR -1 5").unwrap();
        assert_eq!(m.score(code(b'A'), code(b'A')), 4);
        // Unlisted pair defaults to min of given scores (-1).
        assert_eq!(m.score(code(b'W'), code(b'W')), -1);
    }

    #[test]
    fn scoring_scheme_accessors() {
        let s = ScoringScheme::protein_default();
        assert_eq!(s.gap_open, 10);
        assert_eq!(s.gap_extend, 2);
        assert_eq!(s.gap_first(), 12);
        assert_eq!(s.score(code(b'A'), code(b'A')), 4);
    }

    #[test]
    #[should_panic]
    fn negative_gap_penalty_panics() {
        let _ = ScoringScheme::new(Matrix::blosum62().clone(), -1, 1);
    }

    #[test]
    fn figure1_scheme_matches_paper_example() {
        // Paper Figure 1: ma=+1, mi=-1, g=-2. Verify the score of the
        // shown alignment: ACTTGTCCG vs A-TTGTCAG = +1 -2 +1 +1 +1 +1 +1 -1 +1 = 4.
        let s = ScoringScheme::figure1_dna();
        let top = Alphabet::Dna.encode(b"ACTTGTCCG").unwrap();
        let bot = b"A-TTGTCAG";
        let mut score = 0;
        for (i, &b) in bot.iter().enumerate() {
            if b == b'-' {
                score -= s.gap_first() - s.gap_open; // linear gap: Ge each
            } else {
                let bc = Alphabet::Dna.encode_byte(b).unwrap();
                score += s.score(top[i], bc);
            }
        }
        assert_eq!(score, 4);
    }
}
