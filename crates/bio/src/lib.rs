//! # swdual-bio — biological sequence substrate
//!
//! This crate provides every sequence-handling primitive the SWDUAL
//! reproduction needs (paper §II and §IV):
//!
//! * [`alphabet`] — DNA / RNA / protein alphabets and residue encoding,
//! * [`seq`] — the owned [`Sequence`] record type and borrowed views,
//! * [`fasta`] — a streaming FASTA reader/writer ([17] in the paper),
//! * [`fai`] — `.fai`-style FASTA random access (the indexed-text
//!   alternative the paper's SQB format is argued against),
//! * [`sqb`] — the paper's custom *binary database format* with an index
//!   allowing random access to any sequence (paper §IV, last paragraphs),
//! * [`matrix`] — substitution matrices (BLOSUM / PAM families plus simple
//!   match/mismatch scoring as in the paper's Figure 1 example),
//! * [`stats`] — residue-composition and cell-update (CUPS) accounting.
//!
//! Everything downstream (`swdual-align`, `swdual-gpusim`, the runtime)
//! consumes sequences already *encoded* as small integers so that
//! substitution-matrix lookups are simple array indexing in the hot loops.

pub mod alphabet;
pub mod error;
pub mod fai;
pub mod fasta;
pub mod karlin;
pub mod matrix;
pub mod seq;
pub mod sqb;
pub mod stats;
pub mod translate;

pub use alphabet::Alphabet;
pub use error::BioError;
pub use matrix::{Matrix, ScoringScheme};
pub use seq::{Sequence, SequenceSet};
