//! Error type shared by the parsing and encoding layers.

use std::fmt;

/// Errors produced while parsing, encoding or (de)serialising sequences.
#[derive(Debug)]
pub enum BioError {
    /// A residue character is not part of the target alphabet.
    InvalidResidue {
        /// The offending byte as found in the input.
        byte: u8,
        /// Byte offset of the residue within its sequence.
        position: usize,
    },
    /// A FASTA record was structurally malformed (e.g. data before the
    /// first `>` header).
    MalformedFasta(String),
    /// The SQB binary file failed a structural check (bad magic, truncated
    /// index, out-of-range offsets...).
    MalformedSqb(String),
    /// Version field of an SQB file is not supported by this build.
    UnsupportedSqbVersion(u16),
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A sequence set was empty where at least one record is required.
    EmptySet,
}

impl fmt::Display for BioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BioError::InvalidResidue { byte, position } => write!(
                f,
                "invalid residue byte 0x{byte:02x} ({:?}) at position {position}",
                *byte as char
            ),
            BioError::MalformedFasta(msg) => write!(f, "malformed FASTA: {msg}"),
            BioError::MalformedSqb(msg) => write!(f, "malformed SQB file: {msg}"),
            BioError::UnsupportedSqbVersion(v) => {
                write!(f, "unsupported SQB format version {v}")
            }
            BioError::Io(e) => write!(f, "I/O error: {e}"),
            BioError::EmptySet => write!(f, "sequence set is empty"),
        }
    }
}

impl std::error::Error for BioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BioError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BioError {
    fn from(e: std::io::Error) -> Self {
        BioError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = BioError::InvalidResidue {
            byte: b'!',
            position: 7,
        };
        let s = e.to_string();
        assert!(s.contains("0x21"));
        assert!(s.contains("position 7"));

        assert!(BioError::MalformedFasta("x".into())
            .to_string()
            .contains("FASTA"));
        assert!(BioError::UnsupportedSqbVersion(9).to_string().contains('9'));
        assert!(BioError::EmptySet.to_string().contains("empty"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = BioError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }
}
