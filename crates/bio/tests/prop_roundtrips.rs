//! Property-based tests for the sequence substrate: encoding, FASTA and
//! SQB round-trips must be lossless for arbitrary inputs.

use proptest::prelude::*;
use swdual_bio::alphabet::Alphabet;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::{fasta, sqb};

/// Strategy: residue text over a given alphabet (canonical letters only).
fn residue_text(alphabet: Alphabet, max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    let residues: Vec<u8> = alphabet.residues().to_vec();
    prop::collection::vec(prop::sample::select(residues), 0..max_len)
}

/// Strategy: a plausible FASTA identifier (no whitespace, nonempty).
fn identifier() -> impl Strategy<Value = String> {
    prop::string::string_regex("[A-Za-z0-9_.|-]{1,20}").unwrap()
}

/// Strategy: a sequence set over the protein alphabet.
fn protein_set(max_seqs: usize, max_len: usize) -> impl Strategy<Value = SequenceSet> {
    prop::collection::vec(
        (identifier(), residue_text(Alphabet::Protein, max_len)),
        0..max_seqs,
    )
    .prop_map(|records| {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, (id, text)) in records.into_iter().enumerate() {
            let seq = Sequence::from_text(format!("{id}_{i}"), Alphabet::Protein, &text).unwrap();
            set.push(seq).unwrap();
        }
        set
    })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(text in residue_text(Alphabet::Protein, 400)) {
        // Exclude '*' ambiguity: '*' is canonical so roundtrip holds anyway.
        let codes = Alphabet::Protein.encode(&text).unwrap();
        let decoded = Alphabet::Protein.decode(&codes);
        prop_assert_eq!(decoded.as_bytes(), &text[..]);
    }

    #[test]
    fn lossy_encode_never_fails_and_stays_in_range(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        for alphabet in [Alphabet::Dna, Alphabet::Rna, Alphabet::Protein] {
            let codes = alphabet.encode_lossy(&bytes);
            prop_assert_eq!(codes.len(), bytes.len());
            prop_assert!(codes.iter().all(|&c| (c as usize) < alphabet.size()));
        }
    }

    #[test]
    fn sqb_roundtrip(set in protein_set(12, 300)) {
        let bytes = sqb::encode(&set);
        let back = sqb::decode(&bytes).unwrap();
        prop_assert_eq!(back, set);
    }

    #[test]
    fn sqb_random_access_agrees_with_full_decode(set in protein_set(12, 300), seed in any::<u64>()) {
        let bytes = sqb::encode(&set);
        let slice = sqb::SqbSlice::new(&bytes).unwrap();
        prop_assert_eq!(slice.len(), set.len());
        if !set.is_empty() {
            let i = (seed % set.len() as u64) as usize;
            let seq = slice.read_sequence(i).unwrap();
            prop_assert_eq!(&seq, set.get(i).unwrap());
            prop_assert_eq!(slice.residue_len(i), Some(set.get(i).unwrap().len() as u32));
        }
    }

    #[test]
    fn sqb_never_panics_on_corrupt_input(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Arbitrary bytes: decode must return an error, never panic.
        let _ = sqb::decode(&bytes);
        // Also corrupt a valid file at one position.
        let set = SequenceSet::new(Alphabet::Protein);
        let mut valid = sqb::encode(&set);
        if !bytes.is_empty() && !valid.is_empty() {
            let pos = bytes[0] as usize % valid.len();
            valid[pos] ^= 0xA5;
            let _ = sqb::decode(&valid);
        }
    }

    #[test]
    fn fasta_roundtrip(set in protein_set(8, 250)) {
        // FASTA cannot represent empty-id records; ids from `identifier()`
        // are always nonempty. Descriptions default to empty.
        let text = fasta::to_string(&set);
        let back = fasta::parse(text.as_bytes(), Alphabet::Protein).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for (a, b) in back.iter().zip(set.iter()) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(&a.residues, &b.residues);
        }
    }

    #[test]
    fn fasta_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = fasta::parse_with_policy(&bytes, Alphabet::Protein, fasta::ResiduePolicy::Lossy);
        let _ = fasta::parse(&bytes, Alphabet::Dna);
    }
}
