//! Hot-path guard: a *disabled* recorder must cost the per-job path
//! nothing — no heap allocation, and (transitively) no lock, since the
//! only locks live behind the allocation-free early return.
//!
//! This file holds a single test so the counting allocator observes a
//! quiet process: no sibling tests run concurrently in this binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use swdual_obs::{Obs, Track};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The shape of the worker's per-job instrumentation (see
/// `swdual_runtime::worker`): clock reads bracketing the compute, then
/// a guarded span + counters + live-metrics registry updates. With a
/// disabled recorder this entire sequence must not allocate.
fn per_job_hot_path(obs: &Obs, worker_id: usize, task_id: usize) {
    let wall_start = obs.now();
    // The profiler gate the worker consults before choosing the phased
    // scoring path; a disabled recorder must answer without allocating.
    let phased = obs.is_profiling();
    let wall_end = obs.now();
    if obs.is_enabled() {
        obs.span(
            Track::Worker(worker_id),
            &format!("task-{task_id}"),
            wall_start,
            wall_end - wall_start,
            Some((0.0, 1.0)),
            &[("task", task_id as f64)],
        );
    }
    if phased {
        // Phase spans mirroring `record_phase_spans`; never reached on
        // the disabled path, but kept so the guard measures the same
        // instruction sequence the worker runs.
        for name in ["phase_profile_build", "phase_dp_inner", "phase_traceback"] {
            obs.span(
                Track::Worker(worker_id),
                name,
                wall_start,
                wall_end - wall_start,
                Some((0.0, 0.5)),
                &[("task", task_id as f64)],
            );
        }
    }
    obs.counter("jobs_completed", 1.0);
    obs.counter("cells_computed", 1000.0);
    // The registry side of the per-job path: a disabled registry must
    // early-return before touching shards or building keys.
    let metrics = obs.metrics().for_shard(worker_id);
    let labels = [("worker", "0")];
    metrics.observe("job_wall_seconds", &labels, wall_end - wall_start);
    metrics.counter("worker_jobs", &labels, 1.0);
    metrics.gauge("worker_mcups", &labels, 1.0);
}

#[test]
fn disabled_obs_hot_path_allocates_nothing() {
    let disabled = Obs::disabled();
    // Warm up any lazy initialisation outside the measured window.
    per_job_hot_path(&disabled, 0, 0);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for task in 0..10_000usize {
        per_job_hot_path(&disabled, task % 4, task);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled tracing must be allocation-free in the per-job path"
    );

    // The live-bus surface on a disabled recorder is equally free:
    // subscribing yields an inert handle and the per-job path (which
    // now also publishes to the bus inside `span`) stays at zero.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let tap = disabled.subscribe();
    assert!(!tap.is_live());
    assert!(tap.try_recv().is_none());
    assert_eq!(tap.dropped(), 0);
    assert_eq!(disabled.bus_dropped_events(), 0);
    for task in 0..1_000usize {
        per_job_hot_path(&disabled, task % 4, task);
    }
    drop(tap);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled bus subscribe/poll must be allocation-free"
    );

    // A disabled recorder also refuses to turn profiling on — the
    // whole profiled branch stays unreachable and allocation-free.
    disabled.set_profiling(true);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for task in 0..1_000usize {
        per_job_hot_path(&disabled, task % 4, task);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "set_profiling on a disabled recorder must stay allocation-free"
    );

    // Sanity: the same path with an enabled recorder does record (and
    // therefore allocates), so the guard above is measuring the right
    // thing.
    let enabled = Obs::enabled();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    per_job_hot_path(&enabled, 0, 42);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(after > before, "enabled recorder must actually record");
    assert_eq!(enabled.event_count(), 1);

    // And with the profiler on, the phase spans land too.
    let profiled = Obs::enabled();
    profiled.set_profiling(true);
    per_job_hot_path(&profiled, 0, 7);
    assert_eq!(
        profiled.event_count(),
        4,
        "task span + three phase spans when profiling"
    );
}
