//! Device-zoo benchmark: modelled makespan, 2λ margin and GCUPS for
//! the paper workload on every zoo class (and the full mixed pool),
//! plus the wall cost of planning a zoo run (conservative schedule +
//! true-curve replay).
//!
//! Besides the console report, a full run records the per-class numbers
//! to `BENCH_zoo.json` at the workspace root and appends a stamped
//! entry to the `BENCH_trend.json` ledger, which `swdual diff --bench`
//! compares and can gate on.

use std::time::Instant;
use swdual_gpusim::DeviceClass;
use swdual_obs::trend::{TrendEntry, TrendLedger};
use swdual_platform::run_zoo;
use swdual_platform::workload::{DatabaseSpec, Workload};

/// Median ns/op over `samples` timed batches of `iters` calls each.
fn measure<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> f64 {
    op(); // warm-up
    let mut nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        nanos.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    nanos.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    nanos[nanos.len() / 2]
}

fn main() {
    // `cargo bench -- --test` (CI smoke) only checks the benches run.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (samples, iters) = if test_mode { (1, 1) } else { (15, 50) };

    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let cpus = 4;

    // Modelled outcomes per zoo composition: each class twice, then the
    // full mixed pool.
    let mut compositions: Vec<(String, Vec<DeviceClass>)> = DeviceClass::ALL
        .iter()
        .map(|&c| (c.name().to_string(), vec![c, c]))
        .collect();
    compositions.push(("mixed".to_string(), DeviceClass::ALL.to_vec()));

    let mut metrics: Vec<(String, f64)> = Vec::new();
    for (label, mix) in &compositions {
        let outcome = run_zoo(&workload, cpus, mix);
        assert!(
            outcome.bound_holds,
            "2λ must HOLD for zoo {label}: realized {} vs 2λ {}",
            outcome.realized_makespan, outcome.two_lambda_bound
        );
        let margin = outcome.two_lambda_bound - outcome.realized_makespan;
        println!(
            "zoo/{label}  realized {:.1}s  planned {:.1}s  2λ {:.1}s (margin {:.1}s)  {:.1} GCUPS  {} GPU tasks",
            outcome.realized_makespan,
            outcome.planned_makespan,
            outcome.two_lambda_bound,
            margin,
            outcome.gcups,
            outcome.gpu_tasks
        );
        metrics.push((
            format!("{label}_realized_makespan_s"),
            outcome.realized_makespan,
        ));
        metrics.push((format!("{label}_gcups"), outcome.gcups));
    }

    // Planning cost: schedule + replay of the mixed zoo.
    let mixed = DeviceClass::ALL.to_vec();
    let plan_ns = measure(samples, iters, || {
        std::hint::black_box(run_zoo(&workload, cpus, &mixed));
    });
    println!("zoo/plan_mixed  median {plan_ns:.1} ns/op");
    metrics.push(("plan_mixed_ns".to_string(), plan_ns));

    if test_mode {
        return;
    }

    // Record the per-class numbers for later PRs to diff against.
    let mut json = String::from("{\n  \"bench\": \"zoo\",\n  \"unit\": \"mixed\",\n");
    json.push_str("  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {value:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_zoo.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Append to the trend ledger for `swdual diff --bench`.
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let pairs: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let entry = TrendEntry::new("zoo", stamp, "mixed", &pairs);
    let trend_path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trend.json"
    ));
    match TrendLedger::append_to_file(trend_path, entry) {
        Ok(()) => println!("appended zoo entry to {}", trend_path.display()),
        Err(e) => eprintln!("could not append to {}: {e}", trend_path.display()),
    }
}
