//! Criterion benchmarks of the scheduler itself: the paper claims
//! `O(n log n)` per binary-search step for the greedy variant; these
//! benches measure the real cost of a step and of the full binary
//! search across instance sizes, plus the DP variant's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdual_sched::binsearch::{dual_approx_schedule, lower_bound, BinarySearchConfig};
use swdual_sched::dual::{dual_step, KnapsackMethod};
use swdual_sched::knapsack::DpConfig;
use swdual_sched::{PlatformSpec, Task, TaskSet};

fn instance(n: usize) -> TaskSet {
    let mut state = 0xBEEFu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    TaskSet::new(
        (0..n)
            .map(|id| {
                let gpu = 0.5 + 4.0 * next();
                let accel = 1.0 + 9.0 * next();
                Task::new(id, gpu * accel, gpu)
            })
            .collect(),
    )
}

fn bench_dual_step(c: &mut Criterion) {
    let platform = PlatformSpec::new(8, 8);
    let mut group = c.benchmark_group("dual_step_greedy");
    for n in [40usize, 400, 4000] {
        let tasks = instance(n);
        let lambda = lower_bound(&tasks, &platform) * 1.2;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| dual_step(&tasks, &platform, lambda, KnapsackMethod::Greedy))
        });
    }
    group.finish();
}

fn bench_binary_search(c: &mut Criterion) {
    let platform = PlatformSpec::new(8, 8);
    let mut group = c.benchmark_group("binary_search_full");
    group.sample_size(10);
    for n in [40usize, 400, 4000] {
        let tasks = instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default()))
        });
    }
    group.finish();
}

fn bench_dp_vs_greedy(c: &mut Criterion) {
    let platform = PlatformSpec::new(4, 4);
    let tasks = instance(40);
    let mut group = c.benchmark_group("knapsack_method_40tasks");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default()))
    });
    group.bench_function("dp512", |b| {
        b.iter(|| {
            dual_approx_schedule(
                &tasks,
                &platform,
                BinarySearchConfig {
                    method: KnapsackMethod::Dp(DpConfig { resolution: 512 }),
                    ..BinarySearchConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dual_step,
    bench_binary_search,
    bench_dp_vs_greedy
);
criterion_main!(benches);
