//! Criterion benchmarks of the GPU device simulator: kernel dispatch
//! overhead and the warp-efficiency effect of sorted residency.

use criterion::{criterion_group, criterion_main, Criterion};
use swdual_bio::ScoringScheme;
use swdual_datagen::{synthetic_database, LengthModel};
use swdual_gpusim::{DeviceSpec, GpuDevice};

fn device_search(c: &mut Criterion) {
    let scheme = ScoringScheme::protein_default();
    let db = synthetic_database("gpu", 128, LengthModel::protein_database(300.0), 21);
    let qset = synthetic_database("q", 1, LengthModel::Fixed(300), 22);
    let query = qset.get(0).unwrap().codes().to_vec();

    let mut group = c.benchmark_group("gpusim_search_128seqs");
    group.sample_size(10);
    for (label, sorted) in [("sorted_residency", true), ("unsorted_residency", false)] {
        group.bench_function(label, |b| {
            let mut device = GpuDevice::new(DeviceSpec::tesla_c2050());
            let resident = device.upload(&db, sorted).unwrap();
            b.iter(|| device.search(&query, &resident, &scheme))
        });
    }
    group.finish();
}

fn chunked_vs_resident(c: &mut Criterion) {
    use swdual_gpusim::chunked::chunked_search;
    let scheme = ScoringScheme::protein_default();
    let db = synthetic_database("gpu", 64, LengthModel::Fixed(200), 23);
    let qset = synthetic_database("q", 1, LengthModel::Fixed(200), 24);
    let query = qset.get(0).unwrap().codes().to_vec();

    let mut group = c.benchmark_group("gpusim_chunking");
    group.sample_size(10);
    group.bench_function("resident", |b| {
        let mut device = GpuDevice::new(DeviceSpec::toy(1_000_000));
        let resident = device.upload(&db, true).unwrap();
        b.iter(|| device.search(&query, &resident, &scheme))
    });
    group.bench_function("chunked_4x", |b| {
        b.iter(|| {
            // Device fits only a quarter of the database at a time.
            let mut device = GpuDevice::new(DeviceSpec::toy(db.total_residues() / 4));
            chunked_search(&mut device, &db, &query, &scheme, true).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, device_search, chunked_vs_resident);
criterion_main!(benches);
