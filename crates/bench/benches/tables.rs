//! Criterion wrapper over the table regenerators: one bench per paper
//! table/figure, so `cargo bench` alone exercises every experiment and
//! reports how long regeneration takes.

use criterion::{criterion_group, criterion_main, Criterion};
use swdual_bench::execute::{execute_reduced, ExecuteConfig};
use swdual_bench::{ablation, tables};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    group.bench_function("table2_fig7", |b| b.iter(tables::table2));
    group.bench_function("table4_fig8", |b| b.iter(tables::table4));
    group.bench_function("table5_fig9", |b| b.iter(tables::table5));
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("policy", |b| b.iter(ablation::ablation_policy));
    group.bench_function("binsearch", |b| b.iter(ablation::ablation_binsearch));
    group.finish();
}

fn bench_reduced_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduced_execution");
    group.sample_size(10);
    group.bench_function("tiny_end_to_end", |b| {
        b.iter(|| {
            execute_reduced(ExecuteConfig {
                db_scale: 0.0002,
                queries: 2,
                seed: 1,
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_ablations,
    bench_reduced_execution
);
criterion_main!(benches);
