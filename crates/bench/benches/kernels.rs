//! Kernel throughput: per-backend MCUPS of the striped byte and 16-bit
//! kernels, the tiered pipeline, and the profile-cache amortization.
//!
//! For every SIMD backend reachable on this host (AVX2 / NEON /
//! portable / scalar — see `swdual_align::dispatch`), a full run scores
//! one 400-residue query against a 128 × ~300 protein database chunk
//! through each kernel tier and reports million cell updates per second
//! (MCUPS). The scalar lane-array backend is the baseline every other
//! backend's speedup is stated against — the acceptance bar for the
//! kernel sprint is ≥ 2× on the byte kernel for at least one dispatched
//! backend.
//!
//! Outputs of a full run (`cargo bench -p swdual-bench --bench kernels`):
//!
//! * `BENCH_kernels.json` at the workspace root (or `$SWDUAL_BENCH_DIR`):
//!   per-backend MCUPS, ns/cell, speedups vs scalar, cache timings.
//! * One `kernels` entry appended to the `BENCH_trend.json` ledger
//!   (ns/cell, lower is better) for `swdual diff --bench` to gate on.
//!
//! `cargo bench ... -- --test` is the CI smoke mode: it prints the
//! active backend (`backend: avx2`), runs every backend once for
//! correctness, and skips the timed passes and file writes.

use std::time::Instant;
use swdual_align::dispatch::{Backend, QueryProfiles};
use swdual_align::profile_cache::ProfileCache;
use swdual_align::scalar::gotoh_score;
use swdual_align::tiered::{tiered_score, TierStats};
use swdual_bio::ScoringScheme;
use swdual_datagen::{synthetic_database, LengthModel};
use swdual_obs::trend::{TrendEntry, TrendLedger};

/// Median ns/op over `samples` timed batches of `iters` calls each.
fn measure<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> f64 {
    op(); // warm-up
    let mut nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        nanos.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    nanos.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    nanos[nanos.len() / 2]
}

/// Per-backend timing results for one database pass (ns per pass).
struct BackendResult {
    backend: Backend,
    striped8_ns: f64,
    striped16_ns: f64,
    tiered_ns: f64,
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");

    // The line CI greps to assert which backend dispatched.
    println!("backend: {}", Backend::active().name());
    println!(
        "available: {}",
        Backend::available()
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(",")
    );

    let scheme = ScoringScheme::protein_default();
    let (n_subjects, subject_len, query_len) = if test_mode {
        (8, 60, 80)
    } else {
        (128, 300, 400)
    };
    let db = synthetic_database("bench", n_subjects, LengthModel::Fixed(subject_len), 11);
    let qset = synthetic_database("q", 1, LengthModel::Fixed(query_len), 12);
    let query = qset.get(0).expect("query generated").codes().to_vec();
    let subjects: Vec<&[u8]> = db.iter().map(|s| s.codes()).collect();
    let cells: f64 = subjects
        .iter()
        .map(|s| (query.len() * s.len()) as f64)
        .sum();

    // Correctness first, always (smoke mode is exactly this): every
    // backend must reproduce the scalar Gotoh scores through the tier
    // ladder before we bother timing it.
    let expected: Vec<i32> = subjects
        .iter()
        .map(|s| gotoh_score(&query, s, &scheme))
        .collect();
    for backend in Backend::available() {
        let profiles = QueryProfiles::build_for(backend, &query, &scheme.matrix);
        let mut stats = TierStats::default();
        let got: Vec<i32> = subjects
            .iter()
            .map(|s| tiered_score(&profiles, s, &scheme, &mut stats))
            .collect();
        assert_eq!(got, expected, "backend {backend} diverged from scalar");
        println!(
            "check/{}  ok ({} subjects: {} byte, {} escalated-16, {} scalar)",
            backend,
            stats.subjects,
            stats.byte_resolved,
            stats.escalated_16,
            stats.escalated_scalar
        );
    }

    if test_mode {
        // Smoke also covers the cache round trip.
        let cache = ProfileCache::default();
        cache.get_or_build(&query, &scheme.matrix);
        cache.get_or_build(&query, &scheme.matrix);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        println!("smoke ok");
        return;
    }

    let (samples, iters) = (15, 8);
    let mcups = |ns: f64| cells / ns * 1e3; // cells per ns → MCUPS
    let ns_per_cell = |ns: f64| ns / cells;

    // ---- per-backend kernel passes ----
    let mut results: Vec<BackendResult> = Vec::new();
    for backend in Backend::available() {
        let profiles = QueryProfiles::build_for(backend, &query, &scheme.matrix);

        // Byte tier only. Unresolved (saturated) subjects re-run per
        // pass too — on this workload none saturate, so this is the pure
        // byte kernel.
        let striped8_ns = measure(samples, iters, || {
            for s in &subjects {
                std::hint::black_box(profiles.score8(s, &scheme));
            }
        });
        // 16-bit tier only.
        let striped16_ns = measure(samples, iters, || {
            for s in &subjects {
                std::hint::black_box(profiles.score16(s, &scheme));
            }
        });
        // The production path: byte → 16-bit → scalar ladder.
        let tiered_ns = measure(samples, iters, || {
            let mut stats = TierStats::default();
            for s in &subjects {
                std::hint::black_box(tiered_score(&profiles, s, &scheme, &mut stats));
            }
        });

        println!(
            "kernels/{}  striped8 {:8.1} MCUPS   striped16 {:8.1} MCUPS   tiered {:8.1} MCUPS",
            backend,
            mcups(striped8_ns),
            mcups(striped16_ns),
            mcups(tiered_ns),
        );
        results.push(BackendResult {
            backend,
            striped8_ns,
            striped16_ns,
            tiered_ns,
        });
    }

    let scalar = results
        .iter()
        .find(|r| r.backend == Backend::Scalar)
        .expect("scalar backend always available");
    let scalar8_ns = scalar.striped8_ns;
    let scalar16_ns = scalar.striped16_ns;

    // ---- profile build vs cache lookup ----
    let build_ns = measure(samples, 4, || {
        std::hint::black_box(QueryProfiles::build(&query, &scheme.matrix));
    });
    let cache = ProfileCache::default();
    cache.get_or_build(&query, &scheme.matrix); // warm
    let lookup_ns = measure(samples, 100, || {
        std::hint::black_box(cache.get_or_build(&query, &scheme.matrix));
    });
    println!(
        "profile_cache/build {build_ns:.0} ns   cached_lookup {lookup_ns:.0} ns   amortization {:.0}x",
        if lookup_ns > 0.0 { build_ns / lookup_ns } else { 0.0 }
    );

    // ---- BENCH_kernels.json ----
    let out_dir = std::env::var("SWDUAL_BENCH_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string());
    let mut json = String::from("{\n  \"bench\": \"kernels\",\n  \"unit\": \"mcups\",\n");
    json.push_str(&format!(
        "  \"host_backend\": \"{}\",\n",
        Backend::active().name()
    ));
    json.push_str(&format!(
        "  \"workload\": {{ \"query_len\": {}, \"subjects\": {}, \"subject_len\": {}, \"cells\": {} }},\n",
        query.len(),
        subjects.len(),
        subject_len,
        cells as u64
    ));
    json.push_str("  \"backends\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{ \"striped8_mcups\": {:.1}, \"striped16_mcups\": {:.1}, \"tiered_mcups\": {:.1}, \"striped8_ns_per_cell\": {:.4}, \"striped16_ns_per_cell\": {:.4} }}{}\n",
            r.backend,
            mcups(r.striped8_ns),
            mcups(r.striped16_ns),
            mcups(r.tiered_ns),
            ns_per_cell(r.striped8_ns),
            ns_per_cell(r.striped16_ns),
            comma
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"speedup_vs_scalar\": {\n");
    let dispatched: Vec<&BackendResult> = results
        .iter()
        .filter(|r| r.backend != Backend::Scalar)
        .collect();
    for (i, r) in dispatched.iter().enumerate() {
        let comma = if i + 1 < dispatched.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{ \"striped8\": {:.2}, \"striped16\": {:.2} }}{}\n",
            r.backend,
            scalar8_ns / r.striped8_ns,
            scalar16_ns / r.striped16_ns,
            comma
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"profile_cache\": {{ \"build_ns\": {build_ns:.0}, \"cached_lookup_ns\": {lookup_ns:.0} }},\n"
    ));
    json.push_str("  \"acceptance_striped8_speedup_floor\": 2.0\n}\n");
    let path = format!("{}/BENCH_kernels.json", out_dir.trim_end_matches('/'));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // ---- trend ledger (ns/cell: lower is better, the diff gate's
    // polarity) ----
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let mut pairs: Vec<(String, f64)> = Vec::new();
    for r in &results {
        pairs.push((
            format!("{}_striped8", r.backend),
            ns_per_cell(r.striped8_ns),
        ));
        pairs.push((
            format!("{}_striped16", r.backend),
            ns_per_cell(r.striped16_ns),
        ));
        pairs.push((format!("{}_tiered", r.backend), ns_per_cell(r.tiered_ns)));
    }
    let pair_refs: Vec<(&str, f64)> = pairs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let entry = TrendEntry::new("kernels", stamp, "ns_per_cell", &pair_refs);
    let trend_path = format!("{}/BENCH_trend.json", out_dir.trim_end_matches('/'));
    match TrendLedger::append_to_file(std::path::Path::new(&trend_path), entry) {
        Ok(()) => println!("appended kernels to {trend_path}"),
        Err(e) => eprintln!("could not append to {trend_path}: {e}"),
    }
}
