//! Criterion micro-benchmarks of the alignment kernels: real GCUPS of
//! each engine on this host (the per-worker rates behind the paper's
//! baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use swdual_align::engine::EngineKind;
use swdual_align::linspace;
use swdual_align::par_search::par_score_many;
use swdual_align::profile::StripedProfile;
use swdual_align::striped::striped_score_profile;
use swdual_align::striped8::striped8_score_exact;
use swdual_align::traceback;
use swdual_bio::ScoringScheme;
use swdual_datagen::{synthetic_database, LengthModel};

fn kernel_pairwise(c: &mut Criterion) {
    let scheme = ScoringScheme::protein_default();
    let db = synthetic_database("bench", 2, LengthModel::Fixed(400), 1);
    let query = db.get(0).unwrap().codes().to_vec();
    let subject = db.get(1).unwrap().codes().to_vec();
    let cells = (query.len() * subject.len()) as u64;

    let mut group = c.benchmark_group("pairwise_400x400");
    group.throughput(Throughput::Elements(cells));
    for kind in EngineKind::ALL {
        let engine = kind.build();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| engine.score(&query, &subject, &scheme))
        });
    }
    // The dual-precision byte pipeline (not an EngineKind: it composes
    // the striped kernels).
    group.bench_function("striped8", |b| {
        b.iter(|| striped8_score_exact(&query, &subject, &scheme))
    });
    group.finish();
}

fn traceback_vs_linear_space(c: &mut Criterion) {
    // Alignment reconstruction: full-matrix vs Myers-Miller.
    let scheme = ScoringScheme::protein_default();
    let db = synthetic_database("bench", 2, LengthModel::Fixed(800), 7);
    let query = db.get(0).unwrap().codes().to_vec();
    let subject = db.get(1).unwrap().codes().to_vec();
    let mut group = c.benchmark_group("traceback_800x800");
    group.sample_size(10);
    group.bench_function("full_matrix_local", |b| {
        b.iter(|| traceback::local(&query, &subject, &scheme))
    });
    group.bench_function("linear_space_local", |b| {
        b.iter(|| linspace::local_linear_space(&query, &subject, &scheme))
    });
    group.finish();
}

fn parallel_database_pass(c: &mut Criterion) {
    // One query vs 256 subjects: serial engine pass vs rayon pass.
    let scheme = ScoringScheme::protein_default();
    let db = synthetic_database("bench", 256, LengthModel::Fixed(250), 11);
    let qset = synthetic_database("q", 1, LengthModel::Fixed(400), 12);
    let query = qset.get(0).unwrap().codes().to_vec();
    let refs: Vec<&[u8]> = db.iter().map(|s| s.codes()).collect();
    let cells: u64 = refs.iter().map(|s| (s.len() * query.len()) as u64).sum();
    let mut group = c.benchmark_group("database_pass_256x250");
    group.throughput(Throughput::Elements(cells));
    group.sample_size(10);
    let engine = EngineKind::InterSeq.build();
    group.bench_function("serial_interseq", |b| {
        b.iter(|| engine.score_many(&query, &refs, &scheme))
    });
    group.bench_function("rayon_interseq", |b| {
        b.iter(|| par_score_many(&query, &refs, &scheme, EngineKind::InterSeq))
    });
    group.finish();
}

fn kernel_database_pass(c: &mut Criterion) {
    let scheme = ScoringScheme::protein_default();
    let db = synthetic_database("bench", 128, LengthModel::Fixed(300), 2);
    let query = synthetic_database("q", 1, LengthModel::Fixed(500), 3);
    let query = query.get(0).unwrap().codes().to_vec();
    let refs: Vec<&[u8]> = db.iter().map(|s| s.codes()).collect();
    let cells: u64 = refs.iter().map(|s| (s.len() * query.len()) as u64).sum();

    let mut group = c.benchmark_group("database_128x300");
    group.throughput(Throughput::Elements(cells));
    group.sample_size(10);
    for kind in EngineKind::ALL {
        let engine = kind.build();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| engine.score_many(&query, &refs, &scheme))
        });
    }
    group.finish();
}

fn striped_profile_reuse(c: &mut Criterion) {
    // The query-profile trick: rebuilding vs reusing per subject.
    let scheme = ScoringScheme::protein_default();
    let db = synthetic_database("bench", 32, LengthModel::Fixed(300), 4);
    let query = synthetic_database("q", 1, LengthModel::Fixed(400), 5);
    let query = query.get(0).unwrap().codes().to_vec();
    let refs: Vec<&[u8]> = db.iter().map(|s| s.codes()).collect();

    let mut group = c.benchmark_group("striped_profile");
    group.sample_size(10);
    group.bench_function("rebuild_per_subject", |b| {
        b.iter(|| {
            refs.iter()
                .map(|s| {
                    let p = StripedProfile::build(&query, &scheme.matrix);
                    striped_score_profile(&p, s, &scheme).unwrap_or(0)
                })
                .sum::<i32>()
        })
    });
    group.bench_function("reuse_across_subjects", |b| {
        let p = StripedProfile::build(&query, &scheme.matrix);
        b.iter(|| {
            refs.iter()
                .map(|s| striped_score_profile(&p, s, &scheme).unwrap_or(0))
                .sum::<i32>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    kernel_pairwise,
    kernel_database_pass,
    striped_profile_reuse,
    traceback_vs_linear_space,
    parallel_database_pass
);
criterion_main!(benches);
