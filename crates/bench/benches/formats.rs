//! Random-access benchmark: the paper's SQB binary format vs indexed
//! FASTA (`.fai`-style) vs a full sequential FASTA parse — the §IV
//! design argument, measured.

use criterion::{criterion_group, criterion_main, Criterion};
use swdual_bio::fai::FastaIndex;
use swdual_bio::fasta::{self, ResiduePolicy};
use swdual_bio::{sqb, Alphabet};
use swdual_datagen::{synthetic_database, LengthModel};

fn random_access(c: &mut Criterion) {
    let db = synthetic_database("fmt", 2000, LengthModel::protein_database(360.0), 33);
    let fasta_text = fasta::to_string(&db);
    let sqb_bytes = sqb::encode(&db);
    let index = FastaIndex::build(&mut fasta_text.as_bytes()).unwrap();
    let picks: Vec<usize> = (0..64).map(|i| (i * 31) % db.len()).collect();

    let mut group = c.benchmark_group("random_access_64_of_2000");
    group.bench_function("sqb", |b| {
        b.iter(|| {
            let slice = sqb::SqbSlice::new(&sqb_bytes).unwrap();
            picks
                .iter()
                .map(|&i| slice.read_sequence(i).unwrap().len())
                .sum::<usize>()
        })
    });
    group.bench_function("fasta_indexed", |b| {
        b.iter(|| {
            let mut cursor = std::io::Cursor::new(fasta_text.as_bytes());
            picks
                .iter()
                .map(|&i| {
                    index
                        .read_record(&mut cursor, i, Alphabet::Protein, ResiduePolicy::Strict)
                        .unwrap()
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("fasta_full_parse", |b| {
        b.iter(|| {
            // What the paper says tools must do without an index: parse
            // everything to reach specific records.
            let set = fasta::parse(fasta_text.as_bytes(), Alphabet::Protein).unwrap();
            picks
                .iter()
                .map(|&i| set.get(i).unwrap().len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, random_access);
criterion_main!(benches);
