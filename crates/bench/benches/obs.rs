//! Observability overhead: the per-job instrumentation path and the
//! live-metrics registry, enabled vs disabled.
//!
//! The disabled recorder is the default for every search, so its cost
//! is the price *all* users pay; the enabled cost bounds what `--trace`
//! / `--progress` runs add per job. Besides the criterion-style console
//! report, a full run (`cargo bench -p swdual-bench --bench obs`)
//! records the medians to `BENCH_obs.json` at the workspace root so
//! later PRs can diff the overhead.
//!
//! A second section times a *realistic CPU job* (striped score_many
//! over a small database chunk) with the profiler off and on, and
//! records the wall-time overhead ratio to `BENCH_profile.json` — the
//! `--profile` acceptance budget is ≤ 2% over an unprofiled job.
//!
//! Every full run also appends one stamped entry per bench to the
//! `BENCH_trend.json` ledger at the workspace root, which
//! `swdual diff --bench` compares (last two entries per bench) and can
//! gate on.

use std::time::Instant;
use swdual_align::engine::{AlignEngine, PhaseTimings, StripedEngine};
use swdual_bio::ScoringScheme;
use swdual_datagen::{synthetic_database, LengthModel};
use swdual_obs::metrics::Metrics;
use swdual_obs::trend::{TrendEntry, TrendLedger};
use swdual_obs::{Obs, Track};

/// Mirror of the worker's per-job instrumentation sequence (span +
/// counters + registry), shared with the allocation guard test.
fn per_job(obs: &Obs, metrics: &Metrics, worker_id: usize, task_id: usize) {
    let wall_start = obs.now();
    let wall_end = obs.now();
    if obs.is_enabled() {
        obs.span(
            Track::Worker(worker_id),
            &format!("task-{task_id}"),
            wall_start,
            wall_end - wall_start,
            Some((0.0, 1.0)),
            &[("task", task_id as f64)],
        );
    }
    obs.counter("jobs_completed", 1.0);
    obs.counter("cells_computed", 1000.0);
    let labels = [("worker", "0")];
    metrics.observe("job_wall_seconds", &labels, wall_end - wall_start);
    metrics.counter("worker_jobs", &labels, 1.0);
    metrics.gauge("worker_mcups", &labels, 1.0);
}

/// Mirror of the CPU worker's per-job path with profiling hooks (see
/// `swdual_runtime::worker`): phased scoring when the profiler is on,
/// the task span, then the phase spans that subdivide it.
fn profiled_job(
    obs: &Obs,
    engine: &StripedEngine,
    query: &[u8],
    subjects: &[&[u8]],
    scheme: &ScoringScheme,
    task_id: usize,
) -> i32 {
    let wall_start = obs.now();
    let (scores, timings) = if obs.is_profiling() {
        let (scores, timings) = engine.score_many_phased(query, subjects, scheme);
        (scores, Some(timings))
    } else {
        (engine.score_many(query, subjects, scheme), None)
    };
    let wall_end = obs.now();
    if obs.is_enabled() {
        obs.span(
            Track::Worker(0),
            &format!("task-{task_id}"),
            wall_start,
            wall_end - wall_start,
            Some((0.0, 1.0)),
            &[("task", task_id as f64)],
        );
    }
    if let Some(PhaseTimings {
        profile_build,
        dp_inner,
        traceback,
    }) = timings
    {
        let mut at = wall_start;
        for (name, dur) in [
            ("phase_profile_build", profile_build),
            ("phase_dp_inner", dp_inner),
            ("phase_traceback", traceback),
        ] {
            if dur <= 0.0 {
                continue;
            }
            obs.span(
                Track::Worker(0),
                name,
                at,
                dur,
                Some((at, dur)),
                &[("task", task_id as f64)],
            );
            at += dur;
        }
    }
    scores.into_iter().max().unwrap_or(0)
}

/// Median ns/op over `samples` timed batches of `iters` calls each.
fn measure<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> f64 {
    op(); // warm-up
    let mut nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        nanos.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    nanos.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    nanos[nanos.len() / 2]
}

fn main() {
    // `cargo bench -- --test` (CI smoke) only checks the benches run.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (samples, iters) = if test_mode { (1, 10) } else { (21, 20_000) };

    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut bench = |name: &'static str, ns: f64| {
        println!("obs_overhead/{name}  median {ns:.1} ns/op");
        results.push((name, ns));
    };

    let disabled = Obs::disabled();
    let disabled_metrics = disabled.metrics().for_shard(0);
    let mut task = 0usize;
    bench(
        "per_job_disabled",
        measure(samples, iters, || {
            task = task.wrapping_add(1);
            per_job(&disabled, &disabled_metrics, task % 4, task);
        }),
    );

    let enabled = Obs::enabled();
    let enabled_metrics = enabled.metrics().for_shard(0);
    bench(
        "per_job_enabled",
        measure(samples, iters, || {
            task = task.wrapping_add(1);
            per_job(&enabled, &enabled_metrics, task % 4, task);
        }),
    );

    // Same path with a live-bus subscriber attached. The small queue
    // saturates immediately, so steady state is the drop-accounting
    // path — the cost a run pays when `swdual top` (or any tap) can't
    // keep up, which the never-backpressure guarantee caps.
    let subscribed = Obs::enabled();
    let bus_tap = subscribed.subscribe_with_capacity(64);
    let subscribed_metrics = subscribed.metrics().for_shard(0);
    bench(
        "per_job_subscribed",
        measure(samples, iters, || {
            task = task.wrapping_add(1);
            per_job(&subscribed, &subscribed_metrics, task % 4, task);
        }),
    );
    drop(bus_tap);

    bench(
        "registry_observe_disabled",
        measure(samples, iters, || {
            disabled_metrics.observe("job_wall_seconds", &[("worker", "0")], 0.5);
        }),
    );
    bench(
        "registry_observe_enabled",
        measure(samples, iters, || {
            enabled_metrics.observe("job_wall_seconds", &[("worker", "0")], 0.5);
        }),
    );
    bench(
        "registry_counter_enabled",
        measure(samples, iters, || {
            enabled_metrics.counter("worker_jobs", &[("worker", "0")], 1.0);
        }),
    );

    // Snapshot cost over a populated registry (16 shards, mixed kinds).
    let populated = Metrics::enabled();
    for shard in 0..16 {
        let h = populated.for_shard(shard);
        let worker = shard.to_string();
        let labels = [("worker", worker.as_str())];
        for i in 0..64 {
            h.observe("job_wall_seconds", &labels, 1e-3 * (i + 1) as f64);
            h.counter("worker_jobs", &labels, 1.0);
            h.gauge("worker_mcups", &labels, i as f64);
        }
    }
    bench(
        "registry_snapshot",
        measure(samples.min(11), iters / 100 + 1, || {
            std::hint::black_box(populated.snapshot());
        }),
    );

    // ---- explain fold cost ----
    //
    // The `swdual explain` analysis path: fold a populated run — plan
    // models, dispatch instants and lineage-stamped execution spans —
    // into the causal blame report. Priced per fold so later PRs can
    // diff the analysis cost, not just the recording cost.
    let lineage = {
        let obs = Obs::enabled();
        let workers = 4usize;
        let mut virt = vec![0.0f64; workers];
        for t in 0..256usize {
            let w = t % workers;
            obs.instant(
                Track::Master,
                "task_model",
                &[
                    ("task", t as f64),
                    ("p_cpu", 1.0),
                    ("p_gpu", 0.25),
                    ("query_len", 120.0),
                    ("cells", 120_000.0),
                ],
            );
            obs.instant(
                Track::Master,
                "task_dispatch",
                &[
                    ("task", t as f64),
                    ("worker", w as f64),
                    ("seq", t as f64),
                    ("decision", 0.0),
                    ("virt", virt[w]),
                ],
            );
            obs.span(
                Track::Worker(w),
                &format!("task-{t}"),
                virt[w] * 1e-6,
                1e-6,
                Some((virt[w], 1.0)),
                &[
                    ("task", t as f64),
                    ("cells", 120_000.0),
                    ("seq", t as f64),
                    ("decision", 0.0),
                    ("queue_wait_wall", 0.0),
                    ("queue_wait_modelled", 0.0),
                ],
            );
            virt[w] += 1.0;
        }
        obs
    };
    bench(
        "explain_fold_256_tasks",
        measure(samples.min(11), iters / 1000 + 1, || {
            std::hint::black_box(swdual_obs::explain::explain_obs(&lineage));
        }),
    );

    // ---- profiler overhead on a realistic job ----
    //
    // A striped score_many over a 32-sequence chunk, the shape of one
    // CPU worker job. Three configurations: no observability at all,
    // tracing without the profiler, and tracing with the profiler.
    // The acceptance budget is profiling ≤ 2% over the unprofiled job.
    let (job_samples, job_iters) = if test_mode { (1, 2) } else { (15, 200) };
    let db = synthetic_database("bench", 32, LengthModel::Fixed(80), 1);
    let chunk: Vec<&[u8]> = db.iter().map(|s| s.residues.as_slice()).collect();
    let query = db.get(0).expect("non-empty db").residues.clone();
    let scheme = ScoringScheme::protein_default();
    let engine = StripedEngine;

    let mut profile_results: Vec<(&str, f64)> = Vec::new();
    let mut job_bench = |name: &'static str, obs: Obs, profiling: bool| {
        obs.set_profiling(profiling);
        let mut task = 0usize;
        let ns = measure(job_samples, job_iters, || {
            task = task.wrapping_add(1);
            std::hint::black_box(profiled_job(&obs, &engine, &query, &chunk, &scheme, task));
        });
        println!("profile_overhead/{name}  median {ns:.1} ns/op");
        profile_results.push((name, ns));
    };
    job_bench("job_baseline", Obs::disabled(), false);
    job_bench("job_profiling_disabled", Obs::enabled(), false);
    job_bench("job_profiling_enabled", Obs::enabled(), true);
    // Traced job with a saturated bus subscriber attached: the bus
    // acceptance budget is ≤ 2% over the traced job without one.
    let subscribed_job_obs = Obs::enabled();
    let job_bus_tap = subscribed_job_obs.subscribe_with_capacity(64);
    job_bench("job_traced_subscribed", subscribed_job_obs, false);
    drop(job_bus_tap);

    if test_mode {
        return;
    }

    // Record the profiler overhead for the acceptance check and later
    // PRs to diff against.
    let median_of = |name: &str| -> f64 {
        profile_results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns)
            .unwrap_or(0.0)
    };
    let baseline = median_of("job_baseline");
    let traced = median_of("job_profiling_disabled");
    let profiled = median_of("job_profiling_enabled");
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let mut json =
        String::from("{\n  \"bench\": \"profile_overhead\",\n  \"unit\": \"ns_per_op\",\n");
    json.push_str("  \"medians\": {\n");
    for (i, (name, ns)) in profile_results.iter().enumerate() {
        let comma = if i + 1 < profile_results.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"profiling_over_traced\": {:.4},\n",
        ratio(profiled, traced)
    ));
    json.push_str(&format!(
        "  \"profiling_over_baseline\": {:.4},\n",
        ratio(profiled, baseline)
    ));
    json.push_str("  \"budget_profiling_over_traced\": 1.02\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Record medians for later PRs to diff against.
    let ratio = results
        .iter()
        .find(|(n, _)| *n == "per_job_enabled")
        .map(|(_, e)| *e)
        .zip(
            results
                .iter()
                .find(|(n, _)| *n == "per_job_disabled")
                .map(|(_, d)| *d),
        )
        .map(|(e, d)| if d > 0.0 { e / d } else { 0.0 })
        .unwrap_or(0.0);
    let ratio2 = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let mut json = String::from("{\n  \"bench\": \"obs_overhead\",\n  \"unit\": \"ns_per_op\",\n");
    json.push_str("  \"medians\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"enabled_over_disabled_per_job\": {ratio:.2},\n"
    ));
    // Bus-publish overhead: the realistic traced job with a saturated
    // subscriber attached vs without, under the same 2% budget the
    // profiler answers to.
    json.push_str(&format!(
        "  \"bus_subscriber_over_traced\": {:.4},\n",
        ratio2(median_of("job_traced_subscribed"), traced)
    ));
    json.push_str("  \"budget_bus_over_traced\": 1.02\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Append both benches to the trend ledger for `swdual diff --bench`.
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let trend_path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trend.json"
    ));
    for (bench_name, metrics) in [
        ("obs_overhead", &results),
        ("profile_overhead", &profile_results),
    ] {
        let pairs: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (*n, *v)).collect();
        let entry = TrendEntry::new(bench_name, stamp, "ns_per_op", &pairs);
        match TrendLedger::append_to_file(trend_path, entry) {
            Ok(()) => println!("appended {bench_name} to {}", trend_path.display()),
            Err(e) => eprintln!("could not append to {}: {e}", trend_path.display()),
        }
    }
}
