//! Observability overhead: the per-job instrumentation path and the
//! live-metrics registry, enabled vs disabled.
//!
//! The disabled recorder is the default for every search, so its cost
//! is the price *all* users pay; the enabled cost bounds what `--trace`
//! / `--progress` runs add per job. Besides the criterion-style console
//! report, a full run (`cargo bench -p swdual-bench --bench obs`)
//! records the medians to `BENCH_obs.json` at the workspace root so
//! later PRs can diff the overhead.

use std::time::Instant;
use swdual_obs::metrics::Metrics;
use swdual_obs::{Obs, Track};

/// Mirror of the worker's per-job instrumentation sequence (span +
/// counters + registry), shared with the allocation guard test.
fn per_job(obs: &Obs, metrics: &Metrics, worker_id: usize, task_id: usize) {
    let wall_start = obs.now();
    let wall_end = obs.now();
    if obs.is_enabled() {
        obs.span(
            Track::Worker(worker_id),
            &format!("task-{task_id}"),
            wall_start,
            wall_end - wall_start,
            Some((0.0, 1.0)),
            &[("task", task_id as f64)],
        );
    }
    obs.counter("jobs_completed", 1.0);
    obs.counter("cells_computed", 1000.0);
    let labels = [("worker", "0")];
    metrics.observe("job_wall_seconds", &labels, wall_end - wall_start);
    metrics.counter("worker_jobs", &labels, 1.0);
    metrics.gauge("worker_mcups", &labels, 1.0);
}

/// Median ns/op over `samples` timed batches of `iters` calls each.
fn measure<F: FnMut()>(samples: usize, iters: usize, mut op: F) -> f64 {
    op(); // warm-up
    let mut nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        nanos.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    nanos.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    nanos[nanos.len() / 2]
}

fn main() {
    // `cargo bench -- --test` (CI smoke) only checks the benches run.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (samples, iters) = if test_mode { (1, 10) } else { (21, 20_000) };

    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut bench = |name: &'static str, ns: f64| {
        println!("obs_overhead/{name}  median {ns:.1} ns/op");
        results.push((name, ns));
    };

    let disabled = Obs::disabled();
    let disabled_metrics = disabled.metrics().for_shard(0);
    let mut task = 0usize;
    bench(
        "per_job_disabled",
        measure(samples, iters, || {
            task = task.wrapping_add(1);
            per_job(&disabled, &disabled_metrics, task % 4, task);
        }),
    );

    let enabled = Obs::enabled();
    let enabled_metrics = enabled.metrics().for_shard(0);
    bench(
        "per_job_enabled",
        measure(samples, iters, || {
            task = task.wrapping_add(1);
            per_job(&enabled, &enabled_metrics, task % 4, task);
        }),
    );

    bench(
        "registry_observe_disabled",
        measure(samples, iters, || {
            disabled_metrics.observe("job_wall_seconds", &[("worker", "0")], 0.5);
        }),
    );
    bench(
        "registry_observe_enabled",
        measure(samples, iters, || {
            enabled_metrics.observe("job_wall_seconds", &[("worker", "0")], 0.5);
        }),
    );
    bench(
        "registry_counter_enabled",
        measure(samples, iters, || {
            enabled_metrics.counter("worker_jobs", &[("worker", "0")], 1.0);
        }),
    );

    // Snapshot cost over a populated registry (16 shards, mixed kinds).
    let populated = Metrics::enabled();
    for shard in 0..16 {
        let h = populated.for_shard(shard);
        let worker = shard.to_string();
        let labels = [("worker", worker.as_str())];
        for i in 0..64 {
            h.observe("job_wall_seconds", &labels, 1e-3 * (i + 1) as f64);
            h.counter("worker_jobs", &labels, 1.0);
            h.gauge("worker_mcups", &labels, i as f64);
        }
    }
    bench(
        "registry_snapshot",
        measure(samples.min(11), iters / 100 + 1, || {
            std::hint::black_box(populated.snapshot());
        }),
    );

    if test_mode {
        return;
    }

    // Record medians for later PRs to diff against.
    let ratio = results
        .iter()
        .find(|(n, _)| *n == "per_job_enabled")
        .map(|(_, e)| *e)
        .zip(
            results
                .iter()
                .find(|(n, _)| *n == "per_job_disabled")
                .map(|(_, d)| *d),
        )
        .map(|(e, d)| if d > 0.0 { e / d } else { 0.0 })
        .unwrap_or(0.0);
    let mut json = String::from("{\n  \"bench\": \"obs_overhead\",\n  \"unit\": \"ns_per_op\",\n");
    json.push_str("  \"medians\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"enabled_over_disabled_per_job\": {ratio:.2}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
