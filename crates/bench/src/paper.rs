//! Reference values transcribed from the paper (ICPP 2014, §V).

/// Table I: the baseline applications and their command lines.
pub const TABLE1: &[(&str, &str, &str)] = &[
    ("SWIPE", "1.0", "./swipe -a $T -i $Q -d $D"),
    ("STRIPED", "-", "./striped -T $T $Q $D"),
    ("SWPS3", "20080605", "./swps3 -j $T $Q $D"),
    ("CUDASW++", "2.0", "./cudasw -use_gpus $T -query $Q -db $D"),
];

/// Table II: execution times (s) for 1–4 workers on UniProt, 40
/// queries. `None` marks cells the paper leaves empty.
pub const TABLE2_BASELINES: &[(&str, [Option<f64>; 4])] = &[
    (
        "SWPS3",
        [
            Some(69208.2),
            Some(36174.09),
            Some(25206.563),
            Some(18904.31),
        ],
    ),
    (
        "STRIPED",
        [Some(7190.0), Some(3615.38), Some(1369.33), Some(1027.28)],
    ),
    (
        "SWIPE",
        [Some(2367.24), Some(1199.47), Some(816.61), Some(610.23)],
    ),
    (
        "CUDASW++",
        [Some(785.26), Some(445.611), Some(350.09), Some(292.157)],
    ),
];

/// Table II, SWDUAL block: times (s) for 2–8 workers (GPU-first mix,
/// max 4 GPUs). The paper's row reads 543.28, 472.84, 271.98, 266.69,
/// 239.04, 183.12, 142.98 for 2–8 workers.
pub const TABLE2_SWDUAL: &[(usize, f64)] = &[
    (2, 543.28),
    (3, 472.84),
    (4, 271.98),
    (5, 266.69),
    (6, 239.04),
    (7, 183.12),
    (8, 142.98),
];

/// Table III: the five databases (name, sequence count, paper's
/// smallest/longest *query* lengths).
pub const TABLE3: &[(&str, u64, usize, usize)] = &[
    ("Ensembl Dog Proteins", 25_160, 100, 4_996),
    ("Ensembl Rat Proteins", 32_971, 100, 4_992),
    ("RefSeq Human Proteins", 34_705, 100, 4_981),
    ("RefSeq Mouse Proteins", 29_437, 100, 5_000),
    ("UniProt", 537_505, 100, 4_998),
];

/// Rows of a per-database table: `(workers, seconds, gcups)` triples.
pub type WorkerRows = [(usize, f64, f64); 3];

/// Table IV: SWDUAL on the five databases — (database, rows).
pub const TABLE4: &[(&str, WorkerRows)] = &[
    (
        "Ensembl Dog",
        [(2, 78.36, 18.91), (4, 39.63, 37.39), (8, 20.45, 72.45)],
    ),
    (
        "Ensembl Rat",
        [(2, 75.85, 22.97), (4, 37.97, 45.89), (8, 20.17, 86.38)],
    ),
    (
        "RefSeq Mouse",
        [(2, 84.40, 18.99), (4, 46.25, 34.66), (8, 23.59, 67.95)],
    ),
    (
        "RefSeq Human",
        [(2, 95.09, 20.70), (4, 48.01, 41.00), (8, 24.82, 79.31)],
    ),
    (
        "UniProt",
        [(2, 543.28, 35.81), (4, 271.98, 71.53), (8, 142.98, 136.06)],
    ),
];

/// Table V: §V-C query sets on UniProt — (set, rows).
pub const TABLE5: &[(&str, WorkerRows)] = &[
    (
        "Heterogeneous",
        [
            (2, 3554.36, 37.55),
            (4, 1785.73, 74.74),
            (8, 908.45, 146.92),
        ],
    ),
    (
        "Homogeneous",
        [(2, 998.27, 36.3), (4, 484.74, 74.76), (8, 249.69, 145.14)],
    ),
];

/// §V-A headline claims: reduction of SWDUAL vs each baseline at 2 and
/// 4 workers (percent).
pub const HEADLINE_REDUCTIONS: &[(&str, usize, f64)] = &[
    ("SWIPE", 2, 54.7),
    ("STRIPED", 2, 85.0),
    ("SWPS3", 2, 98.0),
    ("SWIPE", 4, 55.3),
    ("STRIPED", 4, 73.5),
    ("SWPS3", 4, 98.6),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_times_decrease_with_workers() {
        for (name, times) in TABLE2_BASELINES {
            let t: Vec<f64> = times.iter().flatten().copied().collect();
            for w in t.windows(2) {
                assert!(w[0] > w[1], "{name}: {} !> {}", w[0], w[1]);
            }
        }
        for w in TABLE2_SWDUAL.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn table4_products_are_consistent_cells() {
        // time × GCUPS must be (nearly) constant per database — the
        // workload's cell count.
        for (db, rows) in TABLE4 {
            let cells: Vec<f64> = rows.iter().map(|&(_, t, g)| t * g).collect();
            for c in &cells[1..] {
                assert!(
                    (c - cells[0]).abs() / cells[0] < 0.06,
                    "{db}: inconsistent cells {cells:?}"
                );
            }
        }
    }

    #[test]
    fn headline_reductions_match_table2() {
        // e.g. SWIPE at 2 workers: 1199.47 -> SWDUAL 543.28 = 54.7%.
        for &(app, workers, pct) in HEADLINE_REDUCTIONS {
            let baseline =
                TABLE2_BASELINES.iter().find(|(n, _)| *n == app).unwrap().1[workers - 1].unwrap();
            let swdual = TABLE2_SWDUAL
                .iter()
                .find(|&&(w, _)| w == workers)
                .unwrap()
                .1;
            let computed = (1.0 - swdual / baseline) * 100.0;
            assert!(
                (computed - pct).abs() < 1.5,
                "{app}@{workers}: computed {computed:.1}% vs stated {pct}%"
            );
        }
    }
}
