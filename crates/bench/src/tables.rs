//! Regeneration of every evaluation table and figure of the paper on
//! the calibrated virtual-time platform.
//!
//! | artifact | function | workload |
//! |---|---|---|
//! | Table I | [`table1`] | inventory (no simulation) |
//! | Table II + Figure 7 | [`table2`] | UniProt, baselines 1–4 workers, SWDUAL 2–8 |
//! | Table III | [`table3`] | database inventory |
//! | Table IV + Figure 8 | [`table4`] | SWDUAL on the 5 databases, 2/4/8 workers |
//! | Table V + Figure 9 | [`table5`] | homogeneous vs heterogeneous sets |

use crate::paper;
use crate::render::{Report, Row};
use swdual_platform::calib::EngineModel;
use swdual_platform::experiment::{run_single_kind, run_swdual};
use swdual_platform::workload::{DatabaseSpec, Workload};
use swdual_sched::schedule::PeKind;

/// Table I: the compared applications (inventory; mirrors the paper).
pub fn table1() -> String {
    let mut out = String::from("== Table I — applications included in the comparison ==\n");
    out.push_str(&format!(
        "{:<10} {:<10} {}\n",
        "app", "version", "command line"
    ));
    for (app, version, cmd) in paper::TABLE1 {
        out.push_str(&format!("{app:<10} {version:<10} {cmd}\n"));
    }
    out.push_str("SWDUAL     (this)     reproduced in Rust: swdual-core::SearchBuilder\n");
    out
}

/// Table II / Figure 7: execution time vs worker count on UniProt.
pub fn table2() -> Report {
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let mut rows = Vec::new();

    let baselines: [(&str, EngineModel, PeKind); 4] = [
        ("SWPS3", EngineModel::swps3(), PeKind::Cpu),
        ("STRIPED", EngineModel::striped(), PeKind::Cpu),
        ("SWIPE", EngineModel::swipe(), PeKind::Cpu),
        ("CUDASW++", EngineModel::cudasw(), PeKind::Gpu),
    ];
    for (name, model, kind) in baselines {
        let paper_row = paper::TABLE2_BASELINES
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| t);
        for workers in 1..=4usize {
            let r = run_single_kind(&workload, &model, workers, kind);
            rows.push(Row {
                label: name.to_string(),
                workers,
                seconds: r.seconds,
                gcups: r.gcups,
                paper_seconds: paper_row.and_then(|t| t[workers - 1]),
                paper_gcups: None,
            });
        }
    }
    for workers in 2..=8usize {
        let r = run_swdual(&workload, workers, 4);
        rows.push(Row {
            label: "SWDUAL".into(),
            workers,
            seconds: r.seconds,
            gcups: r.gcups,
            paper_seconds: paper::TABLE2_SWDUAL
                .iter()
                .find(|&&(w, _)| w == workers)
                .map(|&(_, t)| t),
            paper_gcups: None,
        });
    }
    Report {
        id: "Table II / Figure 7".into(),
        description: "execution time vs workers, UniProt, 40 queries (virtual time)".into(),
        rows,
    }
}

/// Table III: the databases (inventory from the derived specs).
pub fn table3() -> String {
    let mut out = String::from("== Table III — genomic databases used on the tests ==\n");
    out.push_str(&format!(
        "{:<22} {:>10} {:>12} {:>10}\n",
        "database", "sequences", "residues", "mean len"
    ));
    for db in DatabaseSpec::all_paper_databases() {
        out.push_str(&format!(
            "{:<22} {:>10} {:>12} {:>10.0}\n",
            db.name,
            db.sequences,
            db.residues,
            db.mean_length()
        ));
    }
    out.push_str("(sequence counts from Table III; residues derived from Table IV cells)\n");
    out
}

/// Table IV / Figure 8: SWDUAL on the five databases at 2/4/8 workers.
pub fn table4() -> Report {
    let mut rows = Vec::new();
    for (paper_name, paper_rows) in paper::TABLE4 {
        let db = DatabaseSpec::all_paper_databases()
            .into_iter()
            .find(|d| paper_name.contains(&d.name) || d.name.contains(paper_name))
            .unwrap_or_else(|| panic!("unknown database {paper_name}"));
        let workload = Workload::paper_queries(db);
        for &(workers, paper_s, paper_g) in paper_rows {
            let r = run_swdual(&workload, workers, 4);
            rows.push(Row {
                label: paper_name.to_string(),
                workers,
                seconds: r.seconds,
                gcups: r.gcups,
                paper_seconds: Some(paper_s),
                paper_gcups: Some(paper_g),
            });
        }
    }
    Report {
        id: "Table IV / Figure 8".into(),
        description: "SWDUAL on 5 databases, 2/4/8 workers (virtual time)".into(),
        rows,
    }
}

/// Table V / Figure 9: homogeneous vs heterogeneous query sets.
pub fn table5() -> Report {
    let mut rows = Vec::new();
    for (set_name, paper_rows) in paper::TABLE5 {
        let workload = match *set_name {
            "Heterogeneous" => Workload::heterogeneous_queries(DatabaseSpec::uniprot()),
            "Homogeneous" => Workload::homogeneous_queries(DatabaseSpec::uniprot()),
            other => panic!("unknown set {other}"),
        };
        for &(workers, paper_s, paper_g) in paper_rows {
            let r = run_swdual(&workload, workers, 4);
            rows.push(Row {
                label: set_name.to_string(),
                workers,
                seconds: r.seconds,
                gcups: r.gcups,
                paper_seconds: Some(paper_s),
                paper_gcups: Some(paper_g),
            });
        }
    }
    Report {
        id: "Table V / Figure 9".into(),
        description: "homogeneous vs heterogeneous query sets on UniProt (virtual time)".into(),
        rows,
    }
}

/// §VI conclusion claim: "reducing the execution time from 543 seconds
/// to 86 seconds" on "eight CPUs and eight GPUs" at "225 GCUPS". The
/// §V tables cap GPUs at 4; this run opens the full Idgraf machine.
pub fn conclusion() -> Report {
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let mut rows = Vec::new();
    // 2 workers (the 543 s starting point) and 16 workers (8 CPU+8 GPU).
    let r2 = run_swdual(&workload, 2, 8);
    rows.push(Row {
        label: "SWDUAL 1C+1G".into(),
        workers: 2,
        seconds: r2.seconds,
        gcups: r2.gcups,
        paper_seconds: Some(543.28),
        paper_gcups: Some(35.81),
    });
    let r16 = run_swdual(&workload, 16, 8);
    rows.push(Row {
        label: "SWDUAL 8C+8G".into(),
        workers: 16,
        seconds: r16.seconds,
        gcups: r16.gcups,
        paper_seconds: Some(86.0),
        paper_gcups: Some(225.0),
    });
    Report {
        id: "Conclusion (§VI)".into(),
        description: "full Idgraf machine: 543 s -> 86 s / 225 GCUPS claim".into(),
        rows,
    }
}

/// Figure 7 is Table II as series; Figure 8 is Table IV; Figure 9 is
/// Table V. These aliases regenerate the figure data blocks.
pub fn figure7_data() -> String {
    table2().to_plot_data()
}

/// Figure 8 plot data.
pub fn figure8_data() -> String {
    table4().to_plot_data()
}

/// Figure 9 plot data.
pub fn figure9_data() -> String {
    table5().to_plot_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_apps() {
        let t = table1();
        for app in ["SWIPE", "STRIPED", "SWPS3", "CUDASW++", "SWDUAL"] {
            assert!(t.contains(app), "missing {app}");
        }
    }

    #[test]
    fn table2_shape_matches_paper() {
        let report = table2();
        // 4 baselines x 4 workers + SWDUAL x 7.
        assert_eq!(report.rows.len(), 4 * 4 + 7);
        // Ordering at 4 workers: SWPS3 > STRIPED > SWIPE > CUDASW++ > SWDUAL.
        let at = |label: &str, w: usize| {
            report
                .rows
                .iter()
                .find(|r| r.label == label && r.workers == w)
                .unwrap()
                .seconds
        };
        assert!(at("SWPS3", 4) > at("STRIPED", 4));
        assert!(at("STRIPED", 4) > at("SWIPE", 4));
        assert!(at("SWIPE", 4) > at("CUDASW++", 4));
        assert!(at("CUDASW++", 4) > at("SWDUAL", 4));
        // Single-worker baselines within 3% of the paper (calibration).
        for label in ["SWPS3", "STRIPED", "SWIPE", "CUDASW++"] {
            let row = report
                .rows
                .iter()
                .find(|r| r.label == label && r.workers == 1)
                .unwrap();
            let ratio = row.seconds_ratio().unwrap();
            assert!((ratio - 1.0).abs() < 0.03, "{label}: ratio {ratio}");
        }
    }

    #[test]
    fn table4_reproduces_database_ordering() {
        let report = table4();
        assert_eq!(report.rows.len(), 15);
        // UniProt is the slow one; all small databases are 20-100s at
        // any worker count.
        for r in &report.rows {
            if r.label == "UniProt" {
                assert!(r.seconds > 100.0);
            } else {
                assert!(r.seconds < 120.0, "{}: {}", r.label, r.seconds);
            }
            // Within 2x of the paper everywhere (shape criterion).
            let ratio = r.seconds_ratio().unwrap();
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}@{}: ratio {ratio}",
                r.label,
                r.workers
            );
        }
    }

    #[test]
    fn table5_hetero_costs_more_than_homo() {
        let report = table5();
        let het2 = report
            .rows
            .iter()
            .find(|r| r.label == "Heterogeneous" && r.workers == 2)
            .unwrap();
        let hom2 = report
            .rows
            .iter()
            .find(|r| r.label == "Homogeneous" && r.workers == 2)
            .unwrap();
        let ratio = het2.seconds / hom2.seconds;
        assert!(
            (2.0..5.5).contains(&ratio),
            "hetero/homo {ratio}, paper 3.56"
        );
        // Both scale with workers.
        for label in ["Heterogeneous", "Homogeneous"] {
            let series: Vec<f64> = report
                .rows
                .iter()
                .filter(|r| r.label == label)
                .map(|r| r.seconds)
                .collect();
            assert!(
                series[0] > series[1] && series[1] > series[2],
                "{label}: {series:?}"
            );
        }
    }

    #[test]
    fn conclusion_claim_shape_holds() {
        let report = conclusion();
        let start = &report.rows[0];
        let end = &report.rows[1];
        // 543 -> 86 s is a 6.3x reduction; the model must land in the
        // same regime (within 40% of the 86 s point; the 2-worker point
        // is calibrated to a few percent).
        assert!((start.seconds_ratio().unwrap() - 1.0).abs() < 0.05);
        let r = end.seconds_ratio().unwrap();
        assert!((0.6..1.4).contains(&r), "16-worker ratio {r}");
        // GCUPS in the 225 ballpark.
        assert!((150.0..320.0).contains(&end.gcups), "{}", end.gcups);
    }

    #[test]
    fn figure_data_blocks_are_nonempty() {
        assert!(figure7_data().lines().count() > 10);
        assert!(figure8_data().lines().count() > 10);
        assert!(figure9_data().lines().count() > 5);
    }
}
