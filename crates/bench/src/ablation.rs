//! Ablation studies for the design choices DESIGN.md calls out.

use crate::render::{Report, Row};
use swdual_platform::calib::EngineModel;
use swdual_platform::experiment::{run_hybrid, HybridPolicy};
use swdual_platform::workload::{DatabaseSpec, Workload};
use swdual_sched::binsearch::{dual_approx_schedule, BinarySearchConfig};
use swdual_sched::dual::KnapsackMethod;
use swdual_sched::knapsack::DpConfig;
use swdual_sched::PlatformSpec;

/// Ablation 1 — allocation policy comparison: SWDUAL's dual
/// approximation vs the literature baselines ([10], [11], [12]) on the
/// UniProt workload across worker counts. This quantifies the paper's
/// central claim that the scheduling strategy, not just the hybrid
/// hardware, delivers the speedup.
pub fn ablation_policy() -> Report {
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let cpu = EngineModel::swdual_cpu_worker();
    let gpu = EngineModel::swdual_gpu_worker();
    let mut rows = Vec::new();
    for workers in [2usize, 4, 8] {
        let platform = PlatformSpec::swdual_mix(workers, 4);
        for policy in HybridPolicy::ALL {
            let r = run_hybrid(&workload, &platform, policy, &cpu, &gpu);
            rows.push(Row {
                label: policy.name().to_string(),
                workers,
                seconds: r.seconds,
                gcups: r.gcups,
                paper_seconds: None,
                paper_gcups: None,
            });
        }
    }
    Report {
        id: "Ablation A1".into(),
        description: "allocation policies on the UniProt workload (virtual time)".into(),
        rows,
    }
}

/// Ablation 2 — greedy (2-approx) vs DP (3/2-approx) knapsack inside
/// the dual step: schedule quality (makespan / lower bound) and
/// scheduling cost across instance sizes.
pub fn ablation_knapsack() -> Report {
    let mut rows = Vec::new();
    for n_queries in [10usize, 40, 160] {
        // Scale the paper workload's task count.
        let workload = scaled_query_workload(n_queries);
        let cpu = EngineModel::swdual_cpu_worker();
        let gpu = EngineModel::swdual_gpu_worker();
        let tasks = workload.build_tasks(&cpu, &gpu);
        let platform = PlatformSpec::new(4, 4);
        for (label, method) in [
            ("greedy-2approx", KnapsackMethod::Greedy),
            (
                "dp-3/2approx",
                KnapsackMethod::Dp(DpConfig { resolution: 512 }),
            ),
        ] {
            let start = std::time::Instant::now();
            let out = dual_approx_schedule(
                &tasks,
                &platform,
                BinarySearchConfig {
                    method,
                    ..BinarySearchConfig::default()
                },
            );
            let sched_cost = start.elapsed().as_secs_f64();
            rows.push(Row {
                label: format!("{label} (n={n_queries}, sched {sched_cost:.4}s)"),
                workers: 8,
                seconds: out.schedule.makespan(),
                gcups: out.approximation_ratio(),
                paper_seconds: None,
                paper_gcups: None,
            });
        }
    }
    Report {
        id: "Ablation A2".into(),
        description: "greedy vs DP knapsack: makespan (seconds) and ratio-to-LB (GCUPS column)"
            .into(),
        rows,
    }
}

/// Ablation 3 — binary-search iteration count vs precision, checking
/// the paper's `log(Bmax − Bmin)` bound.
pub fn ablation_binsearch() -> Report {
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let cpu = EngineModel::swdual_cpu_worker();
    let gpu = EngineModel::swdual_gpu_worker();
    let tasks = workload.build_tasks(&cpu, &gpu);
    let platform = PlatformSpec::new(4, 4);
    let mut rows = Vec::new();
    for (label, precision) in [
        ("precision 1e-1", 1e-1),
        ("precision 1e-2", 1e-2),
        ("precision 1e-4", 1e-4),
        ("precision 1e-6", 1e-6),
    ] {
        let out = dual_approx_schedule(
            &tasks,
            &platform,
            BinarySearchConfig {
                relative_precision: precision,
                max_iterations: 128,
                ..BinarySearchConfig::default()
            },
        );
        rows.push(Row {
            label: format!("{label} ({} iterations)", out.iterations),
            workers: out.iterations,
            seconds: out.schedule.makespan(),
            gcups: out.approximation_ratio(),
            paper_seconds: None,
            paper_gcups: None,
        });
    }
    Report {
        id: "Ablation A3".into(),
        description: "binary-search precision vs iterations (workers column = iterations)".into(),
        rows,
    }
}

/// Ablation 4 — robustness of the one-round static schedule to task
/// time estimation error (±amplitude multiplicative noise), compared to
/// dynamic self-scheduling replayed under the *same* noise. This
/// evaluates the paper's §IV choice of a one-round allocation.
pub fn ablation_robustness() -> Report {
    use swdual_sched::robustness::{replay_self_scheduling, replay_static, ActualTimes};
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let cpu = EngineModel::swdual_cpu_worker();
    let gpu = EngineModel::swdual_gpu_worker();
    let tasks = workload.build_tasks(&cpu, &gpu);
    let platform = PlatformSpec::new(4, 4);
    let planned = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default()).schedule;

    let mut rows = Vec::new();
    for (label, amplitude) in [
        ("noise 0%", 0.0),
        ("noise 10%", 0.10),
        ("noise 20%", 0.20),
        ("noise 40%", 0.40),
    ] {
        // Average over seeds so a single draw does not dominate.
        let mut static_total = 0.0;
        let mut dynamic_total = 0.0;
        const SEEDS: u64 = 8;
        for seed in 0..SEEDS {
            let actual = if amplitude == 0.0 {
                ActualTimes::exact(&tasks)
            } else {
                ActualTimes::with_noise(&tasks, amplitude, 1000 + seed)
            };
            static_total += replay_static(&planned, &actual).makespan();
            dynamic_total += replay_self_scheduling(&tasks, &platform, &actual).makespan();
        }
        rows.push(Row {
            label: format!("SWDUAL static, {label}"),
            workers: 8,
            seconds: static_total / SEEDS as f64,
            gcups: static_total / SEEDS as f64 / planned.makespan(),
            paper_seconds: None,
            paper_gcups: None,
        });
        rows.push(Row {
            label: format!("self-sched dyn, {label}"),
            workers: 8,
            seconds: dynamic_total / SEEDS as f64,
            gcups: dynamic_total / SEEDS as f64 / planned.makespan(),
            paper_seconds: None,
            paper_gcups: None,
        });
    }
    Report {
        id: "Ablation A4".into(),
        description:
            "estimation-noise robustness: realised makespan, mean of 8 draws (GCUPS column = ratio to the noise-free plan)"
                .into(),
        rows,
    }
}

/// Helper: the UniProt workload with a different query count (same
/// length distribution).
fn scaled_query_workload(n_queries: usize) -> Workload {
    let base = Workload::paper_queries(DatabaseSpec::uniprot());
    let lengths: Vec<usize> = (0..n_queries)
        .map(|i| base.query_lengths[i % base.query_lengths.len()])
        .collect();
    Workload {
        query_lengths: lengths,
        database: base.database,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ablation_shows_dual_wins() {
        let report = ablation_policy();
        for workers in [2usize, 4, 8] {
            let dual = report
                .rows
                .iter()
                .find(|r| r.label == "SWDUAL(greedy)" && r.workers == workers)
                .unwrap()
                .seconds;
            // SWDUAL must beat the baselines the paper compares against
            // ([10] self-scheduling, [11] equal-power, [12]
            // proportional). HEFT-lite is *our* extra strong baseline
            // and is allowed to be competitive (it occasionally edges
            // out the greedy dual by a few percent).
            for r in report.rows.iter().filter(|r| {
                r.workers == workers && !r.label.starts_with("SWDUAL") && r.label != "heft-lite"
            }) {
                assert!(
                    dual <= r.seconds * 1.01,
                    "{} beats SWDUAL at {} workers: {} vs {}",
                    r.label,
                    workers,
                    r.seconds,
                    dual
                );
            }
            // The DP refinement may only improve on greedy, and
            // HEFT-lite stays within a few percent either way.
            let dp = report
                .rows
                .iter()
                .find(|r| r.label == "SWDUAL(dp)" && r.workers == workers)
                .unwrap()
                .seconds;
            assert!(dp <= dual * 1.05, "dp {dp} much worse than greedy {dual}");
            let heft = report
                .rows
                .iter()
                .find(|r| r.label == "heft-lite" && r.workers == workers)
                .unwrap()
                .seconds;
            assert!(
                (dual - heft).abs() <= dual * 0.10,
                "heft {heft} vs dual {dual} diverge beyond 10%"
            );
        }
    }

    #[test]
    fn knapsack_ablation_dp_not_worse() {
        let report = ablation_knapsack();
        // Pair rows (greedy, dp) per instance size.
        for pair in report.rows.chunks(2) {
            let (greedy, dp) = (&pair[0], &pair[1]);
            assert!(
                dp.seconds <= greedy.seconds * 1.10,
                "dp {} much worse than greedy {}",
                dp.seconds,
                greedy.seconds
            );
            // Both within the theoretical guarantee of their ratio
            // column (ratio-to-LB <= 2).
            assert!(greedy.gcups <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn robustness_ablation_static_beats_dynamic_at_moderate_noise() {
        let report = ablation_robustness();
        assert_eq!(report.rows.len(), 8);
        // At every noise level (up to 40%), the static dual schedule's
        // realised makespan stays below dynamic self-scheduling's.
        for pair in report.rows.chunks(2) {
            let (stat, dyn_) = (&pair[0], &pair[1]);
            assert!(
                stat.seconds <= dyn_.seconds * 1.02,
                "{} ({}) vs {} ({})",
                stat.label,
                stat.seconds,
                dyn_.label,
                dyn_.seconds
            );
        }
        // Degradation at 20% noise stays under 1.2x.
        let d20 = report
            .rows
            .iter()
            .find(|r| r.label.contains("static, noise 20%"))
            .unwrap();
        assert!(d20.gcups <= 1.2 + 1e-9, "degradation {}", d20.gcups);
    }

    #[test]
    fn binsearch_ablation_iterations_grow_with_precision() {
        let report = ablation_binsearch();
        let iters: Vec<usize> = report.rows.iter().map(|r| r.workers).collect();
        assert!(iters.windows(2).all(|w| w[0] <= w[1]), "{iters:?}");
        // Makespan never degrades with more precision.
        let spans: Vec<f64> = report.rows.iter().map(|r| r.seconds).collect();
        assert!(spans.windows(2).all(|w| w[1] <= w[0] * 1.001), "{spans:?}");
        // log2 bound: even 1e-6 needs < 64 steps.
        assert!(*iters.last().unwrap() < 64);
    }
}
