//! # swdual-bench — benchmark harness and paper-reproduction driver
//!
//! * [`paper`] — the reference numbers transcribed from the paper's
//!   Tables I–V (what we compare against).
//! * [`tables`] — regenerates every evaluation table and figure of the
//!   paper on the calibrated virtual-time platform model.
//! * [`execute`] — reduced-scale *real* execution: the master-slave
//!   runtime with real kernels on a synthetic database, checking score
//!   agreement across engines and reporting real GCUPS.
//! * [`ablation`] — ablation studies for the design choices: greedy vs
//!   DP knapsack, allocation-policy comparison, binary-search iteration
//!   count.
//! * [`render`] — plain-text and Markdown rendering of result rows.
//!
//! The `repro` binary exposes all of it:
//! `cargo run --release -p swdual-bench --bin repro -- all`.

pub mod ablation;
pub mod execute;
pub mod paper;
pub mod render;
pub mod tables;
