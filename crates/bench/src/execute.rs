//! Reduced-scale *real* execution.
//!
//! The virtual-time tables prove the scheduling story at paper scale;
//! this module proves the machinery: it generates a scaled-down
//! synthetic UniProt, runs the actual master-slave runtime with real
//! kernels (CPU workers) and the simulated device (GPU workers), checks
//! that every engine agrees on every score, and reports real wall-clock
//! GCUPS for this host.

use crate::render::{Report, Row};
use swdual_align::engine::EngineKind;
use swdual_align::scalar::gotoh_score;
use swdual_bio::ScoringScheme;
use swdual_core::SearchBuilder;
use swdual_datagen::{queries_from_database, scaled_database, MutationProfile};
use swdual_runtime::AllocationPolicy;
use swdual_sched::dual::KnapsackMethod;

/// Configuration of the reduced-scale run.
#[derive(Debug, Clone, Copy)]
pub struct ExecuteConfig {
    /// Fraction of UniProt's sequence count to generate (e.g. 0.002 →
    /// ~1075 sequences).
    pub db_scale: f64,
    /// Number of queries.
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExecuteConfig {
    fn default() -> Self {
        ExecuteConfig {
            db_scale: 0.002,
            queries: 8,
            seed: 2014,
        }
    }
}

/// Outcome of the reduced-scale execution.
#[derive(Debug, Clone)]
pub struct ExecuteOutcome {
    /// One row per worker configuration.
    pub report: Report,
    /// Whether every engine agreed on every score.
    pub scores_agree: bool,
    /// Database sequences generated.
    pub db_sequences: usize,
    /// Total cells per full search.
    pub cells: u64,
}

/// Run the reduced-scale end-to-end experiment.
pub fn execute_reduced(config: ExecuteConfig) -> ExecuteOutcome {
    // Synthetic UniProt slice with paper-like length distribution.
    let database = scaled_database("uniprot", 537_505, 362.0, config.db_scale, config.seed);
    let queries = queries_from_database(
        &database,
        config.queries,
        30,
        5000,
        &MutationProfile::homolog(),
        config.seed + 1,
    );
    let scheme = ScoringScheme::protein_default();
    let cells = queries.total_residues() * database.total_residues();

    // Cross-engine agreement on a sample of pairs (all engines on the
    // first query vs first 32 database sequences).
    let mut scores_agree = true;
    if let Some(q) = queries.get(0) {
        let expected: Vec<i32> = database
            .iter()
            .take(32)
            .map(|d| gotoh_score(q.codes(), d.codes(), &scheme))
            .collect();
        for kind in EngineKind::ALL {
            let engine = kind.build();
            let refs: Vec<&[u8]> = database.iter().take(32).map(|s| s.codes()).collect();
            let got = engine.score_many(q.codes(), &refs, &scheme);
            if got != expected {
                scores_agree = false;
            }
        }
    }

    // Real runtime across worker mixes.
    let mut rows = Vec::new();
    let mut reference_hits = None;
    for (label, cpus, gpus) in [
        ("1 CPU", 1usize, 0usize),
        ("1 GPU(sim)", 0, 1),
        ("1 CPU + 1 GPU", 1, 1),
        ("2 CPU + 2 GPU", 2, 2),
    ] {
        let report = SearchBuilder::new()
            .database(database.clone())
            .queries(queries.clone())
            .hybrid_workers(cpus, gpus)
            .policy(AllocationPolicy::DualApprox(KnapsackMethod::Greedy))
            .top_k(5)
            .run();
        // Hits must be identical regardless of worker mix.
        match &reference_hits {
            None => reference_hits = Some(report.hits().to_vec()),
            Some(reference) => {
                if reference.as_slice() != report.hits() {
                    scores_agree = false;
                }
            }
        }
        rows.push(Row {
            label: label.to_string(),
            workers: cpus + gpus,
            seconds: report.wall_seconds(),
            gcups: report.wall_gcups(),
            paper_seconds: None,
            paper_gcups: None,
        });
    }

    ExecuteOutcome {
        report: Report {
            id: "Execute".into(),
            description: format!(
                "real end-to-end runtime, synthetic UniProt slice ({} seqs, {} queries, wall clock)",
                database.len(),
                queries.len()
            ),
            rows,
        },
        scores_agree,
        db_sequences: database.len(),
        cells,
    }
}

/// Run one observed hybrid search (1 CPU + 1 GPU) on the reduced-scale
/// dataset and return its report, from which callers export the
/// Chrome-trace timeline, metrics and journal (`repro execute
/// --trace-out ...`).
pub fn execute_traced(config: ExecuteConfig) -> swdual_core::SearchReport {
    let database = scaled_database("uniprot", 537_505, 362.0, config.db_scale, config.seed);
    let queries = queries_from_database(
        &database,
        config.queries,
        30,
        5000,
        &MutationProfile::homolog(),
        config.seed + 1,
    );
    SearchBuilder::new()
        .database(database)
        .queries(queries)
        .hybrid_workers(1, 1)
        .policy(AllocationPolicy::DualApprox(KnapsackMethod::Greedy))
        .top_k(5)
        .observe()
        .run()
}

/// Outcome of the fault-injection demonstration.
#[derive(Debug, Clone)]
pub struct FaultDemoOutcome {
    /// The injected plan, rendered in CLI syntax.
    pub plan: String,
    /// Whether the faulted run's hits were bit-identical to the
    /// fault-free run's.
    pub hits_identical: bool,
    /// Fault-free wall seconds.
    pub healthy_seconds: f64,
    /// Faulted (detect + re-plan + re-execute) wall seconds.
    pub faulted_seconds: f64,
}

/// Run the reduced-scale hybrid search twice — fault-free, then under
/// the deterministic fault plan derived from `fault_seed` — and check
/// the hits are bit-identical (the runtime's core fault-tolerance
/// guarantee: faults move work, never change scores).
pub fn execute_fault_demo(config: ExecuteConfig, fault_seed: u64) -> FaultDemoOutcome {
    let database = scaled_database("uniprot", 537_505, 362.0, config.db_scale, config.seed);
    let queries = queries_from_database(
        &database,
        config.queries,
        30,
        5000,
        &MutationProfile::homolog(),
        config.seed + 1,
    );
    let build = || {
        SearchBuilder::new()
            .database(database.clone())
            .queries(queries.clone())
            .hybrid_workers(2, 2)
            .policy(AllocationPolicy::DualApprox(KnapsackMethod::Greedy))
            .top_k(5)
    };
    let healthy = build().run();
    let plan = swdual_runtime::FaultPlan::seeded(fault_seed, 4);
    let faulted = build()
        .fault_seed(fault_seed)
        .min_job_timeout(std::time::Duration::from_millis(250))
        .run();
    FaultDemoOutcome {
        plan: plan.to_string(),
        hits_identical: healthy.hits() == faulted.hits(),
        healthy_seconds: healthy.wall_seconds(),
        faulted_seconds: faulted.wall_seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_demo_hits_are_identical() {
        let out = execute_fault_demo(
            ExecuteConfig {
                db_scale: 0.0002,
                queries: 3,
                seed: 9,
            },
            7,
        );
        assert!(out.hits_identical, "plan `{}` changed the hits", out.plan);
        assert!(out.healthy_seconds > 0.0 && out.faulted_seconds > 0.0);
    }

    #[test]
    fn traced_execution_produces_events() {
        let report = execute_traced(ExecuteConfig {
            db_scale: 0.0002,
            queries: 2,
            seed: 5,
        });
        assert!(report.obs().is_enabled());
        assert!(report.obs().event_count() > 0);
        assert!(report.timeline().contains("traceEvents"));
    }

    #[test]
    fn reduced_execution_is_consistent() {
        let out = execute_reduced(ExecuteConfig {
            db_scale: 0.0003, // ~161 sequences: fast enough for a test
            queries: 3,
            seed: 77,
        });
        assert!(out.scores_agree, "engines disagreed on scores");
        assert_eq!(out.report.rows.len(), 4);
        assert!(out.db_sequences > 100);
        assert!(out.cells > 0);
        for row in &out.report.rows {
            assert!(row.seconds > 0.0);
            assert!(row.gcups > 0.0);
        }
    }
}
