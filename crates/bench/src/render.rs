//! Result rows and their plain-text / Markdown rendering.

use serde::{Deserialize, Serialize};

/// One reproduced measurement compared against the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Configuration label ("SWIPE", "SWDUAL(greedy)", database name…).
    pub label: String,
    /// Worker count.
    pub workers: usize,
    /// Simulated/measured seconds.
    pub seconds: f64,
    /// Simulated/measured GCUPS.
    pub gcups: f64,
    /// The paper's seconds for the same cell, when it reports one.
    pub paper_seconds: Option<f64>,
    /// The paper's GCUPS for the same cell, when it reports one.
    pub paper_gcups: Option<f64>,
}

impl Row {
    /// Ratio of reproduced to paper seconds (1.0 = exact), when
    /// available.
    pub fn seconds_ratio(&self) -> Option<f64> {
        self.paper_seconds.map(|p| self.seconds / p)
    }
}

/// A titled group of rows — one table or one figure series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id ("Table II", "Figure 8"…).
    pub id: String,
    /// What was run.
    pub description: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Render as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.description);
        out.push_str(&format!(
            "{:<22} {:>7} {:>12} {:>9} {:>12} {:>9} {:>7}\n",
            "label", "workers", "seconds", "GCUPS", "paper s", "paper G", "ratio"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>7} {:>12.2} {:>9.2} {:>12} {:>9} {:>7}\n",
                r.label,
                r.workers,
                r.seconds,
                r.gcups,
                r.paper_seconds
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into()),
                r.paper_gcups
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into()),
                r.seconds_ratio()
                    .map(|v| format!("{v:.2}x"))
                    .unwrap_or_else(|| "-".into()),
            ));
        }
        out
    }

    /// Render as a Markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.description);
        out.push_str("| label | workers | seconds | GCUPS | paper s | paper GCUPS | ratio |\n");
        out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {} | {} | {} |\n",
                r.label,
                r.workers,
                r.seconds,
                r.gcups,
                r.paper_seconds
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "—".into()),
                r.paper_gcups
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "—".into()),
                r.seconds_ratio()
                    .map(|v| format!("{v:.2}×"))
                    .unwrap_or_else(|| "—".into()),
            ));
        }
        out.push('\n');
        out
    }

    /// Gnuplot-style data block (the format behind the paper's figures).
    pub fn to_plot_data(&self) -> String {
        let mut out = format!(
            "# {} — {}\n# workers seconds label\n",
            self.id, self.description
        );
        for r in &self.rows {
            out.push_str(&format!("{} {} {}\n", r.workers, r.seconds, r.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Report {
        Report {
            id: "Table X".into(),
            description: "demo".into(),
            rows: vec![
                Row {
                    label: "A".into(),
                    workers: 2,
                    seconds: 100.0,
                    gcups: 5.0,
                    paper_seconds: Some(90.0),
                    paper_gcups: Some(5.5),
                },
                Row {
                    label: "B".into(),
                    workers: 4,
                    seconds: 50.0,
                    gcups: 10.0,
                    paper_seconds: None,
                    paper_gcups: None,
                },
            ],
        }
    }

    #[test]
    fn ratio_computation() {
        let r = demo();
        assert!((r.rows[0].seconds_ratio().unwrap() - 100.0 / 90.0).abs() < 1e-12);
        assert!(r.rows[1].seconds_ratio().is_none());
    }

    #[test]
    fn text_rendering_contains_everything() {
        let text = demo().to_text();
        assert!(text.contains("Table X"));
        assert!(text.contains("100.00"));
        assert!(text.contains("1.11x"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn markdown_rendering_is_a_table() {
        let md = demo().to_markdown();
        assert!(md.starts_with("### Table X"));
        assert!(md.contains("|---"));
        assert!(md.contains("| A | 2 |"));
        assert!(md.contains("—")); // missing paper cells
    }

    #[test]
    fn plot_data_has_one_line_per_row() {
        let p = demo().to_plot_data();
        assert_eq!(p.lines().filter(|l| !l.starts_with('#')).count(), 2);
    }
}
