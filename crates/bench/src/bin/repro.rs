//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 run everything, print text reports
//! repro table1|table2|table3|table4|table5|conclusion
//! repro fig7|fig8|fig9      figure data blocks (gnuplot format)
//! repro execute             reduced-scale real execution (wall clock)
//!       [--trace-out TRACE.json] [--metrics-out METRICS.prom]
//!       [--journal-out EVENTS.jsonl]   export one observed hybrid run
//!       [--fault-seed N]    also run the fault-injection demo: inject
//!                           the seed-derived fault plan and verify the
//!                           hits stay bit-identical
//! repro ablation-policy|ablation-knapsack|ablation-binsearch|ablation-robustness
//! repro write-experiments [PATH]   write EXPERIMENTS.md (default ./EXPERIMENTS.md)
//! repro write-json [PATH]          machine-readable results (default ./results.json)
//! ```

use swdual_bench::execute::{execute_reduced, ExecuteConfig};
use swdual_bench::{ablation, tables};

fn experiments_markdown() -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs reproduction\n\n");
    out.push_str(
        "Regenerated with `cargo run --release -p swdual-bench --bin repro -- write-experiments`.\n\n\
         Simulated numbers come from the calibrated virtual-time platform model\n\
         (`swdual-platform`): per-engine rates fitted to the paper's own Table II\n\
         single-worker cells, Amdahl serial components fitted to its multi-worker\n\
         cells, and a 1.8 s per-task dispatch overhead fitted to Table IV's\n\
         database-size dependence. Schedules are computed by the actual SWDUAL\n\
         scheduler, so imbalance and idle time are emergent, not painted on.\n\n\
         `ratio` = reproduced seconds / paper seconds (1.00× = exact match).\n\n",
    );
    out.push_str("## Table I — applications\n\n```text\n");
    out.push_str(&tables::table1());
    out.push_str("```\n\n");
    out.push_str(&tables::table2().to_markdown());
    out.push_str("## Table III — databases\n\n```text\n");
    out.push_str(&tables::table3());
    out.push_str("```\n\n");
    out.push_str(&tables::table4().to_markdown());
    out.push_str(&tables::table5().to_markdown());
    out.push_str(&tables::conclusion().to_markdown());
    out.push_str(&ablation::ablation_policy().to_markdown());
    out.push_str(&ablation::ablation_knapsack().to_markdown());
    out.push_str(&ablation::ablation_binsearch().to_markdown());
    out.push_str(&ablation::ablation_robustness().to_markdown());

    let exec = execute_reduced(ExecuteConfig::default());
    out.push_str(&exec.report.to_markdown());
    out.push_str(&format!(
        "Reduced-scale execution: {} database sequences, {} cells per search; \
         cross-engine score agreement: **{}**.\n\n",
        exec.db_sequences,
        exec.cells,
        if exec.scores_agree { "yes" } else { "NO" }
    ));

    out.push_str("## Shape criteria (see DESIGN.md §5)\n\n");
    out.push_str(
        "* Ordering at equal workers: SWDUAL < CUDASW++ < SWIPE < STRIPED < SWPS3 — holds.\n\
         * SWDUAL scaling monotone 2→8 workers — holds.\n\
         * Small databases GCUPS-capped by per-task overhead (Table IV) — holds.\n\
         * Heterogeneous ≈ 3.6× homogeneous total time, same scaling — holds.\n\
         * Known deviation: the paper's STRIPED scales *superlinearly*\n\
           (7190→1027 s on 1→4 workers); no work-conserving model reproduces\n\
           that, so our STRIPED scales linearly and its 3–4-worker cells are\n\
           ~1.8× the paper's.\n\
         * Known deviation: our SWDUAL mid-range points (3–5 workers) are\n\
           faster than the paper's measurements because the simulated\n\
           dual-approximation schedule is near-optimally balanced, while the\n\
           real system pays master-side contention the model does not include.\n",
    );
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2().to_text()),
        "table3" => print!("{}", tables::table3()),
        "table4" => print!("{}", tables::table4().to_text()),
        "table5" => print!("{}", tables::table5().to_text()),
        "conclusion" => print!("{}", tables::conclusion().to_text()),
        "fig7" => print!("{}", tables::figure7_data()),
        "fig8" => print!("{}", tables::figure8_data()),
        "fig9" => print!("{}", tables::figure9_data()),
        "execute" => {
            let out = execute_reduced(ExecuteConfig::default());
            print!("{}", out.report.to_text());
            println!(
                "scores agree across engines and worker mixes: {}",
                out.scores_agree
            );
            // Optional observability exports from one observed run.
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let trace_out = flag("--trace-out");
            let metrics_out = flag("--metrics-out");
            let journal_out = flag("--journal-out");
            if trace_out.is_some() || metrics_out.is_some() || journal_out.is_some() {
                let report = swdual_bench::execute::execute_traced(ExecuteConfig::default());
                if let Some(path) = trace_out {
                    std::fs::write(&path, report.timeline()).expect("write trace");
                    println!("wrote {path}");
                }
                if let Some(path) = metrics_out {
                    std::fs::write(&path, report.metrics()).expect("write metrics");
                    println!("wrote {path}");
                }
                if let Some(path) = journal_out {
                    std::fs::write(&path, report.journal()).expect("write journal");
                    println!("wrote {path}");
                }
            }
            if let Some(seed) = flag("--fault-seed") {
                let seed: u64 = seed.parse().expect("--fault-seed must be a number");
                let demo =
                    swdual_bench::execute::execute_fault_demo(ExecuteConfig::default(), seed);
                println!(
                    "fault demo (seed {seed}, plan `{}`): hits identical: {}; \
                     healthy {:.2} s, faulted {:.2} s",
                    demo.plan, demo.hits_identical, demo.healthy_seconds, demo.faulted_seconds
                );
                if !demo.hits_identical {
                    std::process::exit(1);
                }
            }
        }
        "ablation-policy" => print!("{}", ablation::ablation_policy().to_text()),
        "ablation-knapsack" => print!("{}", ablation::ablation_knapsack().to_text()),
        "ablation-binsearch" => print!("{}", ablation::ablation_binsearch().to_text()),
        "ablation-robustness" => print!("{}", ablation::ablation_robustness().to_text()),
        "write-json" => {
            let path = args.get(1).map(String::as_str).unwrap_or("results.json");
            let exec = execute_reduced(ExecuteConfig::default());
            let reports = vec![
                tables::table2(),
                tables::table4(),
                tables::table5(),
                tables::conclusion(),
                ablation::ablation_policy(),
                ablation::ablation_knapsack(),
                ablation::ablation_binsearch(),
                ablation::ablation_robustness(),
                exec.report,
            ];
            let json = serde_json::to_string_pretty(&reports).expect("serialise reports");
            std::fs::write(path, json).expect("write results JSON");
            println!("wrote {path}");
        }
        "write-experiments" => {
            let path = args.get(1).map(String::as_str).unwrap_or("EXPERIMENTS.md");
            let md = experiments_markdown();
            std::fs::write(path, md).expect("write EXPERIMENTS.md");
            println!("wrote {path}");
        }
        "all" => {
            print!("{}", tables::table1());
            println!();
            print!("{}", tables::table2().to_text());
            println!();
            print!("{}", tables::table3());
            println!();
            print!("{}", tables::table4().to_text());
            println!();
            print!("{}", tables::table5().to_text());
            println!();
            print!("{}", tables::conclusion().to_text());
            println!();
            print!("{}", ablation::ablation_policy().to_text());
            println!();
            print!("{}", ablation::ablation_knapsack().to_text());
            println!();
            print!("{}", ablation::ablation_binsearch().to_text());
            println!();
            print!("{}", ablation::ablation_robustness().to_text());
            println!();
            let out = execute_reduced(ExecuteConfig::default());
            print!("{}", out.report.to_text());
            println!(
                "scores agree across engines and worker mixes: {}",
                out.scores_agree
            );
        }
        other => {
            eprintln!("unknown command {other:?}; see `repro` source for usage");
            std::process::exit(2);
        }
    }
}
