//! Event-sourced `DeviceStats`: the fold over the device's event log
//! must agree with hand-accumulated counters on arbitrary workloads,
//! and `warp_efficiency` must behave at its edges.

use proptest::prelude::*;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::{Alphabet, ScoringScheme};
use swdual_gpusim::{DeviceEvent, DeviceSpec, DeviceStats, GpuDevice};

#[test]
fn warp_efficiency_is_one_without_padding() {
    let stats = DeviceStats {
        useful_cells: 0,
        padded_cells: 0,
        ..DeviceStats::default()
    };
    assert_eq!(stats.warp_efficiency(), 1.0);
}

#[test]
fn warp_efficiency_is_useful_over_padded() {
    let stats = DeviceStats {
        useful_cells: 30,
        padded_cells: 40,
        ..DeviceStats::default()
    };
    assert!((stats.warp_efficiency() - 0.75).abs() < 1e-12);
}

#[test]
fn warp_efficiency_of_uniform_lengths_is_one() {
    // Equal-length subjects leave no padding in any warp.
    let mut db = SequenceSet::new(Alphabet::Protein);
    for i in 0..8 {
        db.push(Sequence::from_text(format!("d{i}"), Alphabet::Protein, b"MKVLATGG").unwrap())
            .unwrap();
    }
    let mut dev = GpuDevice::new(DeviceSpec::toy(10_000));
    let resident = dev.upload(&db, false).unwrap();
    let query = Alphabet::Protein.encode(b"MKVLAT").unwrap();
    dev.search(&query, &resident, &ScoringScheme::protein_default());
    assert_eq!(dev.stats().warp_efficiency(), 1.0);
}

#[test]
fn fresh_device_has_empty_log_and_zero_stats() {
    let dev = GpuDevice::new(DeviceSpec::toy(1000));
    assert!(dev.events().is_empty());
    assert_eq!(dev.stats(), DeviceStats::default());
}

fn sequence_set(lengths: &[usize]) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    for (i, &len) in lengths.iter().enumerate() {
        let codes: Vec<u8> = (0..len).map(|j| ((i + j) % 20) as u8).collect();
        set.push(Sequence::from_codes(
            format!("s{i}"),
            Alphabet::Protein,
            codes,
        ))
        .unwrap();
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying a random upload/search workload, the stats folded from
    /// `events()` must equal counters accumulated by hand from the
    /// individual operations' observable results.
    #[test]
    fn folded_stats_match_hand_accumulation(
        db_lens in prop::collection::vec(1usize..60, 1..12),
        query_lens in prop::collection::vec(1usize..40, 1..5),
        sort in any::<bool>(),
    ) {
        let scheme = ScoringScheme::protein_default();
        let mut dev = GpuDevice::new(DeviceSpec::toy(100_000));
        let db = sequence_set(&db_lens);

        // Hand accumulation, the way the pre-event-log device did it.
        let mut expected = DeviceStats::default();
        let before = dev.clock();
        let resident = dev.upload(&db, sort).unwrap();
        let transfer_seconds = dev.clock() - before;
        expected.bytes_h2d += db.total_residues();
        expected.busy_seconds += transfer_seconds;

        for qlen in &query_lens {
            let query: Vec<u8> = (0..*qlen).map(|j| (j % 20) as u8).collect();
            let result = dev.search(&query, &resident, &scheme);
            expected.kernels += 1;
            expected.busy_seconds += result.kernel_seconds;
            expected.useful_cells += db.total_residues() * *qlen as u64;
        }

        let folded = dev.stats();
        prop_assert_eq!(folded.kernels, expected.kernels);
        prop_assert_eq!(folded.bytes_h2d, expected.bytes_h2d);
        prop_assert_eq!(folded.useful_cells, expected.useful_cells);
        prop_assert!(
            (folded.busy_seconds - expected.busy_seconds).abs() <= 1e-9 * expected.busy_seconds,
            "busy {} vs {}", folded.busy_seconds, expected.busy_seconds
        );
        // Padding can only add to the useful work.
        prop_assert!(folded.padded_cells >= folded.useful_cells);

        // The log itself is consistent: one transfer + one kernel per
        // search, events contiguous on the virtual clock.
        prop_assert_eq!(dev.events().len(), 1 + query_lens.len());
        let mut clock = 0.0;
        for event in dev.events() {
            let (start, seconds) = match *event {
                DeviceEvent::Transfer { start, seconds, .. } => (start, seconds),
                DeviceEvent::Kernel { start, seconds, .. } => (start, seconds),
                // No faults are injected in this workload; a fault is an
                // instant on the virtual clock anyway.
                DeviceEvent::Fault { at, .. } => (at, 0.0),
            };
            prop_assert!((start - clock).abs() <= 1e-9 * clock.max(1.0));
            clock = start + seconds;
        }
        prop_assert!((clock - dev.clock()).abs() <= 1e-9 * clock.max(1.0));
    }
}
