//! Occupancy accounting across an injected device fault: once
//! `DeviceEvent::Fault` fires, the board is gone — no further kernels
//! execute, so no busy time accrues, the virtual clock stops, and the
//! occupancy gauges freeze at their last pre-fault values.

use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::{Alphabet, ScoringScheme};
use swdual_gpusim::{DeviceEvent, DeviceSpec, GpuDevice};
use swdual_obs::Obs;

fn database(texts: &[&str]) -> SequenceSet {
    let mut set = SequenceSet::new(Alphabet::Protein);
    for (i, t) in texts.iter().enumerate() {
        set.push(Sequence::from_text(format!("d{i}"), Alphabet::Protein, t.as_bytes()).unwrap())
            .unwrap();
    }
    set
}

#[test]
fn occupancy_gauges_freeze_after_device_fault() {
    let obs = Obs::enabled();
    let mut dev = GpuDevice::new(DeviceSpec::toy(10_000));
    dev.attach_obs(obs.clone(), 0);
    dev.inject_fault_after_kernels(2);

    let db = database(&["MKVLATGGAR", "GGARMKVL", "WWWWMK"]);
    let resident = dev.upload(&db, true).unwrap();
    let query = Alphabet::Protein.encode(b"MKVLAT").unwrap();
    let scheme = ScoringScheme::protein_default();

    // Two kernels complete before the injected fault.
    dev.try_search(&query, &resident, &scheme).unwrap();
    dev.try_search(&query, &resident, &scheme).unwrap();

    let gauges = |obs: &Obs| {
        let snap = obs.metrics().snapshot();
        (
            snap.gauge_value("device_kernel_occupancy", &[("device", "0")]),
            snap.gauge_value("device_transfer_occupancy", &[("device", "0")]),
        )
    };
    let clock_before = dev.clock();
    let busy_before = dev.stats().busy_seconds;
    let kernels_before = dev.stats().kernels;
    let (kernel_occ_before, transfer_occ_before) = gauges(&obs);
    assert!(kernel_occ_before.is_some() && transfer_occ_before.is_some());
    let events_before = obs.event_count();

    // The fault fires; every subsequent launch keeps failing.
    for _ in 0..3 {
        assert!(dev.try_search(&query, &resident, &scheme).is_err());
    }
    assert!(dev.is_failed());

    // No busy time accrued, clock frozen, no new Kernel log entries.
    assert_eq!(dev.clock(), clock_before);
    assert_eq!(dev.stats().busy_seconds, busy_before);
    assert_eq!(dev.stats().kernels, kernels_before);
    assert_eq!(dev.stats().faults, 1);
    let kernels_logged = dev
        .events()
        .iter()
        .filter(|e| matches!(e, DeviceEvent::Kernel { .. }))
        .count();
    assert_eq!(kernels_logged as u64, kernels_before);

    // Occupancy gauges hold their last pre-fault values.
    assert_eq!(gauges(&obs), (kernel_occ_before, transfer_occ_before));

    // The only obs traffic after the fault is the single fault instant:
    // dead devices emit no kernel or transfer spans.
    let events = obs.events();
    let new_events = &events[events_before..];
    assert_eq!(new_events.len(), 1);
    assert_eq!(new_events[0].name, "device_fault");
}
