//! Chunked search for databases larger than device memory, with
//! optional copy/compute overlap.
//!
//! When a database does not fit in global memory, CUDASW++-class tools
//! stream it through the device in chunks, and overlap the PCIe upload
//! of chunk `i+1` with the kernel of chunk `i` using two CUDA streams
//! and double buffering. The simulator reproduces both modes:
//!
//! * [`chunked_search`] — serial: upload, compute, upload, compute…
//! * [`overlapped_search`] — double-buffered: the device is busy
//!   `t₀ + Σ max(kernelᵢ, transferᵢ₊₁) + kernel_last`, the classic
//!   pipeline formula.
//!
//! Both return exact scores (every chunk is really searched) and the
//! modelled wall time, so tests can quantify the overlap win.

use crate::device::GpuDevice;
use crate::memory::MemoryError;
use swdual_bio::seq::{Sequence, SequenceSet};
use swdual_bio::{Alphabet, ScoringScheme};

/// Result of a chunked search.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedResult {
    /// Exact scores in original database order.
    pub scores: Vec<i32>,
    /// Modelled total seconds (transfers + kernels, with or without
    /// overlap).
    pub seconds: f64,
    /// Number of chunks the database was split into.
    pub chunks: usize,
}

/// Split `database` into pieces whose residue totals fit `chunk_bytes`.
/// Sequences are never split; a single sequence larger than the chunk
/// is an error.
pub fn split_into_chunks(
    database: &SequenceSet,
    chunk_bytes: u64,
) -> Result<Vec<SequenceSet>, MemoryError> {
    let mut chunks: Vec<SequenceSet> = Vec::new();
    let mut current = SequenceSet::new(database.alphabet);
    for seq in database {
        let bytes = seq.len() as u64;
        if bytes > chunk_bytes {
            return Err(MemoryError::OutOfMemory {
                requested: bytes,
                free: chunk_bytes,
            });
        }
        if current.total_residues() + bytes > chunk_bytes && !current.is_empty() {
            chunks.push(std::mem::replace(
                &mut current,
                SequenceSet::new(database.alphabet),
            ));
        }
        current.push(seq.clone()).expect("same alphabet");
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    Ok(chunks)
}

/// Scores plus per-chunk kernel and transfer times.
type ChunkTimings = (Vec<i32>, Vec<f64>, Vec<f64>);

fn search_chunks(
    device: &mut GpuDevice,
    chunks: &[SequenceSet],
    query: &[u8],
    scheme: &ScoringScheme,
    sort_chunks: bool,
) -> Result<ChunkTimings, MemoryError> {
    let mut scores = Vec::new();
    let mut kernel_times = Vec::with_capacity(chunks.len());
    let mut transfer_times = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let before = device.clock();
        let resident = device.upload(chunk, sort_chunks)?;
        transfer_times.push(device.clock() - before);
        let result = device.search(query, &resident, scheme);
        kernel_times.push(result.kernel_seconds);
        scores.extend(result.scores);
        device.release(resident)?;
    }
    Ok((scores, kernel_times, transfer_times))
}

/// Serial chunked search: transfers and kernels strictly alternate.
pub fn chunked_search(
    device: &mut GpuDevice,
    database: &SequenceSet,
    query: &[u8],
    scheme: &ScoringScheme,
    sort_chunks: bool,
) -> Result<ChunkedResult, MemoryError> {
    // Leave a little headroom like a real allocator would.
    let chunk_bytes = (device.memory().capacity() as f64 * 0.9) as u64;
    let chunks = split_into_chunks(database, chunk_bytes.max(1))?;
    let (scores, kernel_times, transfer_times) =
        search_chunks(device, chunks.as_slice(), query, scheme, sort_chunks)?;
    let seconds = kernel_times.iter().sum::<f64>() + transfer_times.iter().sum::<f64>();
    Ok(ChunkedResult {
        scores,
        seconds,
        chunks: chunks.len(),
    })
}

/// Double-buffered chunked search: chunk `i+1` uploads while chunk `i`
/// computes (requires room for two chunks; the chunk size is halved
/// accordingly). The modelled time is the pipeline formula; scores are
/// identical to the serial mode.
///
/// Note on clocks: the returned [`ChunkedResult::seconds`] is the
/// *pipelined* wall time; the device's own [`GpuDevice::clock`] and
/// busy counters still accumulate the serial component sums (transfers
/// are work the copy engine performs even when hidden). Consumers must
/// pick one clock — the runtime reports `seconds`.
pub fn overlapped_search(
    device: &mut GpuDevice,
    database: &SequenceSet,
    query: &[u8],
    scheme: &ScoringScheme,
    sort_chunks: bool,
) -> Result<ChunkedResult, MemoryError> {
    let chunk_bytes = (device.memory().capacity() as f64 * 0.45) as u64;
    let chunks = split_into_chunks(database, chunk_bytes.max(1))?;
    let (scores, kernel_times, transfer_times) =
        search_chunks(device, chunks.as_slice(), query, scheme, sort_chunks)?;
    // Pipeline: first transfer exposed, then each kernel hides the next
    // transfer (or vice versa), final kernel exposed.
    let mut seconds = transfer_times.first().copied().unwrap_or(0.0);
    for (i, &kernel) in kernel_times.iter().enumerate() {
        let next_transfer = transfer_times.get(i + 1).copied().unwrap_or(0.0);
        seconds += kernel.max(next_transfer);
    }
    Ok(ChunkedResult {
        scores,
        seconds,
        chunks: chunks.len(),
    })
}

/// Build a toy database of `n` sequences of `len` residues (helper for
/// tests and examples).
pub fn uniform_database(n: usize, len: usize, alphabet: Alphabet) -> SequenceSet {
    let mut set = SequenceSet::new(alphabet);
    let mut state = 0x5EEDu64;
    for i in 0..n {
        let residues: Vec<u8> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 20.min(alphabet.size() as u64 - 1)) as u8
            })
            .collect();
        set.push(Sequence::from_codes(format!("u{i}"), alphabet, residues))
            .expect("alphabet matches");
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;
    use swdual_align::scalar::gotoh_score;

    fn scheme() -> ScoringScheme {
        ScoringScheme::protein_default()
    }

    #[test]
    fn splitting_respects_chunk_size_and_order() {
        let db = uniform_database(20, 50, Alphabet::Protein);
        let chunks = split_into_chunks(&db, 200).unwrap();
        // 50 residues each, 200-residue chunks -> 4 sequences per chunk.
        assert_eq!(chunks.len(), 5);
        let mut ids = Vec::new();
        for c in &chunks {
            assert!(c.total_residues() <= 200);
            ids.extend(c.iter().map(|s| s.id.clone()));
        }
        let expected: Vec<String> = db.iter().map(|s| s.id.clone()).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn oversized_single_sequence_is_an_error() {
        let db = uniform_database(1, 500, Alphabet::Protein);
        assert!(split_into_chunks(&db, 100).is_err());
    }

    #[test]
    fn chunked_scores_are_exact() {
        let db = uniform_database(24, 40, Alphabet::Protein);
        // Device memory fits only ~6 sequences at a time.
        let mut device = GpuDevice::new(DeviceSpec::toy(260));
        let query = uniform_database(1, 80, Alphabet::Protein);
        let query = query.get(0).unwrap().codes().to_vec();
        let result = chunked_search(&mut device, &db, &query, &scheme(), true).unwrap();
        assert!(result.chunks > 1, "database must not fit in one chunk");
        assert_eq!(result.scores.len(), 24);
        for (i, seq) in db.iter().enumerate() {
            assert_eq!(
                result.scores[i],
                gotoh_score(&query, seq.codes(), &scheme()),
                "sequence {i}"
            );
        }
    }

    #[test]
    fn overlap_never_slower_at_equal_chunking() {
        // Slow PCIe makes transfers comparable to kernels, the regime
        // double buffering exists for. The overlap device gets twice the
        // memory so both runs use the same chunk size (0.45 · 2000 =
        // 0.9 · 1000) and the comparison isolates the pipeline effect.
        let mut spec = DeviceSpec::toy(1000);
        spec.pcie_bytes_per_sec = 2.0e6;
        let db = uniform_database(64, 60, Alphabet::Protein);
        let query = uniform_database(1, 100, Alphabet::Protein);
        let query = query.get(0).unwrap().codes().to_vec();

        let mut serial_dev = GpuDevice::new(spec.clone());
        let serial = chunked_search(&mut serial_dev, &db, &query, &scheme(), true).unwrap();
        let mut big = spec.clone();
        big.global_memory = 2000;
        let mut overlap_dev = GpuDevice::new(big);
        let overlap = overlapped_search(&mut overlap_dev, &db, &query, &scheme(), true).unwrap();

        assert_eq!(serial.scores, overlap.scores);
        assert_eq!(serial.chunks, overlap.chunks);
        // Pipeline hides all but one stage per step: strictly faster
        // when both stages are nonzero.
        assert!(
            overlap.seconds < serial.seconds,
            "overlap {} >= serial {}",
            overlap.seconds,
            serial.seconds
        );
        // And the win is substantial in this balanced regime (> 15%).
        assert!(overlap.seconds < serial.seconds * 0.85);
    }

    #[test]
    fn single_chunk_degenerates_cleanly() {
        let db = uniform_database(4, 20, Alphabet::Protein);
        let mut device = GpuDevice::new(DeviceSpec::toy(10_000));
        let query = vec![0u8; 30];
        let result = chunked_search(&mut device, &db, &query, &scheme(), false).unwrap();
        assert_eq!(result.chunks, 1);
        assert_eq!(result.scores.len(), 4);
    }

    #[test]
    fn device_memory_is_released_between_chunks() {
        let db = uniform_database(30, 40, Alphabet::Protein);
        let mut device = GpuDevice::new(DeviceSpec::toy(300));
        let query = vec![1u8; 50];
        chunked_search(&mut device, &db, &query, &scheme(), true).unwrap();
        assert_eq!(device.memory().used(), 0);
        // Peak usage stayed within one chunk (90% of capacity).
        assert!(device.memory().peak() <= 270);
    }
}
