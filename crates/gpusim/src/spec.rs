//! Device specifications and the throughput model.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
///
/// The architectural fields (SMs, warp size, clock) shape the padding
/// and occupancy behaviour of the kernel model; `peak_gcups` and
/// `query_half_length` are calibrated end-to-end observables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp (lock-step width).
    pub warp_size: usize,
    /// Global memory capacity in bytes.
    pub global_memory: u64,
    /// Host-to-device / device-to-host bandwidth in bytes per second
    /// (PCIe, assumed symmetric).
    pub pcie_bytes_per_sec: f64,
    /// Fixed cost of one kernel launch in seconds (driver + dispatch).
    pub kernel_launch_latency: f64,
    /// Peak sustained Smith-Waterman throughput in GCUPS for long
    /// queries — the number CUDASW++-class kernels report.
    pub peak_gcups: f64,
    /// Query length at which throughput reaches half of peak. GPU SW
    /// kernels need long queries to fill the pipeline; CUDASW++ 2.0's
    /// own evaluation shows exactly this saturation shape.
    pub query_half_length: f64,
}

impl DeviceSpec {
    /// The Nvidia Tesla C2050 of the paper's Idgraf machine (§V).
    ///
    /// Calibration: Table II gives CUDASW++ 2.0 on one C2050 785.26 s
    /// for the UniProt workload of ≈ 1.95e13 cells ⇒ ≈ 24.8 GCUPS
    /// sustained; the paper's query mix (100–5000 aa, mean ≈ 2500)
    /// reaches ≈ 90% of peak under this half-length, putting peak at
    /// ≈ 27.5 GCUPS — consistent with published CUDASW++ 2.0 numbers
    /// for Fermi-class boards.
    pub fn tesla_c2050() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla C2050 (simulated)".into(),
            sm_count: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            global_memory: 3 * 1024 * 1024 * 1024,
            warp_size: 32,
            pcie_bytes_per_sec: 5.0e9, // PCIe 2.0 x16 effective
            kernel_launch_latency: 15e-6,
            peak_gcups: 27.5,
            query_half_length: 280.0,
        }
    }

    /// A deliberately small device for tests: tiny memory, low rate, so
    /// capacity and chunking paths are exercised cheaply.
    pub fn toy(memory_bytes: u64) -> DeviceSpec {
        DeviceSpec {
            name: "ToyGPU".into(),
            sm_count: 2,
            cores_per_sm: 8,
            clock_ghz: 1.0,
            warp_size: 4,
            global_memory: memory_bytes,
            pcie_bytes_per_sec: 1.0e9,
            kernel_launch_latency: 1e-5,
            peak_gcups: 1.0,
            query_half_length: 100.0,
        }
    }

    /// Effective sustained throughput (GCUPS) for a query of `len`
    /// residues: `peak · len / (len + half_length)`.
    ///
    /// This saturation curve is what makes short queries *relatively*
    /// cheaper on CPUs — the heterogeneity the SWDUAL knapsack exploits.
    pub fn effective_gcups(&self, query_len: usize) -> f64 {
        if query_len == 0 {
            return 0.0;
        }
        let len = query_len as f64;
        self.peak_gcups * len / (len + self.query_half_length)
    }

    /// Seconds to move `bytes` across PCIe.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bytes_per_sec
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> usize {
        self.sm_count * self.cores_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_architecture() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.total_cores(), 448); // the C2050's CUDA core count
        assert_eq!(d.warp_size, 32);
        assert!(d.global_memory >= 3 * 1024 * 1024 * 1024);
    }

    #[test]
    fn throughput_saturates_with_query_length() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.effective_gcups(0), 0.0);
        let short = d.effective_gcups(100);
        let medium = d.effective_gcups(1000);
        let long = d.effective_gcups(5000);
        assert!(short < medium && medium < long);
        assert!(long < d.peak_gcups);
        // Half-length means literally half of peak.
        let half = d.effective_gcups(d.query_half_length as usize);
        assert!((half - d.peak_gcups / 2.0).abs() < 0.05);
    }

    #[test]
    fn calibration_matches_paper_table2() {
        // One C2050 must land near 24.8 GCUPS on the paper's query mix
        // (mean length ≈ 2500).
        let d = DeviceSpec::tesla_c2050();
        let sustained = d.effective_gcups(2500);
        assert!(
            (sustained - 24.8).abs() < 0.5,
            "sustained {sustained} GCUPS vs paper-derived 24.8"
        );
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let d = DeviceSpec::tesla_c2050();
        let t1 = d.transfer_time(1_000_000_000);
        let t2 = d.transfer_time(2_000_000_000);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        assert!((t1 - 0.2).abs() < 1e-9); // 1 GB over 5 GB/s
    }
}
