//! Device specifications and the throughput model.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
///
/// The architectural fields (SMs, warp size, clock) shape the padding
/// and occupancy behaviour of the kernel model; `peak_gcups` and
/// `query_half_length` are calibrated end-to-end observables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores per SM.
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp (lock-step width).
    pub warp_size: usize,
    /// Global memory capacity in bytes.
    pub global_memory: u64,
    /// Host-to-device / device-to-host bandwidth in bytes per second
    /// (PCIe, assumed symmetric).
    pub pcie_bytes_per_sec: f64,
    /// Fixed cost of one kernel launch in seconds (driver + dispatch).
    pub kernel_launch_latency: f64,
    /// Peak sustained Smith-Waterman throughput in GCUPS for long
    /// queries — the number CUDASW++-class kernels report.
    pub peak_gcups: f64,
    /// Query length at which throughput reaches half of peak. GPU SW
    /// kernels need long queries to fill the pipeline; CUDASW++ 2.0's
    /// own evaluation shows exactly this saturation shape.
    pub query_half_length: f64,
}

impl DeviceSpec {
    /// The Nvidia Tesla C2050 of the paper's Idgraf machine (§V).
    ///
    /// Calibration: Table II gives CUDASW++ 2.0 on one C2050 785.26 s
    /// for the UniProt workload of ≈ 1.95e13 cells ⇒ ≈ 24.8 GCUPS
    /// sustained; the paper's query mix (100–5000 aa, mean ≈ 2500)
    /// reaches ≈ 90% of peak under this half-length, putting peak at
    /// ≈ 27.5 GCUPS — consistent with published CUDASW++ 2.0 numbers
    /// for Fermi-class boards.
    pub fn tesla_c2050() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla C2050 (simulated)".into(),
            sm_count: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            global_memory: 3 * 1024 * 1024 * 1024,
            warp_size: 32,
            pcie_bytes_per_sec: 5.0e9, // PCIe 2.0 x16 effective
            kernel_launch_latency: 15e-6,
            peak_gcups: 27.5,
            query_half_length: 280.0,
        }
    }

    /// A Xeon-Phi-style many-core accelerator (SWAPHI-class, 5110P-like).
    ///
    /// Calibration: SWAPHI reports up to ~58.8 GCUPS on one 5110P for
    /// long queries; a single-board offload configuration comparable to
    /// the C2050 setup sustains less once PCIe staging and ring-bus
    /// contention are charged. We model a 38.5 GCUPS kernel peak with a
    /// half-length of 150 — many-core SW saturates faster than Fermi
    /// CUDA kernels because each 512-bit vector unit is filled by one
    /// query row rather than an inter-task thread block.
    pub fn xeon_phi() -> DeviceSpec {
        DeviceSpec {
            name: "Xeon Phi 5110P (simulated)".into(),
            sm_count: 60,
            cores_per_sm: 4, // 4 hardware threads per in-order core
            clock_ghz: 1.053,
            warp_size: 16, // 512-bit vector / 32-bit lanes
            global_memory: 8 * 1024 * 1024 * 1024,
            pcie_bytes_per_sec: 6.2e9,
            kernel_launch_latency: 1.5e-4, // offload-region setup, not a CUDA launch
            peak_gcups: 38.5,
            query_half_length: 150.0,
        }
    }

    /// A KNL-style self-hosted AVX-512 many-core (Rucci et al. class).
    ///
    /// Self-hosted: the "device" is the host, so there is no PCIe
    /// staging in the real system — we keep a very high nominal link
    /// rate so modelled transfers are negligible rather than zero.
    /// AVX-512 SW implementations on KNL reach ~70–80 GCUPS and are
    /// nearly length-flat (striped SIMD saturates at tens of residues),
    /// hence the small half-length.
    pub fn knl() -> DeviceSpec {
        DeviceSpec {
            name: "Xeon Phi 7250 KNL (simulated)".into(),
            sm_count: 64,
            cores_per_sm: 4,
            clock_ghz: 1.3,
            warp_size: 32,                          // 512-bit vector / 16-bit lanes
            global_memory: 16 * 1024 * 1024 * 1024, // MCDRAM
            pcie_bytes_per_sec: 80.0e9,             // on-package: effectively no staging
            kernel_launch_latency: 2.0e-6,
            peak_gcups: 76.0,
            query_half_length: 35.0,
        }
    }

    /// A BioSEAL-style associative processing-in-memory accelerator.
    ///
    /// The acceleration curve is qualitatively different from every
    /// SIMT/SIMD device: the associative array scores all database rows
    /// in lock-step, so throughput is essentially flat in query length
    /// (half-length 8) and very high (hundreds of GCUPS), but each task
    /// pays a larger fixed reconfiguration/setup cost than a kernel
    /// launch.
    pub fn bioseal() -> DeviceSpec {
        DeviceSpec {
            name: "BioSEAL associative PIM (simulated)".into(),
            sm_count: 512, // associative array banks
            cores_per_sm: 256,
            clock_ghz: 0.5,
            warp_size: 128,
            global_memory: 32 * 1024 * 1024 * 1024,
            pcie_bytes_per_sec: 25.0e9,
            kernel_launch_latency: 8.0e-4, // per-task microcode reconfiguration
            peak_gcups: 255.0,
            query_half_length: 8.0,
        }
    }

    /// A deliberately small device for tests: tiny memory, low rate, so
    /// capacity and chunking paths are exercised cheaply.
    pub fn toy(memory_bytes: u64) -> DeviceSpec {
        DeviceSpec {
            name: "ToyGPU".into(),
            sm_count: 2,
            cores_per_sm: 8,
            clock_ghz: 1.0,
            warp_size: 4,
            global_memory: memory_bytes,
            pcie_bytes_per_sec: 1.0e9,
            kernel_launch_latency: 1e-5,
            peak_gcups: 1.0,
            query_half_length: 100.0,
        }
    }

    /// Effective sustained throughput (GCUPS) for a query of `len`
    /// residues: `peak · len / (len + half_length)`.
    ///
    /// This saturation curve is what makes short queries *relatively*
    /// cheaper on CPUs — the heterogeneity the SWDUAL knapsack exploits.
    pub fn effective_gcups(&self, query_len: usize) -> f64 {
        if query_len == 0 {
            return 0.0;
        }
        let len = query_len as f64;
        self.peak_gcups * len / (len + self.query_half_length)
    }

    /// Seconds to move `bytes` across PCIe.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bytes_per_sec
    }

    /// Total CUDA cores.
    pub fn total_cores(&self) -> usize {
        self.sm_count * self.cores_per_sm
    }
}

/// Named calibrated accelerator classes — the device zoo.
///
/// Each class carries both a kernel-level [`DeviceSpec`] (what the
/// simulator executes with) and an *end-to-end estimator curve* (what
/// the scheduler predicts with), mirroring the C2050 split between
/// `DeviceSpec::tesla_c2050()` (kernel peak 27.5) and the runtime
/// estimator's 32.9 GCUPS end-to-end calibration. The curves are
/// deliberately shaped differently per class: that diversity in
/// acceleration ratio over query length is what the cross-zoo property
/// suite exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Fermi-class CUDA board — the paper's own accelerator.
    C2050,
    /// Xeon-Phi-style offload many-core (SWAPHI).
    Phi,
    /// KNL-style self-hosted AVX-512 many-core (Rucci et al.).
    Knl,
    /// BioSEAL-style associative in-memory accelerator.
    Bioseal,
}

impl DeviceClass {
    /// Every member of the zoo, in canonical order.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::C2050,
        DeviceClass::Phi,
        DeviceClass::Knl,
        DeviceClass::Bioseal,
    ];

    /// Short CLI/journal name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceClass::C2050 => "c2050",
            DeviceClass::Phi => "phi",
            DeviceClass::Knl => "knl",
            DeviceClass::Bioseal => "bioseal",
        }
    }

    /// Parse a CLI name (the inverse of [`DeviceClass::name`]).
    pub fn parse(s: &str) -> Option<DeviceClass> {
        match s.trim().to_ascii_lowercase().as_str() {
            "c2050" | "tesla" => Some(DeviceClass::C2050),
            "phi" | "xeon-phi" => Some(DeviceClass::Phi),
            "knl" => Some(DeviceClass::Knl),
            "bioseal" => Some(DeviceClass::Bioseal),
            _ => None,
        }
    }

    /// The kernel-level device description the simulator runs with.
    pub fn spec(&self) -> DeviceSpec {
        match self {
            DeviceClass::C2050 => DeviceSpec::tesla_c2050(),
            DeviceClass::Phi => DeviceSpec::xeon_phi(),
            DeviceClass::Knl => DeviceSpec::knl(),
            DeviceClass::Bioseal => DeviceSpec::bioseal(),
        }
    }

    /// Recover the class of a spec produced by [`DeviceClass::spec`]
    /// (by name — specs are the source of truth for everything else).
    pub fn of_spec(spec: &DeviceSpec) -> Option<DeviceClass> {
        DeviceClass::ALL
            .iter()
            .copied()
            .find(|c| c.spec().name == spec.name)
    }

    /// End-to-end estimator curve `(peak_gcups, half_length,
    /// per_task_overhead_seconds)` — the numbers the scheduler's rate
    /// model should use for this class. For the C2050 these are exactly
    /// the PR-0 `gpu_tesla()` calibration (32.9 / 280 / 1.8), so
    /// existing runs stay bit-identical; the other classes scale the
    /// kernel peak by the same end-to-end/kernel ratio the C2050
    /// calibration implies (32.9 / 27.5 ≈ 1.196) and keep each class's
    /// own saturation shape.
    pub fn estimator_curve(&self) -> (f64, f64, f64) {
        match self {
            DeviceClass::C2050 => (32.9, 280.0, 1.8),
            DeviceClass::Phi => (46.0, 150.0, 1.8),
            DeviceClass::Knl => (91.0, 35.0, 1.8),
            DeviceClass::Bioseal => (305.0, 8.0, 2.4),
        }
    }

    /// One-line human description for `--help` and docs.
    pub fn description(&self) -> &'static str {
        match self {
            DeviceClass::C2050 => "Fermi-class CUDA board (paper baseline)",
            DeviceClass::Phi => "Xeon-Phi-style offload many-core (SWAPHI)",
            DeviceClass::Knl => "KNL-style self-hosted AVX-512 (Rucci et al.)",
            DeviceClass::Bioseal => "BioSEAL-style associative in-memory accelerator",
        }
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DeviceClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DeviceClass::parse(s).ok_or_else(|| {
            let names: Vec<&str> = DeviceClass::ALL.iter().map(|c| c.name()).collect();
            format!(
                "unknown device class '{s}' (expected one of: {})",
                names.join(", ")
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_architecture() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.total_cores(), 448); // the C2050's CUDA core count
        assert_eq!(d.warp_size, 32);
        assert!(d.global_memory >= 3 * 1024 * 1024 * 1024);
    }

    #[test]
    fn throughput_saturates_with_query_length() {
        let d = DeviceSpec::tesla_c2050();
        assert_eq!(d.effective_gcups(0), 0.0);
        let short = d.effective_gcups(100);
        let medium = d.effective_gcups(1000);
        let long = d.effective_gcups(5000);
        assert!(short < medium && medium < long);
        assert!(long < d.peak_gcups);
        // Half-length means literally half of peak.
        let half = d.effective_gcups(d.query_half_length as usize);
        assert!((half - d.peak_gcups / 2.0).abs() < 0.05);
    }

    #[test]
    fn calibration_matches_paper_table2() {
        // One C2050 must land near 24.8 GCUPS on the paper's query mix
        // (mean length ≈ 2500).
        let d = DeviceSpec::tesla_c2050();
        let sustained = d.effective_gcups(2500);
        assert!(
            (sustained - 24.8).abs() < 0.5,
            "sustained {sustained} GCUPS vs paper-derived 24.8"
        );
    }

    #[test]
    fn zoo_names_round_trip() {
        for class in DeviceClass::ALL {
            assert_eq!(DeviceClass::parse(class.name()), Some(class));
            assert_eq!(class.name().parse::<DeviceClass>().ok(), Some(class));
            assert_eq!(DeviceClass::of_spec(&class.spec()), Some(class));
        }
        assert_eq!(DeviceClass::parse("warp-drive"), None);
        assert!("warp-drive".parse::<DeviceClass>().is_err());
        assert_eq!(DeviceClass::of_spec(&DeviceSpec::toy(1 << 20)), None);
    }

    #[test]
    fn zoo_c2050_is_the_paper_device() {
        assert_eq!(DeviceClass::C2050.spec(), DeviceSpec::tesla_c2050());
        assert_eq!(DeviceClass::C2050.estimator_curve(), (32.9, 280.0, 1.8));
    }

    #[test]
    fn zoo_curves_are_distinct_shapes() {
        // Acceleration curves must genuinely differ: ordering by
        // effective throughput changes with query length. At 64
        // residues the near-flat devices (knl, bioseal) already run at
        // most of peak while the C2050 is deep in its ramp.
        let c2050 = DeviceClass::C2050.spec();
        let knl = DeviceClass::Knl.spec();
        let bioseal = DeviceClass::Bioseal.spec();
        let frac = |d: &DeviceSpec, len: usize| d.effective_gcups(len) / d.peak_gcups;
        assert!(frac(&knl, 64) > 0.6);
        assert!(frac(&bioseal, 64) > 0.85);
        assert!(frac(&c2050, 64) < 0.25);
        // All half-lengths pairwise distinct — no two classes share a
        // saturation shape.
        let mut halves: Vec<f64> = DeviceClass::ALL
            .iter()
            .map(|c| c.spec().query_half_length)
            .collect();
        halves.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in halves.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn zoo_estimator_curves_exceed_kernel_ramp_sanely() {
        // The estimator peak stays within a sane envelope of the kernel
        // peak (end-to-end calibration absorbs host-side staging, so it
        // may exceed the kernel number like the C2050's 32.9 vs 27.5,
        // but not wildly).
        for class in DeviceClass::ALL {
            let (peak, half, overhead) = class.estimator_curve();
            let spec = class.spec();
            assert!(peak > 0.0 && half > 0.0 && overhead > 0.0);
            let ratio = peak / spec.peak_gcups;
            assert!(
                (1.0..1.3).contains(&ratio),
                "{}: estimator/kernel peak ratio {ratio}",
                class.name()
            );
        }
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let d = DeviceSpec::tesla_c2050();
        let t1 = d.transfer_time(1_000_000_000);
        let t2 = d.transfer_time(2_000_000_000);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        assert!((t1 - 0.2).abs() < 1e-9); // 1 GB over 5 GB/s
    }
}
