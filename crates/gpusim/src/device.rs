//! The simulated GPU device: database residency, batched SW kernels,
//! virtual clock and counters.
//!
//! Execution model (one kernel = one query against a resident database
//! chunk, the CUDASW++ task shape):
//!
//! * Subjects are processed in **warps** of `warp_size` lanes running in
//!   lock-step; a warp occupies the pipeline until its *longest* subject
//!   finishes, so the cost of a warp is `query_len · warp_size ·
//!   max_subject_len` cells — shorter lanes are padding waste. Sorting
//!   the database by length (which [`GpuDevice::upload`] can do, like
//!   CUDASW++'s pre-sorted database) recovers most of that waste.
//! * Padded cells are charged at the query-length-dependent effective
//!   rate of [`DeviceSpec::effective_gcups`], plus a fixed kernel launch
//!   latency.
//! * Scores themselves are computed exactly with the inter-sequence
//!   kernel of `swdual-align` (the algorithmic core CUDASW++'s SIMT
//!   kernel implements per thread).

use crate::memory::{Allocation, DeviceMemory, MemoryError};
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};
use swdual_align::interseq;
use swdual_bio::seq::SequenceSet;
use swdual_bio::ScoringScheme;
use swdual_obs::{Obs, Track};

/// One entry in the device's event log.
///
/// The log is the source of truth: [`GpuDevice::stats`] is a fold over
/// these events rather than a separately maintained set of counters, so
/// the aggregate view can never drift from the recorded history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceEvent {
    /// A host→device transfer.
    Transfer {
        /// Bytes moved over PCIe.
        bytes: u64,
        /// Virtual-clock start time in seconds.
        start: f64,
        /// Modelled transfer duration in seconds.
        seconds: f64,
    },
    /// One kernel launch.
    Kernel {
        /// Query × subject residues actually compared.
        useful_cells: u64,
        /// Cells charged including warp padding.
        padded_cells: u64,
        /// Virtual-clock start time in seconds.
        start: f64,
        /// Modelled kernel duration in seconds.
        seconds: f64,
    },
    /// The device failed (an injected fault fired). No further kernels
    /// or transfers execute after this entry.
    Fault {
        /// Virtual-clock time at which the failure surfaced.
        at: f64,
        /// Kernels completed before the failure.
        after_kernels: u64,
    },
}

/// Error surfaced when an injected device fault fires: the board is
/// gone and every subsequent kernel or transfer fails. Mirrors what a
/// real accelerator runtime reports when a device drops off the bus
/// mid-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// Kernels the device completed before failing.
    pub after_kernels: u64,
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated GPU device failed after {} kernel(s)",
            self.after_kernels
        )
    }
}

impl std::error::Error for DeviceFault {}

/// Counters accumulated over the device's lifetime, derived from the
/// event log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Kernels launched.
    pub kernels: u64,
    /// Useful DP cells (query × subject residues actually compared).
    pub useful_cells: u64,
    /// Cells charged including warp padding.
    pub padded_cells: u64,
    /// Bytes moved host→device.
    pub bytes_h2d: u64,
    /// Seconds of simulated busy time (kernels + transfers).
    pub busy_seconds: f64,
    /// Device failures recorded (0 or 1: a failed device stays failed).
    pub faults: u64,
}

impl DeviceStats {
    /// Fraction of charged cells that were useful (1.0 = no padding
    /// waste).
    pub fn warp_efficiency(&self) -> f64 {
        if self.padded_cells == 0 {
            1.0
        } else {
            self.useful_cells as f64 / self.padded_cells as f64
        }
    }
}

/// Result of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Exact local-alignment score per database sequence, in database
    /// order.
    pub scores: Vec<i32>,
    /// Simulated execution time of the kernel in seconds.
    pub kernel_seconds: f64,
}

/// A database resident in device memory.
#[derive(Debug)]
pub struct ResidentDb {
    allocation: Allocation,
    /// Encoded subjects in device order.
    subjects: Vec<Vec<u8>>,
    /// Mapping device order → original database index (identity when the
    /// upload did not sort).
    original_index: Vec<usize>,
}

impl ResidentDb {
    /// Number of resident sequences.
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    /// True when no sequences are resident.
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }
}

/// One simulated GPU.
///
/// ```
/// use swdual_gpusim::{DeviceSpec, GpuDevice};
/// use swdual_bio::{Alphabet, ScoringScheme, Sequence, SequenceSet};
///
/// let mut db = SequenceSet::new(Alphabet::Protein);
/// db.push(Sequence::from_text("d0", Alphabet::Protein, b"MKWVTFISLL").unwrap()).unwrap();
///
/// let mut device = GpuDevice::new(DeviceSpec::tesla_c2050());
/// let resident = device.upload(&db, true).unwrap();
/// let query = Alphabet::Protein.encode(b"MKWVTF").unwrap();
/// let result = device.search(&query, &resident, &ScoringScheme::protein_default());
/// assert_eq!(result.scores.len(), 1);
/// assert!(device.clock() > 0.0); // transfers + kernel on the virtual clock
/// ```
#[derive(Debug)]
pub struct GpuDevice {
    spec: DeviceSpec,
    memory: DeviceMemory,
    clock: f64,
    log: Vec<DeviceEvent>,
    obs: Obs,
    obs_device_id: usize,
    /// Injected fault: the device dies once this many kernels have
    /// completed. `None` = healthy forever.
    fail_after_kernels: Option<u64>,
    kernels_launched: u64,
    failed: bool,
    // Virtual-clock busy accumulators feeding the occupancy gauges.
    busy_kernel: f64,
    busy_transfer: f64,
    /// Task currently being served, stamped onto every stage span
    /// (H2D / kernel / D2H) as causal lineage. `None` outside a task
    /// (e.g. the resident-database upload shared by all tasks).
    lineage_task: Option<usize>,
}

impl GpuDevice {
    /// Bring up a device of the given spec with an empty memory and a
    /// zeroed clock.
    pub fn new(spec: DeviceSpec) -> GpuDevice {
        let memory = DeviceMemory::new(spec.global_memory);
        GpuDevice {
            spec,
            memory,
            clock: 0.0,
            log: Vec::new(),
            obs: Obs::disabled(),
            obs_device_id: 0,
            fail_after_kernels: None,
            kernels_launched: 0,
            failed: false,
            busy_kernel: 0.0,
            busy_transfer: 0.0,
            lineage_task: None,
        }
    }

    /// Set (or clear) the task whose work the device is about to do.
    /// Subsequent stage spans carry a `task` arg linking them into the
    /// journal's dispatch → H2D → kernel → D2H causal chain.
    pub fn set_lineage(&mut self, task: Option<usize>) {
        self.lineage_task = task;
    }

    /// Append the lineage tag, when one is set, to a span's args.
    fn with_lineage(&self, args: &mut Vec<(&str, f64)>) {
        if let Some(t) = self.lineage_task {
            args.push(("task", t as f64));
        }
    }

    /// Update the per-device registry series: kernel/transfer time
    /// histograms were just fed one value; refresh the occupancy
    /// gauges (fraction of the device's virtual clock spent in kernels
    /// / transfers).
    fn update_device_metrics(&self, histogram: &str, seconds: f64) {
        let metrics = self.obs.metrics();
        if !metrics.is_enabled() {
            return;
        }
        let metrics = metrics.for_shard(self.obs_device_id);
        let device = self.obs_device_id.to_string();
        let labels = [("device", device.as_str())];
        metrics.observe(histogram, &labels, seconds);
        if self.clock > 0.0 {
            metrics.gauge(
                "device_kernel_occupancy",
                &labels,
                self.busy_kernel / self.clock,
            );
            metrics.gauge(
                "device_transfer_occupancy",
                &labels,
                self.busy_transfer / self.clock,
            );
        }
    }

    /// Inject a deterministic fault: the device fails once `n` kernels
    /// have completed (`n = 0` means it fails on first use). The fault
    /// surfaces through [`GpuDevice::check_fault`] /
    /// [`GpuDevice::try_search`] as a [`DeviceFault`].
    pub fn inject_fault_after_kernels(&mut self, n: u64) {
        self.fail_after_kernels = Some(n);
    }

    /// Whether an injected fault has fired.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Poll the injected fault. The first failing call appends a
    /// [`DeviceEvent::Fault`] to the event log and records an obs
    /// instant; every later call keeps failing without re-logging.
    pub fn check_fault(&mut self) -> Result<(), DeviceFault> {
        if self.failed {
            return Err(DeviceFault {
                after_kernels: self.kernels_launched,
            });
        }
        match self.fail_after_kernels {
            Some(n) if self.kernels_launched >= n => {
                self.failed = true;
                self.log.push(DeviceEvent::Fault {
                    at: self.clock,
                    after_kernels: self.kernels_launched,
                });
                self.obs.instant(
                    Track::Device(self.obs_device_id),
                    "device_fault",
                    &[("after_kernels", self.kernels_launched as f64)],
                );
                self.obs.counter("gpu_device_faults", 1.0);
                Err(DeviceFault {
                    after_kernels: self.kernels_launched,
                })
            }
            _ => Ok(()),
        }
    }

    /// Route this device's kernel/transfer events to `obs` as spans on
    /// [`Track::Device`]`(device_id)`, in addition to the internal log.
    /// Announces the spec (peak rate, PCIe bandwidth, launch latency)
    /// as a `device_spec` instant so post-hoc profilers can draw the
    /// roofline for this device from the journal alone.
    pub fn attach_obs(&mut self, obs: Obs, device_id: usize) {
        self.obs = obs;
        self.obs_device_id = device_id;
        self.obs.instant(
            Track::Device(device_id),
            "device_spec",
            &[
                ("peak_gcups", self.spec.peak_gcups),
                ("pcie_bytes_per_sec", self.spec.pcie_bytes_per_sec),
                ("kernel_launch_latency", self.spec.kernel_launch_latency),
                ("warp_size", self.spec.warp_size as f64),
            ],
        );
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Current virtual time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The full event history, in execution order.
    pub fn events(&self) -> &[DeviceEvent] {
        &self.log
    }

    /// Lifetime counters, folded from the event log.
    pub fn stats(&self) -> DeviceStats {
        let mut stats = DeviceStats::default();
        for event in &self.log {
            match *event {
                DeviceEvent::Transfer { bytes, seconds, .. } => {
                    stats.bytes_h2d += bytes;
                    stats.busy_seconds += seconds;
                }
                DeviceEvent::Kernel {
                    useful_cells,
                    padded_cells,
                    seconds,
                    ..
                } => {
                    stats.kernels += 1;
                    stats.useful_cells += useful_cells;
                    stats.padded_cells += padded_cells;
                    stats.busy_seconds += seconds;
                }
                DeviceEvent::Fault { .. } => {
                    stats.faults += 1;
                }
            }
        }
        stats
    }

    /// Device memory state.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Upload a database to the device, charging the PCIe transfer to
    /// the clock. `sort_by_length` mimics CUDASW++'s pre-sorted database
    /// layout, which minimises warp padding.
    pub fn upload(
        &mut self,
        database: &SequenceSet,
        sort_by_length: bool,
    ) -> Result<ResidentDb, MemoryError> {
        let wall_start = self.obs.now();
        let bytes: u64 = database.total_residues();
        let allocation = self.memory.alloc(bytes)?;

        let mut order: Vec<usize> = (0..database.len()).collect();
        if sort_by_length {
            // Descending length: warps see near-equal neighbours.
            order.sort_by(|&a, &b| {
                database
                    .get(b)
                    .unwrap()
                    .len()
                    .cmp(&database.get(a).unwrap().len())
                    .then(a.cmp(&b))
            });
        }
        let subjects: Vec<Vec<u8>> = order
            .iter()
            .map(|&i| database.get(i).unwrap().residues.clone())
            .collect();

        let t = self.spec.transfer_time(bytes);
        let start = self.clock;
        self.clock += t;
        self.log.push(DeviceEvent::Transfer {
            bytes,
            start,
            seconds: t,
        });
        let mut args = vec![("bytes", bytes as f64)];
        self.with_lineage(&mut args);
        self.obs.span(
            Track::Device(self.obs_device_id),
            "h2d_transfer",
            wall_start,
            self.obs.now() - wall_start,
            Some((start, t)),
            &args,
        );
        self.obs.counter("gpu_bytes_h2d", bytes as f64);
        self.busy_transfer += t;
        self.update_device_metrics("device_h2d_seconds", t);
        Ok(ResidentDb {
            allocation,
            subjects,
            original_index: order,
        })
    }

    /// Release a resident database.
    pub fn release(&mut self, db: ResidentDb) -> Result<(), MemoryError> {
        self.memory.release(db.allocation)
    }

    /// Predict (without executing) the kernel time for a query of
    /// `query_len` against a resident database. The scheduler's
    /// processing-time estimates `p̄ⱼ` use exactly this function, so
    /// estimate and simulation agree by construction.
    pub fn predict_kernel_seconds(&self, query_len: usize, db: &ResidentDb) -> f64 {
        Self::predict_with_spec(&self.spec, query_len, &db.subjects)
    }

    /// Prediction from lengths only (used by the platform model before
    /// any device exists).
    pub fn predict_from_lengths(
        spec: &DeviceSpec,
        query_len: usize,
        subject_lengths_sorted_desc: &[usize],
    ) -> f64 {
        if query_len == 0 || subject_lengths_sorted_desc.is_empty() {
            return spec.kernel_launch_latency;
        }
        let mut padded: u64 = 0;
        for warp in subject_lengths_sorted_desc.chunks(spec.warp_size) {
            let max_len = *warp.iter().max().unwrap() as u64;
            padded += max_len * warp.len() as u64;
        }
        let padded_cells = padded * query_len as u64;
        let rate = spec.effective_gcups(query_len) * 1e9;
        spec.kernel_launch_latency + padded_cells as f64 / rate
    }

    fn predict_with_spec(spec: &DeviceSpec, query_len: usize, subjects: &[Vec<u8>]) -> f64 {
        if query_len == 0 || subjects.is_empty() {
            return spec.kernel_launch_latency;
        }
        let mut padded: u64 = 0;
        for warp in subjects.chunks(spec.warp_size) {
            let max_len = warp.iter().map(|s| s.len()).max().unwrap() as u64;
            padded += max_len * warp.len() as u64;
        }
        let padded_cells = padded * query_len as u64;
        let rate = spec.effective_gcups(query_len) * 1e9;
        spec.kernel_launch_latency + padded_cells as f64 / rate
    }

    /// Fault-aware kernel launch: polls the injected fault first, then
    /// runs [`GpuDevice::search`]. Workers drive the device through this
    /// entry point so an injected device failure surfaces as an error
    /// instead of silently returning scores from a dead board.
    pub fn try_search(
        &mut self,
        query: &[u8],
        db: &ResidentDb,
        scheme: &ScoringScheme,
    ) -> Result<KernelResult, DeviceFault> {
        self.check_fault()?;
        Ok(self.search(query, db, scheme))
    }

    /// Launch one search kernel: `query` against the whole resident
    /// database. Returns exact scores (in the database's *original*
    /// order) and advances the virtual clock by the modelled kernel
    /// time.
    pub fn search(
        &mut self,
        query: &[u8],
        db: &ResidentDb,
        scheme: &ScoringScheme,
    ) -> KernelResult {
        let wall_start = self.obs.now();
        // Exact scores via the inter-sequence kernel (device order).
        let refs: Vec<&[u8]> = db.subjects.iter().map(|s| s.as_slice()).collect();
        let device_scores = interseq::interseq_search(query, &refs, scheme);

        // Undo the residency permutation.
        let mut scores = vec![0i32; db.subjects.len()];
        for (device_pos, &orig) in db.original_index.iter().enumerate() {
            scores[orig] = device_scores[device_pos];
        }

        // Timing model.
        let kernel_seconds = Self::predict_with_spec(&self.spec, query.len(), &db.subjects);
        let useful: u64 = db
            .subjects
            .iter()
            .map(|s| s.len() as u64 * query.len() as u64)
            .sum();
        let mut padded: u64 = 0;
        for warp in db.subjects.chunks(self.spec.warp_size) {
            let max_len = warp.iter().map(|s| s.len()).max().unwrap_or(0) as u64;
            padded += max_len * warp.len() as u64 * query.len() as u64;
        }

        let start = self.clock;
        self.clock += kernel_seconds;
        self.kernels_launched += 1;
        self.log.push(DeviceEvent::Kernel {
            useful_cells: useful,
            padded_cells: padded,
            start,
            seconds: kernel_seconds,
        });
        let wall_dur = self.obs.now() - wall_start;
        let mut args = vec![
            ("useful_cells", useful as f64),
            ("padded_cells", padded as f64),
            ("query_len", query.len() as f64),
        ];
        self.with_lineage(&mut args);
        self.obs.span(
            Track::Device(self.obs_device_id),
            "kernel",
            wall_start,
            wall_dur,
            Some((start, kernel_seconds)),
            &args,
        );
        if self.obs.is_profiling() {
            // CUPTI-style phase attribution: the modelled kernel time
            // splits into the fixed dispatch latency and the warp-padded
            // compute that follows it; the measured wall time is carved
            // up in the same proportions. These spans subdivide the
            // `kernel` span above — they never advance the clock.
            let launch = self.spec.kernel_launch_latency.min(kernel_seconds);
            let compute = kernel_seconds - launch;
            let launch_frac = if kernel_seconds > 0.0 {
                launch / kernel_seconds
            } else {
                0.0
            };
            let track = Track::Device(self.obs_device_id);
            let mut phase_args = Vec::new();
            self.with_lineage(&mut phase_args);
            self.obs.span(
                track,
                "kernel_launch",
                wall_start,
                wall_dur * launch_frac,
                Some((start, launch)),
                &phase_args,
            );
            self.obs.span(
                track,
                "kernel_compute",
                wall_start + wall_dur * launch_frac,
                wall_dur * (1.0 - launch_frac),
                Some((start + launch, compute)),
                &phase_args,
            );
            // Score readback. The simulator models it as overlapped
            // async readback from pinned memory, so it is recorded for
            // the roofline's byte accounting but does NOT advance the
            // device clock — profiling must never perturb the modelled
            // timing the scheduler's bounds are checked against.
            let d2h_bytes = 4.0 * scores.len() as f64;
            let mut d2h_args = vec![("bytes", d2h_bytes)];
            self.with_lineage(&mut d2h_args);
            self.obs.span(
                track,
                "d2h_transfer",
                wall_start + wall_dur,
                0.0,
                Some((
                    start + kernel_seconds,
                    self.spec.transfer_time(d2h_bytes as u64),
                )),
                &d2h_args,
            );
        }
        self.obs.counter("gpu_kernels", 1.0);
        self.obs.counter("gpu_useful_cells", useful as f64);
        self.busy_kernel += kernel_seconds;
        self.update_device_metrics("device_kernel_seconds", kernel_seconds);

        KernelResult {
            scores,
            kernel_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_align::scalar::gotoh_score;
    use swdual_bio::seq::Sequence;
    use swdual_bio::Alphabet;

    fn db(texts: &[&str]) -> SequenceSet {
        let mut set = SequenceSet::new(Alphabet::Protein);
        for (i, t) in texts.iter().enumerate() {
            set.push(
                Sequence::from_text(format!("d{i}"), Alphabet::Protein, t.as_bytes()).unwrap(),
            )
            .unwrap();
        }
        set
    }

    fn scheme() -> ScoringScheme {
        ScoringScheme::protein_default()
    }

    #[test]
    fn upload_charges_transfer_and_memory() {
        let mut dev = GpuDevice::new(DeviceSpec::toy(1000));
        let database = db(&["MKVLAT", "GGAR"]);
        let resident = dev.upload(&database, false).unwrap();
        assert_eq!(resident.len(), 2);
        assert_eq!(dev.memory().used(), 10);
        assert!(dev.clock() > 0.0);
        assert_eq!(dev.stats().bytes_h2d, 10);
        dev.release(resident).unwrap();
        assert_eq!(dev.memory().used(), 0);
    }

    #[test]
    fn oversized_database_is_rejected() {
        let mut dev = GpuDevice::new(DeviceSpec::toy(5));
        let database = db(&["MKVLAT", "GGAR"]); // 10 residues
        assert!(dev.upload(&database, false).is_err());
        // Clock must not advance on a failed upload.
        assert_eq!(dev.clock(), 0.0);
    }

    #[test]
    fn kernel_scores_are_exact_in_original_order() {
        let mut dev = GpuDevice::new(GpuDevice::new(DeviceSpec::toy(10_000)).spec.clone());
        let database = db(&["MKVLATGGAR", "MK", "GGARMKVLAT", "WWWW"]);
        let resident = dev.upload(&database, true).unwrap(); // sorted residency
        let query = Alphabet::Protein.encode(b"MKVLAT").unwrap();
        let result = dev.search(&query, &resident, &scheme());
        for (i, seq) in database.iter().enumerate() {
            assert_eq!(
                result.scores[i],
                gotoh_score(&query, seq.codes(), &scheme()),
                "db sequence {i}"
            );
        }
        assert!(result.kernel_seconds > 0.0);
        assert_eq!(dev.stats().kernels, 1);
    }

    #[test]
    fn sorted_residency_improves_warp_efficiency() {
        // Wildly mixed lengths: unsorted warps pay heavy padding.
        let texts: Vec<String> = (0..32)
            .map(|i| {
                if i % 2 == 0 {
                    "M".repeat(400)
                } else {
                    "M".repeat(10)
                }
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let database = db(&refs);
        let query = Alphabet::Protein.encode(&[b'K'; 200]).unwrap();

        let mut unsorted_dev = GpuDevice::new(DeviceSpec::toy(100_000));
        let r = unsorted_dev.upload(&database, false).unwrap();
        unsorted_dev.search(&query, &r, &scheme());

        let mut sorted_dev = GpuDevice::new(DeviceSpec::toy(100_000));
        let r = sorted_dev.upload(&database, true).unwrap();
        sorted_dev.search(&query, &r, &scheme());

        assert!(
            sorted_dev.stats().warp_efficiency() > unsorted_dev.stats().warp_efficiency(),
            "sorted {} <= unsorted {}",
            sorted_dev.stats().warp_efficiency(),
            unsorted_dev.stats().warp_efficiency()
        );
        // Sorted is also faster on the clock.
        assert!(sorted_dev.clock() < unsorted_dev.clock());
    }

    #[test]
    fn prediction_matches_execution() {
        let mut dev = GpuDevice::new(DeviceSpec::tesla_c2050());
        let database = db(&["MKVLATGGAR", "MKVL", "GGARMKVLATAAAA"]);
        let resident = dev.upload(&database, true).unwrap();
        let query = Alphabet::Protein.encode(b"MKVLATGGARNDCEQ").unwrap();
        let predicted = dev.predict_kernel_seconds(query.len(), &resident);
        let result = dev.search(&query, &resident, &scheme());
        assert!((predicted - result.kernel_seconds).abs() < 1e-15);
    }

    #[test]
    fn injected_fault_fires_after_threshold_and_is_logged_once() {
        let mut dev = GpuDevice::new(DeviceSpec::toy(10_000));
        dev.inject_fault_after_kernels(2);
        let database = db(&["MKVLAT", "GGAR"]);
        let resident = dev.upload(&database, false).unwrap();
        let query = Alphabet::Protein.encode(b"MKVL").unwrap();
        // Two kernels succeed.
        assert!(dev.try_search(&query, &resident, &scheme()).is_ok());
        assert!(dev.try_search(&query, &resident, &scheme()).is_ok());
        // The third fails — and keeps failing.
        let err = dev.try_search(&query, &resident, &scheme()).unwrap_err();
        assert_eq!(err.after_kernels, 2);
        assert!(dev.is_failed());
        assert!(dev.try_search(&query, &resident, &scheme()).is_err());
        // Exactly one Fault entry in the log, folded into stats.
        let faults = dev
            .events()
            .iter()
            .filter(|e| matches!(e, DeviceEvent::Fault { .. }))
            .count();
        assert_eq!(faults, 1);
        assert_eq!(dev.stats().faults, 1);
        assert_eq!(dev.stats().kernels, 2);
        assert!(err.to_string().contains("after 2"));
    }

    #[test]
    fn healthy_device_try_search_matches_search() {
        let mut a = GpuDevice::new(DeviceSpec::toy(10_000));
        let mut b = GpuDevice::new(DeviceSpec::toy(10_000));
        let database = db(&["MKVLATGGAR", "WWWW"]);
        let ra = a.upload(&database, true).unwrap();
        let rb = b.upload(&database, true).unwrap();
        let query = Alphabet::Protein.encode(b"MKVLAT").unwrap();
        let via_try = a.try_search(&query, &ra, &scheme()).unwrap();
        let via_plain = b.search(&query, &rb, &scheme());
        assert_eq!(via_try, via_plain);
    }

    #[test]
    fn fault_at_zero_kernels_fails_first_use() {
        let mut dev = GpuDevice::new(DeviceSpec::toy(10_000));
        dev.inject_fault_after_kernels(0);
        let database = db(&["MKVL"]);
        let resident = dev.upload(&database, false).unwrap();
        let query = Alphabet::Protein.encode(b"MK").unwrap();
        assert!(dev.try_search(&query, &resident, &scheme()).is_err());
        assert_eq!(dev.stats().kernels, 0);
    }

    #[test]
    fn empty_query_costs_only_launch_latency() {
        let mut dev = GpuDevice::new(DeviceSpec::toy(1000));
        let database = db(&["MKVL"]);
        let resident = dev.upload(&database, false).unwrap();
        let result = dev.search(&[], &resident, &scheme());
        assert_eq!(result.scores, vec![0]);
        assert!((result.kernel_seconds - dev.spec().kernel_launch_latency).abs() < 1e-12);
    }

    #[test]
    fn profiling_emits_phase_spans_without_perturbing_the_clock() {
        let database = db(&["MKVLATGGAR", "MKVL", "GGARMKVLATAAAA"]);
        let query = Alphabet::Protein.encode(b"MKVLAT").unwrap();

        let run = |profiling: bool| {
            let obs = Obs::enabled();
            obs.set_profiling(profiling);
            let mut dev = GpuDevice::new(DeviceSpec::tesla_c2050());
            dev.attach_obs(obs.clone(), 0);
            let resident = dev.upload(&database, true).unwrap();
            dev.search(&query, &resident, &ScoringScheme::protein_default());
            (dev.clock(), obs.events())
        };
        let (clock_off, events_off) = run(false);
        let (clock_on, events_on) = run(true);

        // Profiling must not change the modelled timeline.
        assert_eq!(clock_off, clock_on);

        // Unprofiled runs carry no phase detail.
        assert!(events_off.iter().all(|e| !e.is_profile_detail()));
        // Profiled runs carry launch, compute and the overlapped D2H.
        for name in ["kernel_launch", "kernel_compute", "d2h_transfer"] {
            assert!(
                events_on.iter().any(|e| e.name == name),
                "missing {name} span"
            );
        }
        // Launch + compute tile the kernel span exactly.
        let virt = |name: &str| {
            events_on
                .iter()
                .find(|e| e.name == name)
                .and_then(|e| e.virt_dur)
                .unwrap()
        };
        assert!((virt("kernel_launch") + virt("kernel_compute") - virt("kernel")).abs() < 1e-15);
        // The spec instant announces the roofline parameters, and the
        // kernel span names its query length.
        let spec = events_on
            .iter()
            .find(|e| e.name == "device_spec")
            .expect("device_spec instant");
        assert!(spec.args.iter().any(|(k, _)| k == "peak_gcups"));
        let kernel = events_on.iter().find(|e| e.name == "kernel").unwrap();
        assert!(kernel
            .args
            .iter()
            .any(|(k, v)| k == "query_len" && *v == query.len() as f64));
    }

    #[test]
    fn device_activity_reaches_a_live_bus_subscriber() {
        // The device publishes through the shared `Obs`, so a bus
        // subscriber attached before the kernel runs must see the
        // Device-track spans live, in journal order.
        let obs = Obs::enabled();
        let sub = obs.subscribe();
        let mut dev = GpuDevice::new(DeviceSpec::tesla_c2050());
        dev.attach_obs(obs.clone(), 3);
        let database = db(&["MKVLATGGAR", "MKVL", "GGARMKVLATAAAA"]);
        let resident = dev.upload(&database, true).unwrap();
        let query = Alphabet::Protein.encode(b"MKVLAT").unwrap();
        dev.search(&query, &resident, &scheme());

        let live = sub.drain();
        assert_eq!(sub.dropped(), 0);
        let device_names: Vec<&str> = live
            .iter()
            .filter(|e| matches!(e.track, Track::Device(3)))
            .map(|e| e.name.as_str())
            .collect();
        for name in ["h2d_transfer", "kernel"] {
            assert!(device_names.contains(&name), "missing live {name} span");
        }
        // The live feed mirrors the journal exactly when nothing drops.
        let journal: Vec<String> = obs.events().iter().map(|e| e.name.clone()).collect();
        let seen: Vec<String> = live.iter().map(|e| e.name.clone()).collect();
        assert_eq!(seen, journal);
    }

    #[test]
    fn longer_queries_run_at_higher_gcups() {
        // Same database; query 10x longer must take < 10x+launch time
        // (rate improves with length).
        let database_texts: Vec<String> = (0..64).map(|_| "M".repeat(300)).collect();
        let refs: Vec<&str> = database_texts.iter().map(|s| s.as_str()).collect();
        let database = db(&refs);
        let mut dev = GpuDevice::new(DeviceSpec::tesla_c2050());
        let resident = dev.upload(&database, true).unwrap();
        let short = dev.predict_kernel_seconds(100, &resident);
        let long = dev.predict_kernel_seconds(1000, &resident);
        let launch = dev.spec().kernel_launch_latency;
        assert!(long - launch < 10.0 * (short - launch));
    }
}
