//! Device global-memory model.
//!
//! Tracks allocations against the device capacity so that oversized
//! databases are rejected (forcing the chunked-upload path, as real
//! CUDASW++ does when a database exceeds device memory) and so the
//! simulator can report honest residency numbers.

use std::collections::HashMap;

/// Handle to one device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Allocation(u64);

/// Errors from the memory model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The requested size exceeds the remaining free memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// The handle does not reference a live allocation.
    InvalidHandle,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, free {free} B"
                )
            }
            MemoryError::InvalidHandle => write!(f, "invalid device allocation handle"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// A bump-counter allocator over a fixed capacity (no fragmentation
/// model — device allocators for search tools allocate a handful of
/// large arenas).
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    next_id: u64,
    live: HashMap<u64, u64>,
    /// Running peak of `used`.
    peak: u64,
}

impl DeviceMemory {
    /// A memory of `capacity` bytes.
    pub fn new(capacity: u64) -> DeviceMemory {
        DeviceMemory {
            capacity,
            used: 0,
            next_id: 0,
            live: HashMap::new(),
            peak: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of usage.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Allocate `bytes`, failing when capacity would be exceeded.
    pub fn alloc(&mut self, bytes: u64) -> Result<Allocation, MemoryError> {
        if bytes > self.free() {
            return Err(MemoryError::OutOfMemory {
                requested: bytes,
                free: self.free(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.live.insert(id, bytes);
        Ok(Allocation(id))
    }

    /// Release an allocation.
    pub fn release(&mut self, handle: Allocation) -> Result<(), MemoryError> {
        let bytes = self
            .live
            .remove(&handle.0)
            .ok_or(MemoryError::InvalidHandle)?;
        self.used -= bytes;
        Ok(())
    }

    /// Size of a live allocation.
    pub fn size_of(&self, handle: Allocation) -> Result<u64, MemoryError> {
        self.live
            .get(&handle.0)
            .copied()
            .ok_or(MemoryError::InvalidHandle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release_accounting() {
        let mut mem = DeviceMemory::new(1000);
        let a = mem.alloc(400).unwrap();
        let b = mem.alloc(500).unwrap();
        assert_eq!(mem.used(), 900);
        assert_eq!(mem.free(), 100);
        assert_eq!(mem.peak(), 900);
        mem.release(a).unwrap();
        assert_eq!(mem.used(), 500);
        assert_eq!(mem.peak(), 900); // peak sticks
        assert_eq!(mem.size_of(b).unwrap(), 500);
    }

    #[test]
    fn out_of_memory_is_reported_with_numbers() {
        let mut mem = DeviceMemory::new(100);
        mem.alloc(80).unwrap();
        let err = mem.alloc(30).unwrap_err();
        assert_eq!(
            err,
            MemoryError::OutOfMemory {
                requested: 30,
                free: 20
            }
        );
        assert!(err.to_string().contains("30"));
    }

    #[test]
    fn double_release_is_an_error() {
        let mut mem = DeviceMemory::new(100);
        let a = mem.alloc(10).unwrap();
        mem.release(a).unwrap();
        assert_eq!(mem.release(a), Err(MemoryError::InvalidHandle));
        assert_eq!(mem.size_of(a), Err(MemoryError::InvalidHandle));
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut mem = DeviceMemory::new(64);
        assert!(mem.alloc(64).is_ok());
        assert_eq!(mem.free(), 0);
        assert!(mem.alloc(1).is_err());
    }

    #[test]
    fn zero_byte_allocation_is_fine() {
        let mut mem = DeviceMemory::new(10);
        let a = mem.alloc(0).unwrap();
        assert_eq!(mem.used(), 0);
        mem.release(a).unwrap();
    }
}
