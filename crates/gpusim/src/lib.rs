//! # swdual-gpusim — a SIMT GPU device simulator
//!
//! The paper executes its GPU tasks with CUDASW++ 2.0 on Nvidia Tesla
//! C2050 boards. This environment has no CUDA devices, so the
//! reproduction substitutes a *device simulator* that preserves the two
//! properties the SWDUAL scheduler actually consumes:
//!
//! 1. **Correct results** — the simulated kernel really computes
//!    Smith-Waterman scores (via the `swdual-align` kernels), so the
//!    whole pipeline remains end-to-end verifiable.
//! 2. **Faithful timing structure** — task processing times on the
//!    device come from a calibrated performance model with the same
//!    shape as the real hardware: throughput that saturates with query
//!    length, warp-granular padding waste on unsorted batches, kernel
//!    launch latency, and PCIe transfer costs. These are exactly the
//!    effects that make `p̄ⱼ` differ across tasks and hence give the
//!    dual-approximation knapsack something to optimise.
//!
//! Module map:
//! * [`spec`] — device descriptions ([`spec::DeviceSpec::tesla_c2050`]
//!   is calibrated against the paper's own Table II/IV numbers).
//! * [`memory`] — global-memory allocation tracking and transfer
//!   timing.
//! * [`device`] — the simulated device: upload databases, launch
//!   batched SW kernels, read the virtual clock and counters.

pub mod chunked;
pub mod device;
pub mod memory;
pub mod spec;

pub use device::{DeviceEvent, DeviceFault, DeviceStats, GpuDevice, KernelResult};
pub use spec::{DeviceClass, DeviceSpec};
