//! # swdual-platform — calibrated hybrid-platform simulator
//!
//! The paper's evaluation ran on *Idgraf* (2× quad-core Xeon, 8× Tesla
//! C2050) against multi-gigacell workloads — ≈ 2·10¹³ DP cells for the
//! UniProt runs. Recomputing those literally is infeasible here, so the
//! tables and figures are regenerated on a *virtual-time* model of the
//! same machine:
//!
//! * [`calib`] — per-engine throughput models (SWPS3, STRIPED, SWIPE,
//!   CUDASW++, and SWDUAL's worker engines), each constant fitted to a
//!   specific cell of the paper's Table II/IV and documented as such.
//! * [`workload`] — the paper's workloads as length distributions:
//!   40 queries of 100–5000 aa, the five §V-B databases (Table III),
//!   and the §V-C homogeneous/heterogeneous query sets; plus the
//!   conversion from a workload to a scheduler [`swdual_sched::TaskSet`].
//! * [`experiment`] — run one configuration (engine/policy × workers ×
//!   database) in virtual time and report wall-clock seconds and GCUPS
//!   exactly like the paper's tables; [`experiment::run_zoo`] composes
//!   mixed accelerator zoos (`swdual_gpusim::DeviceClass`) and checks
//!   the 2λ certificate survives replay on each device's true curve.
//!
//! The simulation is *schedule-exact*: task completion times come from
//! the same list-scheduling/dual-approximation machinery the real
//! implementation uses, so load imbalance, idle time and the
//! heterogeneity effects the paper discusses all emerge rather than
//! being painted on. Only the per-task processing times are modelled.

pub mod calib;
pub mod experiment;
pub mod workload;

pub use calib::EngineModel;
pub use experiment::{run_hybrid, run_single_kind, run_zoo, HybridPolicy, RunResult, ZooOutcome};
pub use workload::{DatabaseSpec, Workload};
