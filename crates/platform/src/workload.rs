//! The paper's workloads as length distributions, and the conversion to
//! scheduler task sets.
//!
//! Database sizes follow Table III; total residue counts are derived
//! from Table IV (`cells = GCUPS × seconds` at 2 workers, divided by the
//! query set's 1e5 residues). Query sets follow §V: 40 sequences of
//! 100–5000 aa (mean ≈ 2500); §V-C adds a homogeneous set (4500–5000)
//! and a heterogeneous one (4–35213, the extremes of UniProt).

use crate::calib::{EngineModel, UNIPROT_RESIDUES};
use serde::{Deserialize, Serialize};
use swdual_sched::{Task, TaskSet};

/// A database described by its aggregate shape (what the virtual-time
/// model needs; `swdual-datagen` generates matching real sequences for
/// the reduced-scale executions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseSpec {
    /// Database name as in Table III.
    pub name: String,
    /// Number of sequences (Table III).
    pub sequences: u64,
    /// Total residues (derived from Table IV; see module docs).
    pub residues: u64,
}

impl DatabaseSpec {
    /// Ensembl Dog Proteins: 25 160 sequences, ≈ 1.48e7 residues
    /// (Table IV: 78.36 s × 18.91 GCUPS at 2 workers ⇒ 1.482e12 cells).
    pub fn ensembl_dog() -> DatabaseSpec {
        DatabaseSpec {
            name: "Ensembl Dog".into(),
            sequences: 25_160,
            residues: 14_820_000,
        }
    }

    /// Ensembl Rat Proteins: 32 971 sequences, ≈ 1.74e7 residues
    /// (75.85 s × 22.97 GCUPS ⇒ 1.742e12 cells).
    pub fn ensembl_rat() -> DatabaseSpec {
        DatabaseSpec {
            name: "Ensembl Rat".into(),
            sequences: 32_971,
            residues: 17_420_000,
        }
    }

    /// RefSeq Mouse Proteins: 29 437 sequences, ≈ 1.60e7 residues
    /// (84.40 s × 18.99 GCUPS ⇒ 1.603e12 cells).
    pub fn refseq_mouse() -> DatabaseSpec {
        DatabaseSpec {
            name: "RefSeq Mouse".into(),
            sequences: 29_437,
            residues: 16_030_000,
        }
    }

    /// RefSeq Human Proteins: 34 705 sequences, ≈ 1.97e7 residues
    /// (95.09 s × 20.70 GCUPS ⇒ 1.968e12 cells).
    pub fn refseq_human() -> DatabaseSpec {
        DatabaseSpec {
            name: "RefSeq Human".into(),
            sequences: 34_705,
            residues: 19_680_000,
        }
    }

    /// UniProt: 537 505 sequences, ≈ 1.9455e8 residues (Table IV:
    /// 543.28 s × 35.81 GCUPS ⇒ 1.9455e13 cells over 1e5 query
    /// residues).
    pub fn uniprot() -> DatabaseSpec {
        DatabaseSpec {
            name: "UniProt".into(),
            sequences: 537_505,
            residues: UNIPROT_RESIDUES,
        }
    }

    /// The five databases of Table III, in the paper's order.
    pub fn all_paper_databases() -> Vec<DatabaseSpec> {
        vec![
            DatabaseSpec::ensembl_dog(),
            DatabaseSpec::ensembl_rat(),
            DatabaseSpec::refseq_human(),
            DatabaseSpec::refseq_mouse(),
            DatabaseSpec::uniprot(),
        ]
    }

    /// Mean sequence length.
    pub fn mean_length(&self) -> f64 {
        self.residues as f64 / self.sequences as f64
    }
}

/// Deterministic uniform sampler (splitmix-style) so workloads are
/// reproducible without threading a RNG through every call site.
fn det_uniform(seed: u64, i: u64, lo: usize, hi: usize) -> usize {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    lo + (z % (hi - lo + 1) as u64) as usize
}

/// One experiment workload: a query set (lengths) against a database.
///
/// ```
/// use swdual_platform::workload::{DatabaseSpec, Workload};
/// let w = Workload::paper_queries(DatabaseSpec::uniprot());
/// assert_eq!(w.query_lengths.len(), 40);
/// // ≈ 1.95e13 DP cells, the paper's UniProt workload.
/// assert!((w.total_cells() as f64 - 1.9455e13).abs() / 1.9455e13 < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Query lengths in task order.
    pub query_lengths: Vec<usize>,
    /// The database searched.
    pub database: DatabaseSpec,
}

impl Workload {
    /// The paper's standard query set: 40 sequences, lengths uniform in
    /// 100–5000 ("40 real query sequences of minimum size 100 and
    /// maximum size 5,000 amino acids"), seeded deterministically. The
    /// sample is nudged so the total is exactly 1e5 residues (mean
    /// 2500), matching the Table IV cell-count derivation.
    pub fn paper_queries(database: DatabaseSpec) -> Workload {
        let mut lengths: Vec<usize> = (0..40)
            .map(|i| det_uniform(0x5EED_2014, i, 100, 5000))
            .collect();
        // Rescale to hit the derived total of 1e5 residues.
        let total: usize = lengths.iter().sum();
        let target = 100_000usize;
        for l in &mut lengths {
            *l = ((*l as f64) * target as f64 / total as f64)
                .round()
                .max(100.0) as usize;
        }
        // Final exact correction on the largest entry.
        let diff = target as i64 - lengths.iter().sum::<usize>() as i64;
        let imax = (0..lengths.len()).max_by_key(|&i| lengths[i]).unwrap();
        lengths[imax] = (lengths[imax] as i64 + diff).max(100) as usize;
        Workload {
            query_lengths: lengths,
            database,
        }
    }

    /// §V-C homogeneous set: 40 sequences of 4500–5000 aa.
    pub fn homogeneous_queries(database: DatabaseSpec) -> Workload {
        let lengths = (0..40)
            .map(|i| det_uniform(0x5EED_4500, i, 4500, 5000))
            .collect();
        Workload {
            query_lengths: lengths,
            database,
        }
    }

    /// §V-C heterogeneous set: 40 sequences of 4–35 213 aa (the
    /// smallest and largest sequences in UniProt).
    pub fn heterogeneous_queries(database: DatabaseSpec) -> Workload {
        let lengths = (0..40)
            .map(|i| det_uniform(0x5EED_3521, i, 4, 35_213))
            .collect();
        Workload {
            query_lengths: lengths,
            database,
        }
    }

    /// Total DP cells of this workload.
    pub fn total_cells(&self) -> u64 {
        self.query_lengths.iter().map(|&l| l as u64).sum::<u64>() * self.database.residues
    }

    /// Build the scheduler instance: one task per query, processing
    /// times from the two worker models (paper §II-C: "each task is
    /// equivalent to the comparison of one [query] to the whole
    /// database").
    pub fn build_tasks(&self, cpu: &EngineModel, gpu: &EngineModel) -> TaskSet {
        TaskSet::new(
            self.query_lengths
                .iter()
                .enumerate()
                .map(|(id, &len)| {
                    Task::new(
                        id,
                        cpu.task_seconds(len, self.database.residues),
                        gpu.task_seconds(len, self.database.residues),
                    )
                })
                .collect(),
        )
    }

    /// Single-engine task set (used for the CPU-only / GPU-only
    /// baselines, where both "times" are the same engine).
    pub fn build_tasks_single(&self, engine: &EngineModel) -> TaskSet {
        self.build_tasks(engine, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts_match_paper() {
        let dbs = DatabaseSpec::all_paper_databases();
        assert_eq!(dbs.len(), 5);
        assert_eq!(dbs[0].sequences, 25_160);
        assert_eq!(dbs[1].sequences, 32_971);
        assert_eq!(dbs[2].sequences, 34_705);
        assert_eq!(dbs[3].sequences, 29_437);
        assert_eq!(dbs[4].sequences, 537_505);
    }

    #[test]
    fn database_mean_lengths_are_plausible_proteins() {
        for db in DatabaseSpec::all_paper_databases() {
            let mean = db.mean_length();
            assert!((300.0..700.0).contains(&mean), "{}: mean {mean}", db.name);
        }
    }

    #[test]
    fn paper_queries_match_derived_totals() {
        let w = Workload::paper_queries(DatabaseSpec::uniprot());
        assert_eq!(w.query_lengths.len(), 40);
        assert_eq!(w.query_lengths.iter().sum::<usize>(), 100_000);
        assert!(w.query_lengths.iter().all(|&l| (100..=5100).contains(&l)));
        // Total cells ≈ the paper's 1.9455e13.
        let cells = w.total_cells() as f64;
        assert!((cells - 1.9455e13).abs() / 1.9455e13 < 0.001, "{cells}");
    }

    #[test]
    fn homogeneous_set_is_tight() {
        let w = Workload::homogeneous_queries(DatabaseSpec::uniprot());
        assert!(w.query_lengths.iter().all(|&l| (4500..=5000).contains(&l)));
        // Total cells near the paper's 3.62e13 (998.27 s × 36.3 GCUPS).
        let cells = w.total_cells() as f64;
        assert!((cells - 3.62e13).abs() / 3.62e13 < 0.05, "{cells}");
    }

    #[test]
    fn heterogeneous_set_spans_uniprot_extremes() {
        let w = Workload::heterogeneous_queries(DatabaseSpec::uniprot());
        assert!(w.query_lengths.iter().all(|&l| (4..=35_213).contains(&l)));
        let min = *w.query_lengths.iter().min().unwrap();
        let max = *w.query_lengths.iter().max().unwrap();
        assert!(min < 2000, "min {min}");
        assert!(max > 25_000, "max {max}");
        // Total cells near the paper's 1.335e14 (3554.36 s × 37.55).
        let cells = w.total_cells() as f64;
        assert!((cells - 1.335e14).abs() / 1.335e14 < 0.2, "{cells}");
    }

    #[test]
    fn tasks_inherit_length_heterogeneity() {
        let w = Workload::paper_queries(DatabaseSpec::uniprot());
        let tasks = w.build_tasks(
            &EngineModel::swdual_cpu_worker(),
            &EngineModel::swdual_gpu_worker(),
        );
        assert_eq!(tasks.len(), 40);
        assert!(tasks.all_accelerated());
        // Acceleration varies: the knapsack has real choices to make.
        let accels: Vec<f64> = tasks.iter().map(|t| t.acceleration()).collect();
        let min = accels.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = accels.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.2, "accel range {min}..{max} too flat");
    }

    #[test]
    fn deterministic_workloads() {
        let a = Workload::paper_queries(DatabaseSpec::uniprot());
        let b = Workload::paper_queries(DatabaseSpec::uniprot());
        assert_eq!(a, b);
    }
}
