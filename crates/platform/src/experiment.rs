//! Virtual-time experiment driver: run one (engine/policy, workers,
//! workload) configuration and report the numbers the paper's tables
//! report.

use crate::calib::EngineModel;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use swdual_gpusim::DeviceClass;
use swdual_sched::binsearch::{dual_approx_schedule, BinarySearchConfig};
use swdual_sched::dual::KnapsackMethod;
use swdual_sched::knapsack::DpConfig;
use swdual_sched::policies;
use swdual_sched::schedule::{PeKind, Schedule};
use swdual_sched::task::Task;
use swdual_sched::{PlatformSpec, TaskSet};

/// Allocation policy of a hybrid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HybridPolicy {
    /// SWDUAL: dual approximation with the greedy knapsack (the paper's
    /// implementation).
    DualGreedy,
    /// Dual approximation with the DP knapsack (the 3/2 refinement).
    DualDp,
    /// Self-scheduling, one task at a time to the next free worker [10].
    SelfScheduling,
    /// Static proportional-power split [12].
    Proportional,
    /// Static equal-power split [11].
    EqualPower,
    /// Earliest-finish-time insertion.
    HeftLite,
}

impl HybridPolicy {
    /// All policies, for sweeps and ablations.
    pub const ALL: [HybridPolicy; 6] = [
        HybridPolicy::DualGreedy,
        HybridPolicy::DualDp,
        HybridPolicy::SelfScheduling,
        HybridPolicy::Proportional,
        HybridPolicy::EqualPower,
        HybridPolicy::HeftLite,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            HybridPolicy::DualGreedy => "SWDUAL(greedy)",
            HybridPolicy::DualDp => "SWDUAL(dp)",
            HybridPolicy::SelfScheduling => "self-scheduling",
            HybridPolicy::Proportional => "proportional",
            HybridPolicy::EqualPower => "equal-power",
            HybridPolicy::HeftLite => "heft-lite",
        }
    }

    /// Produce a schedule for `tasks` on `platform`.
    pub fn schedule(self, tasks: &TaskSet, platform: &PlatformSpec) -> Schedule {
        match self {
            HybridPolicy::DualGreedy => {
                dual_approx_schedule(tasks, platform, BinarySearchConfig::default()).schedule
            }
            HybridPolicy::DualDp => {
                dual_approx_schedule(
                    tasks,
                    platform,
                    BinarySearchConfig {
                        method: KnapsackMethod::Dp(DpConfig::default()),
                        ..BinarySearchConfig::default()
                    },
                )
                .schedule
            }
            HybridPolicy::SelfScheduling => policies::self_scheduling(tasks, platform),
            HybridPolicy::Proportional => policies::proportional_split(tasks, platform),
            HybridPolicy::EqualPower => policies::equal_power_split(tasks, platform),
            HybridPolicy::HeftLite => policies::heft_lite(tasks, platform),
        }
    }
}

/// Result of one simulated run — one cell of a paper table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Configuration label ("SWIPE", "SWDUAL(greedy)" ...).
    pub label: String,
    /// Worker count (total PEs used).
    pub workers: usize,
    /// Simulated wall-clock seconds (serial startup + schedule
    /// makespan).
    pub seconds: f64,
    /// Useful throughput in GCUPS (workload cells / seconds).
    pub gcups: f64,
    /// Total idle time across PEs during the schedule.
    pub idle_seconds: f64,
    /// Mean PE utilisation during the schedule phase.
    pub utilisation: f64,
    /// Tasks executed on GPUs.
    pub gpu_tasks: usize,
}

/// Run a single-engine (CPU-only or GPU-only) tool with `workers`
/// workers — the Table II baselines. Tasks are self-scheduled, which is
/// what SWIPE/STRIPED/SWPS3/CUDASW++ do internally when given a query
/// list.
pub fn run_single_kind(
    workload: &Workload,
    engine: &EngineModel,
    workers: usize,
    kind: PeKind,
) -> RunResult {
    assert!(workers > 0, "need at least one worker");
    let platform = match kind {
        PeKind::Cpu => PlatformSpec::new(workers, 0),
        PeKind::Gpu => PlatformSpec::new(0, workers),
    };
    let tasks = workload.build_tasks_single(engine);
    let schedule = policies::self_scheduling(&tasks, &platform);
    schedule
        .validate(&tasks, &platform)
        .expect("baseline schedule must be valid");
    let serial = engine.serial_startup(workload.database.residues);
    let seconds = serial + schedule.makespan();
    let cells = workload.total_cells();
    RunResult {
        label: engine.name.clone(),
        workers,
        seconds,
        gcups: cells as f64 / seconds / 1e9,
        idle_seconds: schedule.total_idle(&platform),
        utilisation: schedule.utilisation(&platform),
        gpu_tasks: if kind == PeKind::Gpu { tasks.len() } else { 0 },
    }
}

/// Run the hybrid engine (SWDUAL or a hybrid baseline policy) on a
/// platform of `platform.cpus` CPU workers and `platform.gpus` GPU
/// workers.
pub fn run_hybrid(
    workload: &Workload,
    platform: &PlatformSpec,
    policy: HybridPolicy,
    cpu_model: &EngineModel,
    gpu_model: &EngineModel,
) -> RunResult {
    let tasks = workload.build_tasks(cpu_model, gpu_model);
    let schedule = policy.schedule(&tasks, platform);
    schedule
        .validate(&tasks, platform)
        .expect("hybrid schedule must be valid");
    // SWDUAL's serial part is folded into per-task overheads (see
    // calib); any engine-level serial startup still applies.
    let serial = cpu_model
        .serial_startup(workload.database.residues)
        .max(gpu_model.serial_startup(workload.database.residues));
    let seconds = serial + schedule.makespan();
    let cells = workload.total_cells();
    let gpu_tasks = schedule
        .placements
        .iter()
        .filter(|p| p.pe.kind == PeKind::Gpu)
        .count();
    RunResult {
        label: policy.name().to_string(),
        workers: platform.total(),
        seconds,
        gcups: cells as f64 / seconds / 1e9,
        idle_seconds: schedule.total_idle(platform),
        utilisation: schedule.utilisation(platform),
        gpu_tasks,
    }
}

/// Convenience: the SWDUAL configuration of the paper for `workers`
/// total workers (GPU-first mix capped at `max_gpus`).
pub fn run_swdual(workload: &Workload, workers: usize, max_gpus: usize) -> RunResult {
    let platform = PlatformSpec::swdual_mix(workers, max_gpus);
    run_hybrid(
        workload,
        &platform,
        HybridPolicy::DualGreedy,
        &EngineModel::swdual_cpu_worker(),
        &EngineModel::swdual_gpu_worker(),
    )
}

/// Result of a mixed-zoo run: the 2λ certificate from the conservative
/// plan plus the replayed makespan on each GPU's true class curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZooOutcome {
    /// CPU worker count.
    pub cpus: usize,
    /// Device class name of each GPU worker, in PE index order.
    pub gpu_classes: Vec<String>,
    /// Smallest feasible λ of the binary search on the conservative
    /// platform.
    pub lambda: f64,
    /// The dual-approximation guarantee: 2λ.
    pub two_lambda_bound: f64,
    /// Makespan of the conservative plan (every GPU priced as the
    /// slowest class in the mix).
    pub planned_makespan: f64,
    /// Makespan after replaying each GPU's placements on its own class
    /// curve — never worse than `planned_makespan`.
    pub realized_makespan: f64,
    /// `realized_makespan ≤ two_lambda_bound`.
    pub bound_holds: bool,
    /// Tasks placed on GPUs.
    pub gpu_tasks: usize,
    /// Throughput over the realized makespan in GCUPS.
    pub gcups: f64,
}

/// Run the SWDUAL dual approximation on a mixed device zoo: `cpus` CPU
/// workers plus one GPU worker per entry of `gpu_classes`.
///
/// The two-species scheduler sees one conservative GPU time per task —
/// the *slowest* class in the mix — so the 2λ certificate it emits is a
/// genuine upper bound: replaying each GPU's placements on its own
/// (faster or equal) curve can only finish earlier. The gap between
/// `planned_makespan` and `realized_makespan` is the price of planning
/// a heterogeneous zoo with a two-species model.
pub fn run_zoo(workload: &Workload, cpus: usize, gpu_classes: &[DeviceClass]) -> ZooOutcome {
    assert!(
        cpus + gpu_classes.len() > 0,
        "zoo needs at least one worker"
    );
    let cpu_model = EngineModel::swdual_cpu_worker();
    let class_models: Vec<EngineModel> = gpu_classes
        .iter()
        .map(|&c| EngineModel::for_device_class(c))
        .collect();
    let db = workload.database.residues;
    // Conservative per-task GPU time: slowest class in the mix. With no
    // GPUs at all, reuse the CPU time so the task set stays two-species
    // shaped (the scheduler will not place on absent GPUs anyway).
    let tasks = TaskSet::new(
        workload
            .query_lengths
            .iter()
            .enumerate()
            .map(|(id, &len)| {
                let p_cpu = cpu_model.task_seconds(len, db);
                let p_gpu = class_models
                    .iter()
                    .map(|m| m.task_seconds(len, db))
                    .fold(f64::NEG_INFINITY, f64::max);
                Task::new(id, p_cpu, if p_gpu.is_finite() { p_gpu } else { p_cpu })
            })
            .collect(),
    );
    let platform = PlatformSpec::new(cpus, gpu_classes.len());
    let outcome = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
    outcome
        .schedule
        .validate(&tasks, &platform)
        .expect("zoo schedule must be valid");
    let planned_makespan = outcome.schedule.makespan();
    // Replay: sequential per-PE execution, each GPU on its true curve.
    let mut cpu_time = vec![0.0f64; cpus];
    let mut gpu_time = vec![0.0f64; gpu_classes.len()];
    let mut gpu_tasks = 0usize;
    for p in &outcome.schedule.placements {
        let len = workload.query_lengths[p.task];
        match p.pe.kind {
            PeKind::Cpu => cpu_time[p.pe.index] += cpu_model.task_seconds(len, db),
            PeKind::Gpu => {
                gpu_tasks += 1;
                gpu_time[p.pe.index] += class_models[p.pe.index].task_seconds(len, db);
            }
        }
    }
    let realized_makespan = cpu_time
        .iter()
        .chain(gpu_time.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    let two_lambda_bound = 2.0 * outcome.upper_bound;
    let cells = workload.total_cells();
    ZooOutcome {
        cpus,
        gpu_classes: gpu_classes.iter().map(|c| c.name().to_string()).collect(),
        lambda: outcome.upper_bound,
        two_lambda_bound,
        planned_makespan,
        realized_makespan,
        bound_holds: realized_makespan <= two_lambda_bound * (1.0 + 1e-9) + 1e-12,
        gpu_tasks,
        gcups: if realized_makespan > 0.0 {
            cells as f64 / realized_makespan / 1e9
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::DatabaseSpec;

    fn uniprot() -> Workload {
        Workload::paper_queries(DatabaseSpec::uniprot())
    }

    #[test]
    fn table2_single_worker_cells_reproduced() {
        let w = uniprot();
        for (engine, kind, paper, tol) in [
            (EngineModel::swps3(), PeKind::Cpu, 69_208.2, 0.03),
            (EngineModel::striped(), PeKind::Cpu, 7_190.0, 0.03),
            (EngineModel::swipe(), PeKind::Cpu, 2_367.24, 0.03),
            (EngineModel::cudasw(), PeKind::Gpu, 785.26, 0.03),
        ] {
            let r = run_single_kind(&w, &engine, 1, kind);
            assert!(
                (r.seconds - paper).abs() / paper < tol,
                "{}: {} vs paper {}",
                engine.name,
                r.seconds,
                paper
            );
        }
    }

    #[test]
    fn table2_four_worker_ordering_holds() {
        // The paper's ranking at 4 workers:
        // SWPS3 > STRIPED > SWIPE > CUDASW++ > SWDUAL.
        let w = uniprot();
        let swps3 = run_single_kind(&w, &EngineModel::swps3(), 4, PeKind::Cpu).seconds;
        let striped = run_single_kind(&w, &EngineModel::striped(), 4, PeKind::Cpu).seconds;
        let swipe = run_single_kind(&w, &EngineModel::swipe(), 4, PeKind::Cpu).seconds;
        let cudasw = run_single_kind(&w, &EngineModel::cudasw(), 4, PeKind::Gpu).seconds;
        let swdual = run_swdual(&w, 4, 4).seconds;
        assert!(swps3 > striped, "{swps3} vs {striped}");
        assert!(striped > swipe, "{striped} vs {swipe}");
        assert!(swipe > cudasw, "{swipe} vs {cudasw}");
        assert!(cudasw > swdual, "{cudasw} vs {swdual}");
    }

    #[test]
    fn swdual_two_workers_near_paper_time() {
        // Table II/IV: 543.28 s at 2 workers (1 GPU + 1 CPU).
        let r = run_swdual(&uniprot(), 2, 4);
        assert!(
            (r.seconds - 543.28).abs() / 543.28 < 0.10,
            "simulated {} vs paper 543.28",
            r.seconds
        );
    }

    #[test]
    fn swdual_eight_workers_near_paper_time() {
        // Table II/IV: 142.98 s at 8 workers (4 GPUs + 4 CPUs).
        let r = run_swdual(&uniprot(), 8, 4);
        assert!(
            (r.seconds - 142.98).abs() / 142.98 < 0.20,
            "simulated {} vs paper 142.98",
            r.seconds
        );
    }

    #[test]
    fn swdual_scales_monotonically() {
        let w = uniprot();
        let mut prev = f64::INFINITY;
        for workers in 2..=8 {
            let r = run_swdual(&w, workers, 4);
            assert!(
                r.seconds < prev * 1.02,
                "{workers} workers: {} vs previous {prev}",
                r.seconds
            );
            prev = r.seconds;
        }
    }

    #[test]
    fn swdual_beats_all_baseline_policies() {
        let w = uniprot();
        let platform = PlatformSpec::new(4, 4);
        let cpu = EngineModel::swdual_cpu_worker();
        let gpu = EngineModel::swdual_gpu_worker();
        let dual = run_hybrid(&w, &platform, HybridPolicy::DualGreedy, &cpu, &gpu);
        for policy in [
            HybridPolicy::SelfScheduling,
            HybridPolicy::Proportional,
            HybridPolicy::EqualPower,
        ] {
            let other = run_hybrid(&w, &platform, policy, &cpu, &gpu);
            assert!(
                dual.seconds <= other.seconds * 1.001,
                "{}: {} vs SWDUAL {}",
                policy.name(),
                other.seconds,
                dual.seconds
            );
        }
    }

    #[test]
    fn swdual_has_low_idle_time() {
        // §V-A: "the execution on each of the processing elements
        // finished with almost no idle time".
        let r = run_swdual(&uniprot(), 8, 4);
        assert!(
            r.utilisation > 0.85,
            "utilisation {} too low for the no-idle claim",
            r.utilisation
        );
    }

    #[test]
    fn gcups_scales_with_workers_table4_shape() {
        // Table IV: GCUPS roughly doubles 2→4→8 workers on UniProt.
        let w = uniprot();
        let g2 = run_swdual(&w, 2, 4).gcups;
        let g4 = run_swdual(&w, 4, 4).gcups;
        let g8 = run_swdual(&w, 8, 4).gcups;
        assert!(g4 / g2 > 1.5, "2->4 scaling {}", g4 / g2);
        // 4->8 adds only CPUs (the GPU side is already maxed at 4), so
        // scaling is weaker; the paper's own 4-worker point (71.53) is
        // lower than ours because its measured run was less balanced.
        assert!(g8 / g4 > 1.3, "4->8 scaling {}", g8 / g4);
        // Absolute values in the paper's ballpark at the calibrated
        // endpoints (35.81 at 2 workers, 136.06 at 8).
        assert!((g2 - 35.81).abs() / 35.81 < 0.15, "g2 = {g2}");
        assert!((g8 - 136.06).abs() / 136.06 < 0.25, "g8 = {g8}");
    }

    #[test]
    fn small_database_gcups_capped_by_overhead() {
        // Table IV: Ensembl Dog reaches only ~19 GCUPS at 2 workers.
        let w = Workload::paper_queries(DatabaseSpec::ensembl_dog());
        let r = run_swdual(&w, 2, 4);
        assert!(
            (15.0..25.0).contains(&r.gcups),
            "Dog GCUPS {} out of the paper's range",
            r.gcups
        );
        // And the run is tens of seconds, not hundreds (paper: 78.36 s).
        assert!((r.seconds - 78.36).abs() / 78.36 < 0.3, "{}", r.seconds);
    }

    #[test]
    fn zoo_single_class_runs_hold_the_bound() {
        let w = uniprot();
        for class in DeviceClass::ALL {
            let z = run_zoo(&w, 4, &[class, class]);
            assert_eq!(z.gpu_classes, vec![class.name(), class.name()]);
            assert!(z.bound_holds, "{class}: {z:?}");
            // Homogeneous zoo: replay is exactly the plan.
            assert!((z.realized_makespan - z.planned_makespan).abs() < 1e-9);
            assert!(z.gpu_tasks > 0, "{class} should attract work");
        }
    }

    #[test]
    fn zoo_mixed_replay_never_exceeds_the_conservative_plan() {
        let w = uniprot();
        let z = run_zoo(
            &w,
            4,
            &[
                DeviceClass::C2050,
                DeviceClass::Phi,
                DeviceClass::Knl,
                DeviceClass::Bioseal,
            ],
        );
        assert!(z.bound_holds, "{z:?}");
        assert!(z.realized_makespan <= z.planned_makespan + 1e-9);
        // The faster classes actually buy time back in the replay.
        assert!(z.realized_makespan < z.planned_makespan);
        assert_eq!(z.gpu_classes.len(), 4);
    }

    #[test]
    fn zoo_faster_classes_finish_sooner() {
        let w = uniprot();
        let slow = run_zoo(&w, 2, &[DeviceClass::C2050]);
        let fast = run_zoo(&w, 2, &[DeviceClass::Bioseal]);
        assert!(
            fast.realized_makespan < slow.realized_makespan,
            "bioseal {} vs c2050 {}",
            fast.realized_makespan,
            slow.realized_makespan
        );
    }

    #[test]
    fn heterogeneous_and_homogeneous_sets_both_scale() {
        // Table V shape: both sets roughly halve 2→4→8 workers, and the
        // heterogeneous set costs ~3.6x the homogeneous one.
        let hom = Workload::homogeneous_queries(DatabaseSpec::uniprot());
        let het = Workload::heterogeneous_queries(DatabaseSpec::uniprot());
        let h2 = run_swdual(&hom, 2, 4).seconds;
        let h8 = run_swdual(&hom, 8, 4).seconds;
        let t2 = run_swdual(&het, 2, 4).seconds;
        let t8 = run_swdual(&het, 8, 4).seconds;
        assert!(h2 / h8 > 2.5, "homogeneous scaling {}", h2 / h8);
        assert!(t2 / t8 > 2.5, "heterogeneous scaling {}", t2 / t8);
        let ratio = t2 / h2;
        assert!(
            (2.5..5.0).contains(&ratio),
            "hetero/homo ratio {ratio}, paper ≈ 3.56"
        );
    }
}
