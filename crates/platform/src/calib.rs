//! Engine throughput models calibrated against the paper's own numbers.
//!
//! The UniProt workload of §V totals `T ≈ 1.9455e13` DP cells (Table IV:
//! 543.28 s × 35.81 GCUPS at 2 workers; identical products at 4 and 8
//! workers confirm the figure). Table II's single-worker times then fix
//! each engine's sustained rate, and the multi-worker rows expose each
//! engine's serial (Amdahl) component:
//!
//! | engine   | T(1 w) s | fitted serial s | kernel GCUPS/worker |
//! |----------|---------:|----------------:|--------------------:|
//! | SWPS3    | 69 208.2 |           2 136 | 0.290               |
//! | STRIPED  |  7 190   |  0 (see note)   | 2.72                |
//! | SWIPE    |  2 367.2 |              24 | 8.30                |
//! | CUDASW++ |    785.3 |             128 | 29.6                |
//!
//! Fit check (Amdahl `T(w) = serial + parallel/w`): CUDASW++ predicts
//! 456/347/292 s at 2/3/4 workers vs the paper's 445.6/350.1/292.2;
//! SWIPE predicts 1195/805/610 vs 1199.5/816.6/610.2; SWPS3 predicts
//! 35 672/24 493/18 904 vs 36 174/25 207/18 904. STRIPED's published
//! scaling is *superlinear* (7 190 → 1 027 s on 4 workers, 7.0×) —
//! unreproducible with any work-conserving model; we keep serial = 0
//! (ideal linear scaling) and note the discrepancy in EXPERIMENTS.md.
//!
//! SWDUAL's own runs resolve differently: its per-worker rates match
//! the *kernel* rates above (its workers embed SWIPE and CUDASW++ 2.0),
//! its binary database format removes the large serial component, and
//! the residual is a **per-task overhead** of ≈ 1.8 s (dispatch, worker
//! query load, result merge). That constant reproduces the
//! database-size dependence of Table IV: small databases (Ensembl Dog,
//! ~1.5e12 cells) reach only ~19 GCUPS at 2 workers while UniProt
//! reaches ~36, because 40 × 1.8 s of overhead dwarfs ~1 s of per-task
//! compute on a small database.
//!
//! Rates depend on query length through the saturation curve
//! `rate(len) = peak · len / (len + half_length)`: GPU kernels need long
//! queries to fill their pipelines (CUDASW++ 2.0 reports exactly this),
//! CPU SIMD kernels saturate almost immediately. This length dependence
//! is what differentiates the per-task acceleration ratios the SWDUAL
//! knapsack sorts on.

use serde::{Deserialize, Serialize};

/// Total residues of the synthetic UniProt database (537 505 sequences,
/// mean length ≈ 362; product chosen so the §V workload reproduces the
/// paper's ≈ 1.9455e13 cells with the 40-query mean of ≈ 2500 aa).
pub const UNIPROT_RESIDUES: u64 = 194_550_000;

/// A calibrated engine model: how fast one worker of this engine chews
/// DP cells, and what fixed costs surround the work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineModel {
    /// Engine name as it appears in the tables.
    pub name: String,
    /// Peak sustained GCUPS of one worker on long queries.
    pub peak_gcups: f64,
    /// Query length at which half of peak is reached.
    pub half_length: f64,
    /// Fixed overhead added to every task on a worker of this engine
    /// (seconds): dispatch, query transfer, result merge.
    pub per_task_overhead: f64,
    /// One-off serial startup for a UniProt-sized database (seconds);
    /// scaled linearly with database size.
    pub serial_startup_uniprot: f64,
}

impl EngineModel {
    /// SWPS3 (CPU, multi-threaded vectorised SW). Fitted to Table II
    /// row 1: 69 208.2 s at 1 worker, 18 904.3 s at 4.
    pub fn swps3() -> EngineModel {
        EngineModel {
            name: "SWPS3".into(),
            peak_gcups: 0.293,
            half_length: 25.0,
            per_task_overhead: 0.0,
            serial_startup_uniprot: 2136.0,
        }
    }

    /// Farrar's STRIPED (CPU). Fitted to Table II row 2 at 1 worker;
    /// serial kept at 0 (see module docs on the superlinear anomaly).
    pub fn striped() -> EngineModel {
        EngineModel {
            name: "STRIPED".into(),
            peak_gcups: 2.73,
            half_length: 25.0,
            per_task_overhead: 0.0,
            serial_startup_uniprot: 40.0,
        }
    }

    /// SWIPE (CPU, inter-sequence SIMD). Fitted to Table II row 3:
    /// 2 367.2 s at 1 worker, 610.2 s at 4.
    pub fn swipe() -> EngineModel {
        EngineModel {
            name: "SWIPE".into(),
            peak_gcups: 8.38,
            half_length: 25.0,
            per_task_overhead: 0.0,
            serial_startup_uniprot: 24.0,
        }
    }

    /// CUDASW++ 2.0 (GPU). Fitted to Table II row 4: 785.3 s at 1
    /// worker with a 128 s serial component (database load + sort +
    /// result handling), kernel rate 29.6 GCUPS at the workload's mean
    /// query length of ≈ 2500 aa.
    pub fn cudasw() -> EngineModel {
        EngineModel {
            name: "CUDASW++".into(),
            peak_gcups: 32.9,
            half_length: 280.0,
            per_task_overhead: 0.0,
            serial_startup_uniprot: 128.0,
        }
    }

    /// SWDUAL's CPU worker: the SWIPE kernel inside the master-slave
    /// runtime; the shared per-task overhead models dispatch and merge.
    pub fn swdual_cpu_worker() -> EngineModel {
        EngineModel {
            name: "SWDUAL-CPU(SWIPE)".into(),
            per_task_overhead: 1.8,
            serial_startup_uniprot: 0.0,
            ..EngineModel::swipe()
        }
    }

    /// SWDUAL's GPU worker: the CUDASW++ kernel inside the master-slave
    /// runtime; the SQB binary format removes CUDASW++'s standalone
    /// serial cost (paper §IV).
    pub fn swdual_gpu_worker() -> EngineModel {
        EngineModel {
            name: "SWDUAL-GPU(CUDASW++)".into(),
            per_task_overhead: 1.8,
            serial_startup_uniprot: 0.0,
            ..EngineModel::cudasw()
        }
    }

    /// End-to-end engine model of a device-zoo accelerator inside the
    /// SWDUAL runtime (curves from
    /// `swdual_gpusim::DeviceClass::estimator_curve`). The C2050 entry
    /// coincides with [`EngineModel::swdual_gpu_worker`] up to its name;
    /// the other classes keep the same saturating shape with their own
    /// peak and half-length, which is exactly the heterogeneity a mixed
    /// zoo exposes to the scheduler.
    pub fn for_device_class(class: swdual_gpusim::DeviceClass) -> EngineModel {
        let (peak_gcups, half_length, per_task_overhead) = class.estimator_curve();
        EngineModel {
            name: format!("SWDUAL-GPU({})", class.name()),
            peak_gcups,
            half_length,
            per_task_overhead,
            serial_startup_uniprot: 0.0,
        }
    }

    /// Sustained GCUPS of one worker for a query of `len` residues.
    pub fn rate_gcups(&self, query_len: usize) -> f64 {
        if query_len == 0 {
            return 0.0;
        }
        let len = query_len as f64;
        self.peak_gcups * len / (len + self.half_length)
    }

    /// Seconds one worker needs for a task of `query_len` residues
    /// against `db_residues` database residues (including the per-task
    /// overhead).
    pub fn task_seconds(&self, query_len: usize, db_residues: u64) -> f64 {
        if query_len == 0 {
            return self.per_task_overhead.max(f64::MIN_POSITIVE);
        }
        let cells = query_len as u64 as f64 * db_residues as f64;
        self.per_task_overhead + cells / (self.rate_gcups(query_len) * 1e9)
    }

    /// Serial startup for a database of `db_residues` residues (linear
    /// scaling from the UniProt fit).
    pub fn serial_startup(&self, db_residues: u64) -> f64 {
        self.serial_startup_uniprot * db_residues as f64 / UNIPROT_RESIDUES as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mean query length of the §V query set (40 queries totalling
    /// 1e5 residues ⇒ 1.9455e13 cells against UniProt).
    const MEAN_QUERY: usize = 2500;

    fn one_worker_time(model: &EngineModel) -> f64 {
        // 40 tasks of mean length on one worker + serial.
        model.serial_startup(UNIPROT_RESIDUES)
            + 40.0 * model.task_seconds(MEAN_QUERY, UNIPROT_RESIDUES)
    }

    #[test]
    fn swps3_matches_table2_single_worker() {
        let t = one_worker_time(&EngineModel::swps3());
        assert!((t - 69_208.2).abs() / 69_208.2 < 0.02, "got {t}");
    }

    #[test]
    fn striped_matches_table2_single_worker() {
        let t = one_worker_time(&EngineModel::striped());
        assert!((t - 7190.0).abs() / 7190.0 < 0.02, "got {t}");
    }

    #[test]
    fn swipe_matches_table2_single_worker() {
        let t = one_worker_time(&EngineModel::swipe());
        assert!((t - 2367.24).abs() / 2367.24 < 0.02, "got {t}");
    }

    #[test]
    fn cudasw_matches_table2_single_worker() {
        let t = one_worker_time(&EngineModel::cudasw());
        assert!((t - 785.26).abs() / 785.26 < 0.03, "got {t}");
    }

    #[test]
    fn amdahl_fit_predicts_four_worker_rows() {
        // serial + parallel/4 must land near the Table II 4-worker cells.
        for (model, t4_paper, tol) in [
            (EngineModel::swps3(), 18_904.31, 0.03),
            (EngineModel::swipe(), 610.23, 0.04),
            (EngineModel::cudasw(), 292.157, 0.08),
        ] {
            let serial = model.serial_startup(UNIPROT_RESIDUES);
            let parallel = one_worker_time(&model) - serial;
            let t4 = serial + parallel / 4.0;
            assert!(
                (t4 - t4_paper).abs() / t4_paper < tol,
                "{}: predicted {t4}, paper {t4_paper}",
                model.name
            );
        }
    }

    #[test]
    fn device_class_models_match_their_curves() {
        use swdual_gpusim::DeviceClass;
        let c2050 = EngineModel::for_device_class(DeviceClass::C2050);
        let paper = EngineModel::swdual_gpu_worker();
        assert_eq!(c2050.peak_gcups, paper.peak_gcups);
        assert_eq!(c2050.half_length, paper.half_length);
        assert_eq!(c2050.per_task_overhead, paper.per_task_overhead);
        // Distinct classes give distinct acceleration profiles for the
        // same query — that is the point of the zoo.
        let knl = EngineModel::for_device_class(DeviceClass::Knl);
        let bioseal = EngineModel::for_device_class(DeviceClass::Bioseal);
        let db = UNIPROT_RESIDUES;
        assert!(bioseal.task_seconds(2500, db) < knl.task_seconds(2500, db));
        assert!(knl.task_seconds(2500, db) < c2050.task_seconds(2500, db));
    }

    #[test]
    fn gpu_rate_depends_on_query_length_more_than_cpu() {
        let gpu = EngineModel::cudasw();
        let cpu = EngineModel::swipe();
        let gpu_drop = gpu.rate_gcups(100) / gpu.rate_gcups(5000);
        let cpu_drop = cpu.rate_gcups(100) / cpu.rate_gcups(5000);
        assert!(
            gpu_drop < 0.35,
            "GPU keeps {gpu_drop} of its rate at len 100"
        );
        assert!(cpu_drop > 0.75, "CPU keeps only {cpu_drop} at len 100");
    }

    #[test]
    fn acceleration_ratio_varies_with_length() {
        // The heterogeneity the knapsack exploits: long queries are far
        // better accelerated than short ones.
        let gpu = EngineModel::swdual_gpu_worker();
        let cpu = EngineModel::swdual_cpu_worker();
        let db = UNIPROT_RESIDUES;
        let accel = |len: usize| cpu.task_seconds(len, db) / gpu.task_seconds(len, db);
        assert!(accel(5000) > accel(100) * 1.5);
    }

    #[test]
    fn per_task_overhead_dominates_small_databases() {
        // Ensembl-Dog-sized database: overhead ≈ compute, which is what
        // caps Table IV's small-database GCUPS.
        let gpu = EngineModel::swdual_gpu_worker();
        let dog_residues = 14_800_000u64;
        let t = gpu.task_seconds(2500, dog_residues);
        let compute = t - gpu.per_task_overhead;
        assert!(
            gpu.per_task_overhead > compute * 0.5,
            "overhead {} compute {}",
            gpu.per_task_overhead,
            compute
        );
    }

    #[test]
    fn serial_scales_with_database() {
        let m = EngineModel::cudasw();
        let half = m.serial_startup(UNIPROT_RESIDUES / 2);
        assert!((half - 64.0).abs() < 1.0);
    }

    #[test]
    fn zero_length_query_is_cheap_but_positive() {
        let m = EngineModel::swipe();
        assert!(m.task_seconds(0, 1000) > 0.0);
        assert_eq!(m.rate_gcups(0), 0.0);
    }
}
