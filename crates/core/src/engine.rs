//! The search builder: configure and launch a hybrid database search.

use crate::report::SearchReport;
use swdual_bio::error::BioError;
use swdual_bio::fasta::ResiduePolicy;
use swdual_bio::seq::SequenceSet;
use swdual_bio::{Alphabet, ScoringScheme};
use swdual_gpusim::DeviceClass;
use swdual_obs::Obs;
use swdual_runtime::{
    try_run_search, AllocationPolicy, FaultPlan, ReoptConfig, RuntimeConfig, SearchError,
    WorkerSpec,
};
use swdual_sched::dual::KnapsackMethod;

/// Builder for one database search — the programmatic equivalent of the
/// paper's command line ("Receive parameters" in Figure 6).
pub struct SearchBuilder {
    database: Option<SequenceSet>,
    queries: Option<SequenceSet>,
    scheme: ScoringScheme,
    workers: Vec<WorkerSpec>,
    policy: AllocationPolicy,
    top_k: usize,
    obs: Obs,
    faults: FaultPlan,
    job_timeout_slack: Option<f64>,
    min_job_timeout: Option<std::time::Duration>,
    reopt: Option<ReoptConfig>,
    watch: Option<swdual_obs::watch::WatchConfig>,
    live: Option<String>,
}

impl Default for SearchBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchBuilder {
    /// A builder with the paper's defaults: BLOSUM62 with gap 10/2, one
    /// CPU + one GPU worker (the smallest configuration SWDUAL
    /// supports), dual-approximation allocation, top-10 hits.
    pub fn new() -> SearchBuilder {
        SearchBuilder {
            database: None,
            queries: None,
            scheme: ScoringScheme::protein_default(),
            workers: vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()],
            policy: AllocationPolicy::DualApprox(KnapsackMethod::Greedy),
            top_k: 10,
            obs: Obs::disabled(),
            faults: FaultPlan::none(),
            job_timeout_slack: None,
            min_job_timeout: None,
            reopt: None,
            watch: None,
            live: None,
        }
    }

    /// Set the database to search.
    pub fn database(mut self, database: SequenceSet) -> Self {
        self.database = Some(database);
        self
    }

    /// Load the database from a FASTA file (lossy residue handling,
    /// like production tools).
    pub fn database_fasta(
        mut self,
        path: impl AsRef<std::path::Path>,
        alphabet: Alphabet,
    ) -> Result<Self, BioError> {
        self.database = Some(swdual_bio::fasta::read_file(
            path,
            alphabet,
            ResiduePolicy::Lossy,
        )?);
        Ok(self)
    }

    /// Load the database from an SQB binary file (the paper's format).
    pub fn database_sqb(mut self, path: impl AsRef<std::path::Path>) -> Result<Self, BioError> {
        let mut file = swdual_bio::sqb::SqbFile::open(path)?;
        self.database = Some(file.read_all()?);
        Ok(self)
    }

    /// Set the query set.
    pub fn queries(mut self, queries: SequenceSet) -> Self {
        self.queries = Some(queries);
        self
    }

    /// Load queries from a FASTA file.
    pub fn queries_fasta(
        mut self,
        path: impl AsRef<std::path::Path>,
        alphabet: Alphabet,
    ) -> Result<Self, BioError> {
        self.queries = Some(swdual_bio::fasta::read_file(
            path,
            alphabet,
            ResiduePolicy::Lossy,
        )?);
        Ok(self)
    }

    /// Override the scoring scheme.
    pub fn scheme(mut self, scheme: ScoringScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the worker pool.
    pub fn workers(mut self, workers: Vec<WorkerSpec>) -> Self {
        self.workers = workers;
        self
    }

    /// Convenience: `cpus` CPU workers plus `gpus` GPU workers with the
    /// default engines.
    pub fn hybrid_workers(mut self, cpus: usize, gpus: usize) -> Self {
        let mut workers = Vec::with_capacity(cpus + gpus);
        for _ in 0..gpus {
            workers.push(WorkerSpec::gpu_default());
        }
        for _ in 0..cpus {
            workers.push(WorkerSpec::cpu_default());
        }
        self.workers = workers;
        self
    }

    /// Device-zoo pool: `cpus` CPU workers plus one GPU worker per
    /// entry of `classes` (see [`DeviceClass`]). GPU workers come
    /// first, matching [`SearchBuilder::hybrid_workers`].
    pub fn zoo_workers(mut self, cpus: usize, classes: &[DeviceClass]) -> Self {
        let mut workers = Vec::with_capacity(cpus + classes.len());
        for &class in classes {
            workers.push(WorkerSpec::device_class(class));
        }
        for _ in 0..cpus {
            workers.push(WorkerSpec::cpu_default());
        }
        self.workers = workers;
        self
    }

    /// Skew the *declared* rate model of specific workers by
    /// `(worker index, factor)` — a deliberate miscalibration for
    /// re-optimization experiments. The workers' true speed is
    /// untouched; only the estimates the planner consumes are wrong.
    /// Out-of-range indices are ignored. Configure the worker pool
    /// first.
    pub fn prior_scales(mut self, scales: &[(usize, f64)]) -> Self {
        for &(w, s) in scales {
            if let Some(spec) = self.workers.get_mut(w) {
                *spec = spec.clone().with_prior_scale(s);
            }
        }
        self
    }

    /// Configure online re-optimization (off by default). See
    /// [`ReoptConfig`]: when observed per-worker slowdown skew exceeds
    /// the threshold, the master re-plans undispatched tasks on the
    /// re-calibrated platform.
    pub fn reopt(mut self, reopt: ReoptConfig) -> Self {
        self.reopt = Some(reopt);
        self
    }

    /// Override the allocation policy.
    pub fn policy(mut self, policy: AllocationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Hits kept per query.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// Enable structured tracing: master phases, scheduler decisions,
    /// per-job worker spans and simulated-device activity are recorded
    /// into the report, from which [`SearchReport::timeline`],
    /// [`SearchReport::metrics`] and [`SearchReport::journal`] export.
    /// Off by default; the disabled recorder costs one branch per
    /// would-be event in the hot path.
    pub fn observe(mut self) -> Self {
        self.obs = Obs::enabled();
        self
    }

    /// Use a caller-supplied recorder (e.g. one shared with other
    /// subsystems). Pass [`Obs::enabled`] to record, [`Obs::disabled`]
    /// to switch tracing back off.
    pub fn observability(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Watch the run with the incremental anomaly watchdog
    /// ([`swdual_obs::watch`]): a background thread folds the live
    /// event bus and journals typed `alert_*` events (straggler,
    /// bound-at-risk, worker-dead, queue-stall, reopt-fired) the
    /// moment they trip. Implies an enabled recorder; read the results
    /// live via [`Obs::subscribe`] or post-hoc via
    /// [`SearchReport::alerts`](crate::report::SearchReport::alerts).
    pub fn watchdog(mut self, cfg: swdual_obs::watch::WatchConfig) -> Self {
        self.watch = Some(cfg);
        self
    }

    /// Stream the growing journal over a Unix socket at `path` while
    /// the search runs, for `swdual top <path>` or any line reader.
    /// Implies an enabled recorder. Stream setup failure degrades the
    /// run to "not watched" (with a stderr note) rather than aborting.
    pub fn live(mut self, path: impl Into<String>) -> Self {
        self.live = Some(path.into());
        self
    }

    /// Switch CUPTI-style phase profiling on or off. Profiling implies
    /// tracing (phase spans ride the same event buffer), so enabling it
    /// on a builder without a recorder turns one on; disabling it keeps
    /// tracing as configured. When off (the default) the per-job hot
    /// path stays allocation-free — phase hooks cost one relaxed atomic
    /// load. The collected profile is read back through
    /// [`SearchReport::profile`].
    pub fn profile(mut self, on: bool) -> Self {
        if on && !self.obs.is_enabled() {
            self.obs = Obs::enabled();
        }
        self.obs.set_profiling(on);
        self
    }

    /// Inject an explicit fault plan (worker crashes, device failures,
    /// stragglers). Faults change who computes what and when — never
    /// the hits, as long as one worker survives.
    pub fn fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Inject the deterministic pseudo-random fault plan derived from
    /// `seed` (see [`FaultPlan::seeded`]): same seed and worker count,
    /// same faults, every run. The plan depends on the worker count, so
    /// configure the worker pool *before* calling this.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        let n = self.workers.len();
        self.faults = FaultPlan::seeded(seed, n);
        self
    }

    /// Stretch factor on the modelled-time-derived per-worker job
    /// deadlines the master uses to detect silent deaths.
    pub fn job_timeout_slack(mut self, slack: f64) -> Self {
        self.job_timeout_slack = Some(slack.max(1.0));
        self
    }

    /// Floor of the per-worker job deadline — silent deaths cannot be
    /// detected faster than this. Mostly useful to speed up tests and
    /// fault demos.
    pub fn min_job_timeout(mut self, floor: std::time::Duration) -> Self {
        self.min_job_timeout = Some(floor);
        self
    }

    fn into_config_and_sets(self) -> (SequenceSet, SequenceSet, Vec<WorkerSpec>, RuntimeConfig) {
        let database = self.database.expect("database not set");
        let queries = self.queries.expect("queries not set");
        let mut config = RuntimeConfig {
            scheme: self.scheme,
            policy: self.policy,
            top_k: self.top_k,
            obs: self.obs,
            faults: self.faults,
            ..RuntimeConfig::default()
        };
        if let Some(slack) = self.job_timeout_slack {
            config.job_timeout_slack = slack;
        }
        if let Some(floor) = self.min_job_timeout {
            config.min_job_timeout = floor;
        }
        if let Some(reopt) = self.reopt {
            config.reopt = reopt;
        }
        (database, queries, self.workers, config)
    }

    /// Launch the search, returning a typed error instead of panicking
    /// when the platform is lost (all workers dead, nobody registered,
    /// retry budget exhausted).
    ///
    /// # Panics
    /// Still panics when the database or query set was never set —
    /// those are caller bugs, not runtime conditions.
    pub fn try_run(mut self) -> Result<SearchReport, SearchError> {
        // Live watching needs a recorder; switch one on if the caller
        // asked to watch but left observability off.
        if (self.watch.is_some() || self.live.is_some()) && !self.obs.is_enabled() {
            self.obs = Obs::enabled();
        }
        let watch = self.watch.take();
        let live = self.live.take();
        let (database, queries, workers, config) = self.into_config_and_sets();
        let obs = config.obs.clone();
        let db_meta: Vec<String> = database.iter().map(|s| s.id.clone()).collect();
        let query_meta: Vec<String> = queries.iter().map(|s| s.id.clone()).collect();
        let live_stream = live.and_then(|path| match crate::live::LiveStream::start(&obs, &path) {
            Ok(stream) => Some(stream),
            Err(e) => {
                eprintln!("live: disabled ({e})");
                None
            }
        });
        let watchdog = watch.map(|cfg| crate::live::WatchdogDriver::start(&obs, cfg));
        let outcome = try_run_search(database, queries, &workers, config);
        // Drivers finish (final drain / client EOF) whether the run
        // succeeded or not — a failed run is exactly when the alerts
        // and the streamed journal matter most.
        if let Some(driver) = watchdog {
            driver.finish();
        }
        if let Some(stream) = live_stream {
            stream.finish();
        }
        let outcome = outcome?;
        Ok(SearchReport::new(outcome, db_meta, query_meta).with_obs(obs))
    }

    /// Launch the search.
    ///
    /// # Panics
    /// Panics when the database or query set is missing, or when the
    /// worker pool is empty or entirely lost mid-run.
    pub fn run(self) -> SearchReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("search failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_datagen::{queries_from_database, synthetic_database, LengthModel, MutationProfile};

    fn demo_sets() -> (SequenceSet, SequenceSet) {
        let db = synthetic_database("db", 20, LengthModel::Fixed(80), 21);
        let q = queries_from_database(&db, 3, 1, usize::MAX, &MutationProfile::homolog(), 22);
        (db, q)
    }

    #[test]
    fn builder_end_to_end() {
        let (db, q) = demo_sets();
        let report = SearchBuilder::new()
            .database(db)
            .queries(q)
            .hybrid_workers(1, 1)
            .top_k(3)
            .run();
        assert_eq!(report.hits().len(), 3);
        for h in report.hits() {
            assert!(h.hits.len() <= 3);
        }
        assert!(report.total_cells() > 0);
    }

    #[test]
    fn self_scheduling_policy_through_builder() {
        let (db, q) = demo_sets();
        let report = SearchBuilder::new()
            .database(db)
            .queries(q)
            .policy(AllocationPolicy::SelfScheduling)
            .run();
        assert!(report.schedule().is_none());
    }

    #[test]
    #[should_panic]
    fn missing_database_panics() {
        let (_, q) = demo_sets();
        let _ = SearchBuilder::new().queries(q).run();
    }

    #[test]
    fn fault_plan_through_builder_preserves_hits() {
        let (db, q) = demo_sets();
        let healthy = SearchBuilder::new()
            .database(db.clone())
            .queries(q.clone())
            .hybrid_workers(1, 1)
            .run();
        let faulted = SearchBuilder::new()
            .database(db)
            .queries(q)
            .hybrid_workers(1, 1)
            .fault_plan("0:device@1".parse().unwrap())
            .min_job_timeout(std::time::Duration::from_millis(60))
            .run();
        assert_eq!(healthy.hits(), faulted.hits());
    }

    #[test]
    fn fault_seed_is_deterministic_through_builder() {
        let (db, q) = demo_sets();
        let run = |seed| {
            SearchBuilder::new()
                .database(db.clone())
                .queries(q.clone())
                .hybrid_workers(2, 1)
                .fault_seed(seed)
                .min_job_timeout(std::time::Duration::from_millis(60))
                .run()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.hits(), b.hits());
        // Same-seed runs inject the same faults, so per-worker task
        // counts also match.
        let tasks =
            |r: &SearchReport| -> Vec<usize> { r.worker_stats().iter().map(|s| s.tasks).collect() };
        assert_eq!(tasks(&a), tasks(&b));
    }

    #[test]
    fn zoo_workers_and_reopt_through_builder() {
        let (db, q) = demo_sets();
        let baseline = SearchBuilder::new()
            .database(db.clone())
            .queries(q.clone())
            .hybrid_workers(1, 1)
            .run();
        for class in DeviceClass::ALL {
            let report = SearchBuilder::new()
                .database(db.clone())
                .queries(q.clone())
                .zoo_workers(1, &[class])
                .run();
            assert_eq!(
                report.hits(),
                baseline.hits(),
                "{class}: scores are device-independent"
            );
        }
        // Mixed zoo + re-opt + deliberate miscalibration still returns
        // identical hits.
        let mixed = SearchBuilder::new()
            .database(db)
            .queries(q)
            .zoo_workers(2, &[DeviceClass::Knl, DeviceClass::Bioseal])
            .prior_scales(&[(2, 2.0)])
            .reopt(ReoptConfig::enabled())
            .run();
        assert_eq!(mixed.hits(), baseline.hits());
    }

    #[test]
    fn try_run_surfaces_platform_loss() {
        let (db, q) = demo_sets();
        let err = SearchBuilder::new()
            .database(db)
            .queries(q)
            .workers(vec![WorkerSpec::cpu_default()])
            .fault_plan("0:crash@0".parse().unwrap())
            .try_run()
            .unwrap_err();
        assert!(matches!(err, SearchError::AllWorkersDead { .. }));
    }

    #[test]
    fn fasta_and_sqb_loading() {
        let (db, q) = demo_sets();
        let dir = std::env::temp_dir().join("swdual_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let fasta_path = dir.join("db.fasta");
        let sqb_path = dir.join("db.sqb");
        let q_path = dir.join("q.fasta");
        swdual_bio::fasta::write_file(&db, &fasta_path).unwrap();
        swdual_bio::sqb::write_file(&db, &sqb_path).unwrap();
        swdual_bio::fasta::write_file(&q, &q_path).unwrap();

        let report_fasta = SearchBuilder::new()
            .database_fasta(&fasta_path, Alphabet::Protein)
            .unwrap()
            .queries_fasta(&q_path, Alphabet::Protein)
            .unwrap()
            .run();
        let report_sqb = SearchBuilder::new()
            .database_sqb(&sqb_path)
            .unwrap()
            .queries(q)
            .run();
        assert_eq!(report_fasta.hits(), report_sqb.hits());
        std::fs::remove_file(&fasta_path).ok();
        std::fs::remove_file(&sqb_path).ok();
        std::fs::remove_file(&q_path).ok();
    }
}
