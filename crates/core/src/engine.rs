//! The search builder: configure and launch a hybrid database search.

use crate::report::SearchReport;
use swdual_bio::error::BioError;
use swdual_bio::fasta::ResiduePolicy;
use swdual_bio::seq::SequenceSet;
use swdual_bio::{Alphabet, ScoringScheme};
use swdual_obs::Obs;
use swdual_runtime::{run_search, AllocationPolicy, RuntimeConfig, WorkerSpec};
use swdual_sched::dual::KnapsackMethod;

/// Builder for one database search — the programmatic equivalent of the
/// paper's command line ("Receive parameters" in Figure 6).
pub struct SearchBuilder {
    database: Option<SequenceSet>,
    queries: Option<SequenceSet>,
    scheme: ScoringScheme,
    workers: Vec<WorkerSpec>,
    policy: AllocationPolicy,
    top_k: usize,
    obs: Obs,
}

impl Default for SearchBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchBuilder {
    /// A builder with the paper's defaults: BLOSUM62 with gap 10/2, one
    /// CPU + one GPU worker (the smallest configuration SWDUAL
    /// supports), dual-approximation allocation, top-10 hits.
    pub fn new() -> SearchBuilder {
        SearchBuilder {
            database: None,
            queries: None,
            scheme: ScoringScheme::protein_default(),
            workers: vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()],
            policy: AllocationPolicy::DualApprox(KnapsackMethod::Greedy),
            top_k: 10,
            obs: Obs::disabled(),
        }
    }

    /// Set the database to search.
    pub fn database(mut self, database: SequenceSet) -> Self {
        self.database = Some(database);
        self
    }

    /// Load the database from a FASTA file (lossy residue handling,
    /// like production tools).
    pub fn database_fasta(
        mut self,
        path: impl AsRef<std::path::Path>,
        alphabet: Alphabet,
    ) -> Result<Self, BioError> {
        self.database = Some(swdual_bio::fasta::read_file(
            path,
            alphabet,
            ResiduePolicy::Lossy,
        )?);
        Ok(self)
    }

    /// Load the database from an SQB binary file (the paper's format).
    pub fn database_sqb(mut self, path: impl AsRef<std::path::Path>) -> Result<Self, BioError> {
        let mut file = swdual_bio::sqb::SqbFile::open(path)?;
        self.database = Some(file.read_all()?);
        Ok(self)
    }

    /// Set the query set.
    pub fn queries(mut self, queries: SequenceSet) -> Self {
        self.queries = Some(queries);
        self
    }

    /// Load queries from a FASTA file.
    pub fn queries_fasta(
        mut self,
        path: impl AsRef<std::path::Path>,
        alphabet: Alphabet,
    ) -> Result<Self, BioError> {
        self.queries = Some(swdual_bio::fasta::read_file(
            path,
            alphabet,
            ResiduePolicy::Lossy,
        )?);
        Ok(self)
    }

    /// Override the scoring scheme.
    pub fn scheme(mut self, scheme: ScoringScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the worker pool.
    pub fn workers(mut self, workers: Vec<WorkerSpec>) -> Self {
        self.workers = workers;
        self
    }

    /// Convenience: `cpus` CPU workers plus `gpus` GPU workers with the
    /// default engines.
    pub fn hybrid_workers(mut self, cpus: usize, gpus: usize) -> Self {
        let mut workers = Vec::with_capacity(cpus + gpus);
        for _ in 0..gpus {
            workers.push(WorkerSpec::gpu_default());
        }
        for _ in 0..cpus {
            workers.push(WorkerSpec::cpu_default());
        }
        self.workers = workers;
        self
    }

    /// Override the allocation policy.
    pub fn policy(mut self, policy: AllocationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Hits kept per query.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// Enable structured tracing: master phases, scheduler decisions,
    /// per-job worker spans and simulated-device activity are recorded
    /// into the report, from which [`SearchReport::timeline`],
    /// [`SearchReport::metrics`] and [`SearchReport::journal`] export.
    /// Off by default; the disabled recorder costs one branch per
    /// would-be event in the hot path.
    pub fn observe(mut self) -> Self {
        self.obs = Obs::enabled();
        self
    }

    /// Use a caller-supplied recorder (e.g. one shared with other
    /// subsystems). Pass [`Obs::enabled`] to record, [`Obs::disabled`]
    /// to switch tracing back off.
    pub fn observability(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Launch the search.
    ///
    /// # Panics
    /// Panics when the database or query set is missing, or when the
    /// worker pool is empty.
    pub fn run(self) -> SearchReport {
        let database = self.database.expect("database not set");
        let queries = self.queries.expect("queries not set");
        let config = RuntimeConfig {
            scheme: self.scheme,
            policy: self.policy,
            top_k: self.top_k,
            obs: self.obs.clone(),
        };
        let db_meta: Vec<String> = database.iter().map(|s| s.id.clone()).collect();
        let query_meta: Vec<String> = queries.iter().map(|s| s.id.clone()).collect();
        let outcome = run_search(database, queries, &self.workers, config);
        SearchReport::new(outcome, db_meta, query_meta).with_obs(self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_datagen::{queries_from_database, synthetic_database, LengthModel, MutationProfile};

    fn demo_sets() -> (SequenceSet, SequenceSet) {
        let db = synthetic_database("db", 20, LengthModel::Fixed(80), 21);
        let q = queries_from_database(&db, 3, 1, usize::MAX, &MutationProfile::homolog(), 22);
        (db, q)
    }

    #[test]
    fn builder_end_to_end() {
        let (db, q) = demo_sets();
        let report = SearchBuilder::new()
            .database(db)
            .queries(q)
            .hybrid_workers(1, 1)
            .top_k(3)
            .run();
        assert_eq!(report.hits().len(), 3);
        for h in report.hits() {
            assert!(h.hits.len() <= 3);
        }
        assert!(report.total_cells() > 0);
    }

    #[test]
    fn self_scheduling_policy_through_builder() {
        let (db, q) = demo_sets();
        let report = SearchBuilder::new()
            .database(db)
            .queries(q)
            .policy(AllocationPolicy::SelfScheduling)
            .run();
        assert!(report.schedule().is_none());
    }

    #[test]
    #[should_panic]
    fn missing_database_panics() {
        let (_, q) = demo_sets();
        let _ = SearchBuilder::new().queries(q).run();
    }

    #[test]
    fn fasta_and_sqb_loading() {
        let (db, q) = demo_sets();
        let dir = std::env::temp_dir().join("swdual_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let fasta_path = dir.join("db.fasta");
        let sqb_path = dir.join("db.sqb");
        let q_path = dir.join("q.fasta");
        swdual_bio::fasta::write_file(&db, &fasta_path).unwrap();
        swdual_bio::sqb::write_file(&db, &sqb_path).unwrap();
        swdual_bio::fasta::write_file(&q, &q_path).unwrap();

        let report_fasta = SearchBuilder::new()
            .database_fasta(&fasta_path, Alphabet::Protein)
            .unwrap()
            .queries_fasta(&q_path, Alphabet::Protein)
            .unwrap()
            .run();
        let report_sqb = SearchBuilder::new()
            .database_sqb(&sqb_path)
            .unwrap()
            .queries(q)
            .run();
        assert_eq!(report_fasta.hits(), report_sqb.hits());
        std::fs::remove_file(&fasta_path).ok();
        std::fs::remove_file(&sqb_path).ok();
        std::fs::remove_file(&q_path).ok();
    }
}
