//! Search reports: results plus accounting, with human-readable
//! rendering ("present them to the user", paper Figure 6).

use swdual_obs::Obs;
use swdual_runtime::{QueryHits, SearchOutcome, WorkerStats};
use swdual_sched::schedule::Schedule;

/// The outcome of one search with the metadata needed to present it.
#[derive(Debug, Clone)]
pub struct SearchReport {
    outcome: SearchOutcome,
    database_ids: Vec<String>,
    query_ids: Vec<String>,
    obs: Obs,
}

impl SearchReport {
    /// Wrap a runtime outcome with id metadata.
    pub fn new(
        outcome: SearchOutcome,
        database_ids: Vec<String>,
        query_ids: Vec<String>,
    ) -> SearchReport {
        SearchReport {
            outcome,
            database_ids,
            query_ids,
            obs: Obs::disabled(),
        }
    }

    /// Attach the recorder the search ran with, so the exporters below
    /// have events to draw from.
    pub fn with_obs(mut self, obs: Obs) -> SearchReport {
        self.obs = obs;
        self
    }

    /// Ranked hits per query.
    pub fn hits(&self) -> &[QueryHits] {
        &self.outcome.hits
    }

    /// Per-worker accounting.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.outcome.worker_stats
    }

    /// The static schedule when the dual-approximation allocator ran.
    pub fn schedule(&self) -> Option<&Schedule> {
        self.outcome.schedule.as_ref()
    }

    /// Real elapsed seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.outcome.wall_seconds
    }

    /// Modelled makespan (the paper-comparable clock).
    pub fn modelled_makespan(&self) -> f64 {
        self.outcome.modelled_makespan
    }

    /// Total DP cells computed.
    pub fn total_cells(&self) -> u64 {
        self.outcome.total_cells
    }

    /// Modelled throughput in GCUPS.
    pub fn modelled_gcups(&self) -> f64 {
        self.outcome.modelled_gcups()
    }

    /// Real throughput in GCUPS.
    pub fn wall_gcups(&self) -> f64 {
        self.outcome.wall_gcups()
    }

    /// Id of a database sequence.
    pub fn database_id(&self, index: usize) -> &str {
        &self.database_ids[index]
    }

    /// Id of a query.
    pub fn query_id(&self, index: usize) -> &str {
        &self.query_ids[index]
    }

    /// Annotate one query's hits with Karlin–Altschul statistics: each
    /// hit becomes `(db_index, raw score, bit score, E-value)`.
    /// `query_len`/`db_residues` define the search space; `params`
    /// usually comes from [`swdual_bio::karlin::gapped_params`].
    pub fn hits_with_statistics(
        &self,
        query_index: usize,
        query_len: usize,
        db_residues: u64,
        params: &swdual_bio::karlin::KarlinParams,
    ) -> Vec<(usize, i32, f64, f64)> {
        self.outcome.hits[query_index]
            .hits
            .iter()
            .map(|h| {
                (
                    h.db_index,
                    h.score,
                    params.bit_score(h.score),
                    params.evalue(h.score, query_len, db_residues),
                )
            })
            .collect()
    }

    /// The event recorder the search ran with. Empty (disabled) unless
    /// the search was built with `SearchBuilder::observe`.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Chrome-trace (Perfetto-loadable) JSON of the run: wall-clock
    /// spans, modelled execution per worker and the planned schedule on
    /// separate process tracks. Valid-but-empty when tracing was off.
    pub fn timeline(&self) -> String {
        swdual_obs::export::chrome_trace(&self.obs)
    }

    /// Prometheus-style text metrics aggregated from the recorded
    /// events and counters.
    pub fn metrics(&self) -> String {
        swdual_obs::export::metrics_text(&self.obs)
    }

    /// JSON-lines journal: a schema header line followed by one event
    /// object per line, in recording order.
    pub fn journal(&self) -> String {
        swdual_obs::export::journal_jsonl(&self.obs)
    }

    /// Audit the run against the scheduler's promises: achieved
    /// makespan vs λ and the 2λ bound, per-worker utilization, load
    /// imbalance, latency quantiles, planned-vs-actual skew, GPU
    /// ordering quality. Empty report when tracing was off.
    pub fn analysis(&self) -> swdual_obs::analysis::RunReport {
        swdual_obs::analysis::analyze_obs(&self.obs)
    }

    /// Fold the recorded events into the unified [`Profile`]: collapsed
    /// stacks (worker task/phase frames, device kernel/transfer frames)
    /// with dual wall/modelled weights, plus the per-device roofline
    /// accumulators. Task-level stacks are available from any traced
    /// run; phase-level frames appear when the search was built with
    /// [`SearchBuilder::profile`](crate::SearchBuilder::profile)`(true)`.
    /// Empty when tracing was off.
    ///
    /// [`Profile`]: swdual_obs::profile::Profile
    pub fn profile(&self) -> swdual_obs::profile::Profile {
        swdual_obs::profile::Profile::from_obs(&self.obs)
    }

    /// Explain the run causally: the true critical path on both
    /// clocks, blame attribution of the whole modelled makespan
    /// (compute / transfer / queue wait / straggle / recovery /
    /// re-plan / imbalance) per run, worker and query-length bucket,
    /// and the [`ReplayInput`] that
    /// [`whatif::what_if`](crate::whatif::what_if) replays
    /// counterfactuals from. Quiet when tracing was off.
    ///
    /// [`ReplayInput`]: swdual_obs::explain::ReplayInput
    pub fn explain(&self) -> swdual_obs::explain::ExplainReport {
        swdual_obs::explain::explain_obs(&self.obs)
    }

    /// The watchdog alerts journaled during the run
    /// (`alert_*` fault-track instants folded back into typed
    /// [`Alert`](swdual_obs::watch::Alert)s, in firing order). Empty
    /// when the run was not watched — enable with
    /// [`SearchBuilder::watchdog`](crate::engine::SearchBuilder::watchdog)
    /// — or when nothing tripped.
    pub fn alerts(&self) -> Vec<swdual_obs::watch::Alert> {
        swdual_obs::watch::alerts_from_events(&self.obs.events())
    }

    /// Compare this run against a baseline run: every audited metric
    /// (makespans on both clocks, bound margin, per-worker utilization,
    /// latency quantiles, throughput, fault counts) plus the profile
    /// fold (per-phase self-times, per-device busy time, roofline
    /// verdict flips) classified IMPROVED / REGRESSED / neutral under
    /// the default tolerances. `self` is the head, `baseline` the base:
    /// a positive delta means this run's value is higher.
    pub fn diff(&self, baseline: &SearchReport) -> swdual_obs::diff::DiffReport {
        let opts = swdual_obs::diff::DiffOptions {
            include_profile: true,
            ..Default::default()
        };
        swdual_obs::diff::diff_obs(baseline.obs(), &self.obs, &opts)
    }

    /// Render the hit lists like a classic search tool report.
    pub fn render_hits(&self, per_query: usize) -> String {
        let mut out = String::new();
        for qh in &self.outcome.hits {
            out.push_str(&format!("Query {}:\n", self.query_ids[qh.query_index]));
            for hit in qh.hits.iter().take(per_query) {
                out.push_str(&format!(
                    "  {:>8}  score {}\n",
                    self.database_ids[hit.db_index], hit.score
                ));
            }
        }
        out
    }

    /// Render the per-worker summary table.
    pub fn render_workers(&self) -> String {
        let mut out =
            String::from("worker  engine                     tasks  modelled-busy(s)  GCUPS\n");
        for s in &self.outcome.worker_stats {
            out.push_str(&format!(
                "{:>6}  {:<25} {:>6}  {:>16.3}  {:>5.2}\n",
                s.worker_id,
                s.description,
                s.tasks,
                s.busy_modelled,
                s.modelled_gcups()
            ));
        }
        out.push_str(&format!(
            "modelled makespan {:.3} s, {:.2} GCUPS ({} cells)\n",
            self.modelled_makespan(),
            self.modelled_gcups(),
            self.total_cells()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchBuilder;
    use swdual_datagen::{queries_from_database, synthetic_database, LengthModel, MutationProfile};

    fn report() -> SearchReport {
        let db = synthetic_database("db", 12, LengthModel::Fixed(60), 5);
        let q = queries_from_database(&db, 2, 1, usize::MAX, &MutationProfile::homolog(), 6);
        SearchBuilder::new().database(db).queries(q).run()
    }

    #[test]
    fn render_hits_names_queries_and_subjects() {
        let r = report();
        let text = r.render_hits(3);
        assert!(text.contains("Query query_0:"));
        assert!(text.contains("score"));
        assert!(text.contains("db_"));
    }

    #[test]
    fn render_workers_includes_totals() {
        let r = report();
        let text = r.render_workers();
        assert!(text.contains("modelled makespan"));
        assert!(text.contains("GCUPS"));
        assert!(text.contains("CPU(") || text.contains("GPU("));
    }

    #[test]
    fn statistics_annotation_is_monotone() {
        let r = report();
        let params = swdual_bio::karlin::gapped_params(10, 2).unwrap();
        let annotated = r.hits_with_statistics(0, 60, 720, &params);
        assert!(!annotated.is_empty());
        for w in annotated.windows(2) {
            // Hits are score-sorted, so bit scores fall and E-values rise.
            assert!(w[0].2 >= w[1].2);
            assert!(w[0].3 <= w[1].3);
        }
        // The top hit is the (near-)identical source: tiny E-value.
        assert!(annotated[0].3 < 1e-6, "E = {}", annotated[0].3);
    }

    #[test]
    fn observed_report_exports_nonempty_timeline_and_metrics() {
        let db = synthetic_database("db", 12, LengthModel::Fixed(60), 5);
        let q = queries_from_database(&db, 2, 1, usize::MAX, &MutationProfile::homolog(), 6);
        let r = SearchBuilder::new().database(db).queries(q).observe().run();
        assert!(r.obs().is_enabled());
        assert!(r.obs().event_count() > 0);

        let trace = r.timeline();
        let parsed = serde_json::from_str::<serde_json::Value>(&trace).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());

        let metrics = r.metrics();
        assert!(metrics.contains("swdual_events_total"));
        assert!(metrics.contains("swdual_track_busy_modelled_seconds"));

        let journal = r.journal();
        // Header line plus one line per event.
        assert_eq!(journal.lines().count(), r.obs().event_count() + 1);

        let audit = r.analysis();
        let jobs = r
            .obs()
            .counters()
            .into_iter()
            .find(|(name, _)| name == "jobs_completed")
            .map(|(_, v)| v)
            .expect("jobs_completed counter");
        assert_eq!(audit.tasks as f64, jobs);
        assert!(audit.modelled_makespan > 0.0);
        assert!(audit.has_bound);
        assert!(audit.bound_holds, "2λ bound must hold on a healthy run");
    }

    #[test]
    fn unobserved_report_exports_are_valid_but_empty() {
        let r = report();
        assert!(!r.obs().is_enabled());
        let parsed = serde_json::from_str::<serde_json::Value>(&r.timeline()).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap();
        // Only the fixed process-name metadata records, no spans.
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
        assert!(r.journal().is_empty());
    }

    #[test]
    fn profiled_report_reconciles_with_analysis() {
        use swdual_obs::profile::ProfileClock;
        let db = synthetic_database("db", 12, LengthModel::Fixed(60), 5);
        let q = queries_from_database(&db, 2, 1, usize::MAX, &MutationProfile::homolog(), 6);
        let r = SearchBuilder::new()
            .database(db)
            .queries(q)
            .profile(true)
            .run();
        assert!(r.obs().is_profiling());
        let profile = r.profile();
        assert!(!profile.stacks.is_empty());
        // Phase frames present: at least the DP inner loop on a CPU
        // worker or kernel phases on the device.
        assert!(profile
            .stacks
            .iter()
            .any(|s| s.frames.iter().any(|f| f == "dp_inner" || f == "compute")));
        // Per-worker root totals equal the auditor's busy times — the
        // reconciliation the CI smoke test asserts end to end.
        let audit = r.analysis();
        for w in &audit.workers {
            let root = format!("worker:{}", w.worker);
            let wall = profile.root_total(&root, ProfileClock::Wall);
            let modelled = profile.root_total(&root, ProfileClock::Modelled);
            assert!(
                (wall - w.busy_wall).abs() <= 1e-9 + 0.01 * w.busy_wall.abs(),
                "worker {} wall {} vs audit {}",
                w.worker,
                wall,
                w.busy_wall
            );
            assert!(
                (modelled - w.busy_modelled).abs() <= 1e-9 + 0.01 * w.busy_modelled.abs(),
                "worker {} modelled {} vs audit {}",
                w.worker,
                modelled,
                w.busy_modelled
            );
        }
        assert!((profile.modelled_makespan - audit.modelled_makespan).abs() < 1e-9);
        // Exporters produce valid output over the same profile.
        let folded = swdual_obs::export::flamegraph_folded(&profile, ProfileClock::Modelled);
        assert!(folded.lines().count() > 0);
        let speedscope = swdual_obs::export::speedscope_json(&profile);
        serde_json::from_str::<serde_json::Value>(&speedscope).expect("speedscope parses");
        // The roofline sees the GPU device and never prints NaN.
        let roofline = profile.roofline();
        assert!(!roofline.devices.is_empty());
        let text = roofline.to_text();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn unprofiled_run_has_task_level_profile_only() {
        let db = synthetic_database("db", 12, LengthModel::Fixed(60), 5);
        let q = queries_from_database(&db, 2, 1, usize::MAX, &MutationProfile::homolog(), 6);
        let r = SearchBuilder::new().database(db).queries(q).observe().run();
        assert!(!r.obs().is_profiling());
        let profile = r.profile();
        assert!(!profile.stacks.is_empty(), "task stacks from tracing alone");
        assert!(
            profile
                .stacks
                .iter()
                .all(|s| s.frames.iter().all(|f| f != "dp_inner")),
            "no phase frames without profile(true)"
        );
    }

    #[test]
    fn explained_report_blames_the_whole_makespan() {
        let db = synthetic_database("db", 12, LengthModel::Fixed(60), 5);
        let q = queries_from_database(&db, 3, 1, usize::MAX, &MutationProfile::homolog(), 6);
        let r = SearchBuilder::new().database(db).queries(q).observe().run();
        let e = r.explain();
        assert!(!e.degraded, "live runs carry full lineage");
        assert!(e.modelled_makespan > 0.0);
        let total = e.blame.total();
        assert!(
            (total - e.modelled_makespan).abs() < 0.01 * e.modelled_makespan,
            "blame {total} vs makespan {}",
            e.modelled_makespan
        );
        assert!(!e.critical_path.is_empty());
        // The replay input feeds the what-if engine end to end.
        let wi = crate::whatif::what_if(&e.replay, &crate::whatif::WhatIf::PerfectCalibration)
            .expect("replay from a live run");
        assert!(wi.counterfactual_makespan > 0.0);
    }

    #[test]
    fn metadata_accessors() {
        let r = report();
        assert_eq!(r.query_id(0), "query_0");
        assert!(r.database_id(0).starts_with("db_"));
        assert!(r.wall_seconds() > 0.0);
        assert!(r.wall_gcups() >= 0.0);
    }
}
