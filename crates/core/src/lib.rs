//! # swdual-core — SWDUAL: hybrid CPU+GPU Smith-Waterman database search
//!
//! The public façade of the reproduction of *"Fast Biological Sequence
//! Comparison on Hybrid Platforms"* (Kedad-Sidhoum, Mendonça, Monna,
//! Mounié, Trystram — ICPP 2014). It ties the substrate crates into the
//! system the paper describes:
//!
//! * sequence handling and formats — re-exported from [`swdual_bio`],
//! * alignment kernels — re-exported from [`swdual_align`],
//! * the dual-approximation scheduler — re-exported from
//!   [`swdual_sched`],
//! * the master-slave runtime with CPU workers and simulated GPU
//!   workers — re-exported from [`swdual_runtime`],
//! * paper-scale virtual-time experiments — re-exported from
//!   [`swdual_platform`],
//! * synthetic workload generation — re-exported from
//!   [`swdual_datagen`].
//!
//! ## Quickstart
//!
//! ```
//! use swdual_core::prelude::*;
//!
//! // A small synthetic database and two queries derived from it.
//! let database = swdual_core::datagen::synthetic_database(
//!     "demo", 64, swdual_core::datagen::LengthModel::Fixed(120), 7);
//! let queries = swdual_core::datagen::queries_from_database(
//!     &database, 2, 1, usize::MAX,
//!     &swdual_core::datagen::MutationProfile::homolog(), 8);
//!
//! let report = SearchBuilder::new()
//!     .database(database)
//!     .queries(queries)
//!     .workers(vec![WorkerSpec::cpu_default(), WorkerSpec::gpu_default()])
//!     .top_k(5)
//!     .run();
//!
//! assert_eq!(report.hits().len(), 2);
//! assert!(report.modelled_gcups() > 0.0);
//! ```

pub mod engine;
pub mod live;
pub mod progress;
pub mod report;
pub mod whatif;

/// Re-export: alignment kernels.
pub use swdual_align as align;
/// Re-export: sequence substrate.
pub use swdual_bio as bio;
/// Re-export: workload generators.
pub use swdual_datagen as datagen;
/// Re-export: GPU device simulator.
pub use swdual_gpusim as gpusim;
/// Re-export: structured event recording and exporters.
pub use swdual_obs as obs;
/// Re-export: virtual-time platform model.
pub use swdual_platform as platform;
/// Re-export: master-slave runtime.
pub use swdual_runtime as runtime;
/// Re-export: the dual-approximation scheduler.
pub use swdual_sched as sched;

pub use engine::SearchBuilder;
pub use live::{LiveStream, WatchdogDriver};
pub use progress::ProgressReporter;
pub use report::SearchReport;

/// The common imports of a SWDUAL application.
pub mod prelude {
    pub use crate::engine::SearchBuilder;
    pub use crate::report::SearchReport;
    pub use swdual_bio::{Alphabet, Matrix, ScoringScheme, Sequence, SequenceSet};
    pub use swdual_obs::{Obs, Track};
    pub use swdual_runtime::{AllocationPolicy, RuntimeConfig, WorkerSpec};
    pub use swdual_sched::{PlatformSpec, TaskSet};
}
