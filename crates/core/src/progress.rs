//! Live progress reporting for long searches.
//!
//! [`ProgressReporter`] runs a small background thread subscribed to
//! the recorder's event bus. It redraws its one-line stderr status
//! when new events arrive (debounced to the configured interval) and
//! on a 1 s heartbeat even when nothing happens, so a stalled run is
//! still visibly alive. The line itself is rendered from the live
//! metrics registry — the same sharded registry the workers write
//! into — so the reporter never touches the search's data path, and
//! the bus subscription is bounded: if the reporter lags, events are
//! dropped for it (counted in `swdual_bus_dropped_events`), never
//! queued against the hot path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use swdual_obs::metrics::{Metrics, MetricsSnapshot};
use swdual_obs::{BusSubscriber, Obs};

/// Heartbeat: redraw at least this often even with no bus traffic.
const HEARTBEAT: Duration = Duration::from_secs(1);

/// Background thread printing progress lines on bus activity. Stops
/// (and joins) on [`ProgressReporter::finish`] or drop.
pub struct ProgressReporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressReporter {
    /// Start reporting from `obs`. `interval` is the redraw debounce:
    /// new bus events trigger a redraw at most once per interval; a
    /// 1 s heartbeat fires regardless. The thread is a no-op when
    /// observability is disabled — the subscriber is inert and the
    /// registry snapshot is empty. Progress is an amenity: if the
    /// thread cannot be spawned (resource exhaustion), the search
    /// proceeds without it instead of aborting.
    pub fn start(obs: &Obs, interval: Duration) -> ProgressReporter {
        let metrics = obs.metrics();
        let subscriber = obs.subscribe();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("swdual-progress".into())
            .spawn(move || run(metrics, subscriber, interval, stop_flag))
            .map_err(|e| eprintln!("progress: disabled ({e})"))
            .ok();
        ProgressReporter { stop, handle }
    }

    /// Stop the reporter and wait for its thread to exit. Prints one
    /// final line so the last state is always visible.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run(metrics: Metrics, subscriber: BusSubscriber, interval: Duration, stop: Arc<AtomicBool>) {
    if !metrics.is_enabled() {
        return;
    }
    // Sleep in short slices so finish() never blocks a full interval.
    let slice = Duration::from_millis(20)
        .min(interval)
        .max(Duration::from_millis(1));
    let heartbeat = HEARTBEAT.max(interval);
    let mut since_draw = Duration::ZERO;
    let mut pending = false;
    let mut buf = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(slice);
        since_draw += slice;
        // Drain the subscription; the events themselves are only a
        // wake signal (the line renders from the registry), so a
        // saturated queue merely coalesces redraws.
        buf.clear();
        if subscriber.drain_into(&mut buf) > 0 {
            pending = true;
        }
        let due = (pending && since_draw >= interval) || since_draw >= heartbeat;
        if due {
            since_draw = Duration::ZERO;
            pending = false;
            if let Some(line) = render_tick(&metrics) {
                eprintln!("{line}");
            }
        }
    }
    // Final line: the run just ended, show where it landed.
    if let Some(line) = render_tick(&metrics) {
        eprintln!("{line}");
    }
}

/// Snapshot and render one tick. A panic while rendering (a torn
/// gauge, quantile math on a snapshot mid-update) must not kill the
/// reporter thread — the tick is skipped and the next one retries.
fn render_tick(metrics: &Metrics) -> Option<String> {
    catch_tick(|| render_line(&metrics.snapshot()))
}

/// Run one tick's renderer, turning a panic into a skipped tick.
fn catch_tick(render: impl FnOnce() -> Option<String>) -> Option<String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(render)).unwrap_or(None)
}

/// Format one progress line from a registry snapshot, or `None` when
/// the search has not published anything yet.
pub(crate) fn render_line(snap: &MetricsSnapshot) -> Option<String> {
    let total = snap.gauge_value("tasks_total", &[])?;
    let done = snap.gauge_value("tasks_completed", &[]).unwrap_or(0.0);
    let queue = snap.gauge_value("queue_depth", &[]).unwrap_or(total - done);
    let workers = snap.gauge_value("workers_alive", &[]).unwrap_or(0.0);
    let mut line = format!(
        "progress: {done:.0}/{total:.0} tasks done, queue {queue:.0}, {workers:.0} workers"
    );
    if let Some(h) = snap.histogram_summed("job_wall_seconds") {
        if let (Some(p50), Some(p95)) = (h.quantile(0.50), h.quantile(0.95)) {
            line.push_str(&format!(
                ", job p50 {:.1} ms / p95 {:.1} ms",
                p50 * 1e3,
                p95 * 1e3
            ));
        }
    }
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_needs_a_task_total() {
        let metrics = Metrics::enabled();
        assert!(render_line(&metrics.snapshot()).is_none());
    }

    #[test]
    fn render_line_summarizes_gauges_and_latency() {
        let metrics = Metrics::enabled();
        metrics.gauge("tasks_total", &[], 10.0);
        metrics.gauge("tasks_completed", &[], 4.0);
        metrics.gauge("queue_depth", &[], 6.0);
        metrics.gauge("workers_alive", &[], 3.0);
        metrics.observe("job_wall_seconds", &[("worker", "0")], 0.002);
        metrics.observe("job_wall_seconds", &[("worker", "1")], 0.004);
        let line = render_line(&metrics.snapshot()).unwrap();
        assert!(line.contains("4/10 tasks done"), "{line}");
        assert!(line.contains("queue 6"), "{line}");
        assert!(line.contains("3 workers"), "{line}");
        assert!(line.contains("job p50"), "{line}");
    }

    #[test]
    fn reporter_starts_and_finishes_cleanly() {
        let obs = Obs::enabled();
        obs.metrics().gauge("tasks_total", &[], 1.0);
        let reporter = ProgressReporter::start(&obs, Duration::from_millis(5));
        // Bus traffic is what wakes the redraw path now.
        obs.instant(swdual_obs::Track::Master, "tick", &[]);
        std::thread::sleep(Duration::from_millis(15));
        reporter.finish();
    }

    #[test]
    fn disabled_obs_reporter_is_a_no_op() {
        let reporter = ProgressReporter::start(&Obs::disabled(), Duration::from_millis(1));
        reporter.finish();
    }

    #[test]
    fn reporter_subscription_closes_on_finish() {
        let obs = Obs::enabled();
        obs.metrics().gauge("tasks_total", &[], 1.0);
        let reporter = ProgressReporter::start(&obs, Duration::from_millis(5));
        reporter.finish();
        // After finish, the reporter's tap is closed: publishing keeps
        // working and drops nothing against the dead subscription.
        for _ in 0..10 {
            obs.instant(swdual_obs::Track::Master, "after", &[]);
        }
        assert_eq!(obs.bus_dropped_events(), 0);
    }

    #[test]
    fn panicking_tick_is_skipped_not_fatal() {
        // A renderer that panics must degrade to "no line this tick";
        // the reporter thread then simply retries on the next tick.
        let silenced = std::panic::catch_unwind(|| {
            assert_eq!(catch_tick(|| panic!("torn snapshot")), None);
        });
        assert!(silenced.is_ok(), "catch_tick leaked the panic");
        // And a healthy renderer still gets through unchanged.
        assert_eq!(
            catch_tick(|| Some("progress: ok".into())),
            Some("progress: ok".to_string())
        );
    }
}
