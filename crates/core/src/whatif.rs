//! Counterfactual what-if replay over an explained run.
//!
//! `swdual explain` extracts a [`ReplayInput`] from the journal: every
//! task's `(p_cpu, p_gpu)` model, each worker's observed
//! duration/estimate ratio, the GPU transfer share and the original λ.
//! This module replays the schedule on the modelled clock under an
//! edited premise and reports the counterfactual makespan:
//!
//! * `drop-worker:N` — the run without worker `N`;
//! * `perfect-calibration` — the planner knows every worker's *true*
//!   observed speed up front (what online re-optimization converges
//!   to);
//! * `zero-transfer` — H2D transfer is free (GPU task times shrink by
//!   the observed transfer fraction);
//! * `plus-gpu:CLASS` — one more GPU of a zoo class (`c2050`, `phi`,
//!   `knl`, `bioseal`), priced by its calibrated estimator curve;
//! * `no-faults` — faulted workers run at their species' best observed
//!   rate instead.
//!
//! The replay reuses the paper's own machinery: the dual-approximation
//! species split plus weighted LPT
//! ([`reschedule_remainder_weighted`]) — the same planner the master
//! runs at re-plan time — so counterfactuals are statements about the
//! *schedule*, not a separate model. Worker speed factors are taken as
//! observed (faster-than-prior workers keep factors below 1, which the
//! runtime's conservative [`WorkerFactors::new`] would clamp away).

use swdual_gpusim::DeviceClass;
use swdual_obs::explain::ReplayInput;
use swdual_runtime::estimator::WorkerRateModel;
use swdual_sched::binsearch::BinarySearchConfig;
use swdual_sched::remainder::{reschedule_remainder_weighted, WorkerFactors};
use swdual_sched::task::{Task, TaskSet};

use serde::Serialize;

/// A parsed counterfactual premise.
#[derive(Debug, Clone, PartialEq)]
pub enum WhatIf {
    /// Remove one worker from the platform.
    DropWorker(usize),
    /// Plan with the observed speeds known up front.
    PerfectCalibration,
    /// Make host-to-device transfer free.
    ZeroTransfer,
    /// Add one GPU of the named zoo class.
    PlusGpu(DeviceClass),
    /// Faulted workers run at their species' best observed rate.
    NoFaults,
}

impl WhatIf {
    /// Parse a CLI spec: `drop-worker:N`, `perfect-calibration`,
    /// `zero-transfer`, `plus-gpu:CLASS`, `no-faults`.
    pub fn parse(spec: &str) -> Result<WhatIf, String> {
        let spec = spec.trim();
        if let Some(n) = spec.strip_prefix("drop-worker:") {
            let n: usize = n
                .parse()
                .map_err(|_| format!("drop-worker wants a worker id, got '{n}'"))?;
            return Ok(WhatIf::DropWorker(n));
        }
        if let Some(class) = spec.strip_prefix("plus-gpu:") {
            let class = DeviceClass::parse(class)
                .ok_or_else(|| format!("unknown device class '{class}' for plus-gpu"))?;
            return Ok(WhatIf::PlusGpu(class));
        }
        match spec {
            "perfect-calibration" => Ok(WhatIf::PerfectCalibration),
            "zero-transfer" => Ok(WhatIf::ZeroTransfer),
            "no-faults" => Ok(WhatIf::NoFaults),
            _ => Err(format!(
                "unknown what-if spec '{spec}' (expected drop-worker:N, \
                 perfect-calibration, zero-transfer, plus-gpu:CLASS or no-faults)"
            )),
        }
    }

    /// The canonical spelling of the spec.
    pub fn label(&self) -> String {
        match self {
            WhatIf::DropWorker(n) => format!("drop-worker:{n}"),
            WhatIf::PerfectCalibration => "perfect-calibration".to_string(),
            WhatIf::ZeroTransfer => "zero-transfer".to_string(),
            WhatIf::PlusGpu(c) => format!("plus-gpu:{}", c.name()),
            WhatIf::NoFaults => "no-faults".to_string(),
        }
    }
}

/// The counterfactual's answer.
#[derive(Debug, Clone, Serialize)]
pub struct WhatIfReport {
    /// The premise replayed.
    pub spec: String,
    /// Modelled makespan the journal actually achieved.
    pub observed_makespan: f64,
    /// Replay of the *unedited* premise (observed speeds, full worker
    /// set) — the apples-to-apples baseline for the counterfactual,
    /// and a measure of replay fidelity against `observed_makespan`.
    pub baseline_replay: f64,
    /// Modelled makespan under the counterfactual premise.
    pub counterfactual_makespan: f64,
    /// `counterfactual − observed` (negative = the premise helps).
    pub delta_seconds: f64,
    /// Percentage change vs the observed makespan.
    pub delta_percent: f64,
    /// λ of the original plan (0 when the journal had none).
    pub lambda: f64,
    /// 2·λ of the original plan.
    pub two_lambda_bound: f64,
    /// Counterfactual vs the original guarantee: `HOLDS` when it still
    /// fits under 2λ, `VIOLATED` when not, `NO BOUND` without a λ.
    pub bound_verdict: String,
    /// Workers in the counterfactual platform.
    pub workers: usize,
    /// Tasks replayed.
    pub tasks: usize,
}

/// Observed speed factors split by species, in worker-id order, with
/// the id maps back to journal worker ids.
struct SpeciesFactors {
    cpu: Vec<f64>,
    gpu: Vec<f64>,
    cpu_ids: Vec<usize>,
    gpu_ids: Vec<usize>,
}

fn species_factors(replay: &ReplayInput) -> SpeciesFactors {
    let mut sf = SpeciesFactors {
        cpu: Vec::new(),
        gpu: Vec::new(),
        cpu_ids: Vec::new(),
        gpu_ids: Vec::new(),
    };
    for w in &replay.workers {
        // A worker with no usable observations replays at its prior.
        let f = if w.ratio > 0.0 && w.ratio.is_finite() {
            w.ratio
        } else {
            1.0
        };
        if w.is_gpu {
            sf.gpu.push(f);
            sf.gpu_ids.push(w.id);
        } else {
            sf.cpu.push(f);
            sf.cpu_ids.push(w.id);
        }
    }
    sf
}

/// Best (smallest) positive factor of a species, 1.0 when empty.
fn best_of(v: &[f64]) -> f64 {
    let best = v
        .iter()
        .copied()
        .filter(|f| *f > 0.0)
        .fold(f64::INFINITY, f64::min);
    if best.is_finite() {
        best
    } else {
        1.0
    }
}

/// Replay the task set on a platform with the given per-PE factors;
/// returns the modelled makespan. Factors below 1 are legitimate here
/// (a worker observed *faster* than its prior), so the [`WorkerFactors`]
/// struct is built directly rather than through its clamping `new`.
fn replay_makespan(tasks: &TaskSet, cpu: Vec<f64>, gpu: Vec<f64>) -> Result<f64, String> {
    if cpu.is_empty() && gpu.is_empty() {
        return Err("counterfactual platform has no workers left".to_string());
    }
    if cpu.is_empty() {
        return Err(
            "counterfactual platform has no CPU workers; the scheduler needs at least one"
                .to_string(),
        );
    }
    let factors = WorkerFactors { cpu, gpu };
    let all: Vec<usize> = (0..tasks.len()).collect();
    let schedule =
        reschedule_remainder_weighted(tasks, &all, &factors, BinarySearchConfig::default());
    Ok(schedule.makespan())
}

/// Replay `replay` under the counterfactual `spec`.
pub fn what_if(replay: &ReplayInput, spec: &WhatIf) -> Result<WhatIfReport, String> {
    if replay.tasks.is_empty() {
        return Err("journal has no task models to replay (is it a v1 journal?)".to_string());
    }
    let task_set = TaskSet::new(
        replay
            .tasks
            .iter()
            .enumerate()
            .map(|(local, t)| Task::new(local, t.p_cpu.max(1e-12), t.p_gpu.max(1e-12)))
            .collect(),
    );
    let sf = species_factors(replay);

    let baseline_replay = replay_makespan(&task_set, sf.cpu.clone(), sf.gpu.clone())?;

    let counterfactual = match spec {
        WhatIf::PerfectCalibration => baseline_replay,
        WhatIf::DropWorker(n) => {
            let mut cpu = sf.cpu.clone();
            let mut gpu = sf.gpu.clone();
            if let Some(i) = sf.cpu_ids.iter().position(|id| id == n) {
                cpu.remove(i);
            } else if let Some(i) = sf.gpu_ids.iter().position(|id| id == n) {
                gpu.remove(i);
            } else {
                return Err(format!("worker {n} is not in the journal"));
            }
            replay_makespan(&task_set, cpu, gpu)?
        }
        WhatIf::ZeroTransfer => {
            let shrink = (1.0 - replay.gpu_transfer_fraction).clamp(0.0, 1.0);
            let free = TaskSet::new(
                replay
                    .tasks
                    .iter()
                    .enumerate()
                    .map(|(local, t)| {
                        Task::new(local, t.p_cpu.max(1e-12), (t.p_gpu * shrink).max(1e-12))
                    })
                    .collect(),
            );
            replay_makespan(&free, sf.cpu.clone(), sf.gpu.clone())?
        }
        WhatIf::PlusGpu(class) => {
            // Price the new GPU by its calibrated estimator curve,
            // expressed as a factor relative to the journal's p_gpu
            // units (median over tasks, robust to outliers).
            let model = WorkerRateModel::for_class(*class);
            let mut ratios: Vec<f64> = replay
                .tasks
                .iter()
                .filter(|t| t.query_len > 0 && t.cells > 0.0 && t.p_gpu > 0.0)
                .map(|t| {
                    let db_residues = (t.cells / t.query_len as f64).round() as u64;
                    model.task_seconds(t.query_len, db_residues) / t.p_gpu
                })
                .collect();
            if ratios.is_empty() {
                return Err(
                    "plus-gpu needs query lengths and cell counts in the journal \
                     (v2 `task_model` events); this journal has none"
                        .to_string(),
                );
            }
            ratios.sort_by(f64::total_cmp);
            let factor = ratios[ratios.len() / 2];
            let mut gpu = sf.gpu.clone();
            gpu.push(factor.max(1e-9));
            replay_makespan(&task_set, sf.cpu.clone(), gpu)?
        }
        WhatIf::NoFaults => {
            let best_cpu = best_of(&sf.cpu);
            let best_gpu = best_of(&sf.gpu);
            let heal = |ids: &[usize], factors: &[f64], best: f64| -> Vec<f64> {
                ids.iter()
                    .zip(factors)
                    .map(|(id, &f)| {
                        let faulted = replay.workers.iter().any(|w| w.id == *id && w.faulted);
                        if faulted {
                            best
                        } else {
                            f
                        }
                    })
                    .collect()
            };
            replay_makespan(
                &task_set,
                heal(&sf.cpu_ids, &sf.cpu, best_cpu),
                heal(&sf.gpu_ids, &sf.gpu, best_gpu),
            )?
        }
    };

    let observed = replay.modelled_makespan;
    let two_lambda = 2.0 * replay.lambda;
    let bound_verdict = if replay.lambda <= 0.0 {
        "NO BOUND"
    } else if counterfactual <= two_lambda * (1.0 + 1e-9) + 1e-12 {
        "HOLDS"
    } else {
        "VIOLATED"
    };
    let workers = match spec {
        WhatIf::DropWorker(_) => replay.workers.len() - 1,
        WhatIf::PlusGpu(_) => replay.workers.len() + 1,
        _ => replay.workers.len(),
    };
    Ok(WhatIfReport {
        spec: spec.label(),
        observed_makespan: observed,
        baseline_replay,
        counterfactual_makespan: counterfactual,
        delta_seconds: counterfactual - observed,
        delta_percent: if observed > 0.0 {
            100.0 * (counterfactual / observed - 1.0)
        } else {
            0.0
        },
        lambda: replay.lambda,
        two_lambda_bound: two_lambda,
        bound_verdict: bound_verdict.to_string(),
        workers,
        tasks: replay.tasks.len(),
    })
}

impl WhatIfReport {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Human-readable rendering for terminals.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("what-if: {}", self.spec));
        line(format!(
            "  observed makespan      {:.6} s modelled ({} tasks)",
            self.observed_makespan, self.tasks
        ));
        line(format!(
            "  baseline replay        {:.6} s (observed speeds, unedited platform)",
            self.baseline_replay
        ));
        line(format!(
            "  counterfactual         {:.6} s on {} workers",
            self.counterfactual_makespan, self.workers
        ));
        line(format!(
            "  delta vs observed      {:+.6} s ({:+.1}%)",
            self.delta_seconds, self.delta_percent
        ));
        if self.lambda > 0.0 {
            line(format!(
                "  original 2λ bound      {:.6} s → counterfactual {}",
                self.two_lambda_bound, self.bound_verdict
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_obs::explain::{ReplayTask, ReplayWorker};

    fn replay_fixture() -> ReplayInput {
        // 6 tasks, 2 CPUs + 1 GPU. Worker 1 observed at 2× (straggler,
        // faulted); the GPU on estimate.
        let tasks = (0..6)
            .map(|i| ReplayTask {
                id: i,
                p_cpu: 2.0 + (i % 3) as f64,
                p_gpu: 0.5 + 0.1 * i as f64,
                query_len: 100 + 50 * i,
                cells: (100 + 50 * i) as f64 * 1e5,
                worker: (i % 3) as i64,
                observed_modelled: 1.0,
            })
            .collect();
        ReplayInput {
            tasks,
            workers: vec![
                ReplayWorker {
                    id: 0,
                    is_gpu: false,
                    device_class: "cpu".to_string(),
                    ratio: 1.0,
                    faulted: false,
                },
                ReplayWorker {
                    id: 1,
                    is_gpu: false,
                    device_class: "cpu".to_string(),
                    ratio: 2.0,
                    faulted: true,
                },
                ReplayWorker {
                    id: 2,
                    is_gpu: true,
                    device_class: "c2050".to_string(),
                    ratio: 1.0,
                    faulted: false,
                },
            ],
            gpu_transfer_fraction: 0.2,
            lambda: 6.0,
            modelled_makespan: 9.0,
        }
    }

    #[test]
    fn specs_parse_and_round_trip() {
        for spec in [
            "drop-worker:2",
            "perfect-calibration",
            "zero-transfer",
            "plus-gpu:knl",
            "no-faults",
        ] {
            let w = WhatIf::parse(spec).expect(spec);
            assert_eq!(w.label(), spec);
        }
        assert!(WhatIf::parse("drop-worker:x").is_err());
        assert!(WhatIf::parse("plus-gpu:hal9000").is_err());
        assert!(WhatIf::parse("faster-please").is_err());
    }

    #[test]
    fn perfect_calibration_equals_the_baseline_replay() {
        let r = what_if(&replay_fixture(), &WhatIf::PerfectCalibration).unwrap();
        assert_eq!(r.counterfactual_makespan, r.baseline_replay);
        assert!(r.counterfactual_makespan > 0.0);
        // Knowing the straggler up front beats the observed makespan.
        assert!(r.counterfactual_makespan < r.observed_makespan);
        assert_eq!(r.bound_verdict, "HOLDS");
    }

    #[test]
    fn dropping_a_straggler_can_help_dropping_a_good_worker_hurts() {
        let replay = replay_fixture();
        let baseline = what_if(&replay, &WhatIf::PerfectCalibration)
            .unwrap()
            .counterfactual_makespan;
        let drop_fast = what_if(&replay, &WhatIf::DropWorker(0)).unwrap();
        assert!(
            drop_fast.counterfactual_makespan >= baseline,
            "losing the fast CPU cannot speed up the replay"
        );
        let gone = what_if(&replay, &WhatIf::DropWorker(9));
        assert!(gone.is_err());
    }

    #[test]
    fn zero_transfer_never_slows_the_replay() {
        let replay = replay_fixture();
        let base = what_if(&replay, &WhatIf::PerfectCalibration).unwrap();
        let zt = what_if(&replay, &WhatIf::ZeroTransfer).unwrap();
        assert!(zt.counterfactual_makespan <= base.counterfactual_makespan + 1e-12);
    }

    #[test]
    fn plus_gpu_adds_capacity() {
        let replay = replay_fixture();
        let base = what_if(&replay, &WhatIf::PerfectCalibration).unwrap();
        let plus = what_if(&replay, &WhatIf::PlusGpu(DeviceClass::Knl)).unwrap();
        assert_eq!(plus.workers, 4);
        assert!(plus.counterfactual_makespan <= base.counterfactual_makespan + 1e-12);
    }

    #[test]
    fn plus_gpu_requires_v2_task_models() {
        let mut replay = replay_fixture();
        for t in replay.tasks.iter_mut() {
            t.query_len = 0;
            t.cells = 0.0;
        }
        let err = what_if(&replay, &WhatIf::PlusGpu(DeviceClass::C2050)).unwrap_err();
        assert!(err.contains("v2"), "{err}");
    }

    #[test]
    fn no_faults_heals_the_straggler() {
        let replay = replay_fixture();
        let base = what_if(&replay, &WhatIf::PerfectCalibration).unwrap();
        let nf = what_if(&replay, &WhatIf::NoFaults).unwrap();
        // With the faulted 2× CPU healed to 1×, the replay can only
        // improve (or stay equal).
        assert!(nf.counterfactual_makespan <= base.counterfactual_makespan + 1e-12);
    }

    #[test]
    fn renders_name_the_verdict_and_delta() {
        let r = what_if(&replay_fixture(), &WhatIf::PerfectCalibration).unwrap();
        let text = r.to_text();
        assert!(text.contains("what-if: perfect-calibration"), "{text}");
        assert!(text.contains("counterfactual"), "{text}");
        assert!(text.contains("HOLDS"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"counterfactual_makespan\""));
        assert!(json.contains("\"bound_verdict\""));
    }

    #[test]
    fn empty_replay_is_a_typed_error() {
        let mut replay = replay_fixture();
        replay.tasks.clear();
        assert!(what_if(&replay, &WhatIf::PerfectCalibration).is_err());
    }
}
